"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` uses PEP 517 and needs ``wheel``; fully offline
environments may lack it. This shim enables the legacy editable path:

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
