"""Experiment F5.5 — Figure 5, "multi-attribute keys and foreign keys".

Paper claim (Theorem 3.1 / Corollary 3.4): consistency and implication are
UNDECIDABLE for C_K,FK. What is measurable: (a) the reduction pipeline
(Lemma 3.2 then Theorem 3.1) runs in polynomial time, (b) the library
refuses the exact question instead of looping, and (c) the bounded
semi-decision procedure finds small witnesses when they exist.
"""

import pytest

from repro.checkers.bounded import bounded_consistency
from repro.checkers.consistency import check_consistency
from repro.errors import UndecidableProblemError
from repro.relational.constraints import FD, ID
from repro.relational.model import RelationSchema, Schema
from repro.relational.reductions import (
    encode_fd_implication,
    relational_implication_to_xml,
)
from repro.workloads.examples import school_constraints_d3, school_dtd_d3


@pytest.mark.parametrize("num_deps", [1, 4, 8])
def test_pipeline_construction_polynomial(benchmark, num_deps):
    """Lemma 3.2 + Theorem 3.1 composed, on growing dependency sets."""
    schema = Schema(
        (
            RelationSchema("R", ("a", "b", "c")),
            RelationSchema("S", ("u", "v")),
        )
    )
    deps = []
    for index in range(num_deps):
        if index % 2 == 0:
            deps.append(FD("R", ("a",), ("b",)))
        else:
            deps.append(ID("R", ("a",), "S", ("u",)))

    def run():
        lemma32 = encode_fd_implication(schema, deps, FD("R", ("b",), ("c",)))
        # The Lemma 3.2 output is a key-implication instance; feed its
        # complement into the Theorem 3.1 construction.
        return relational_implication_to_xml(
            lemma32.schema, lemma32.sigma, lemma32.phi
        )

    reduction = benchmark(run)
    assert reduction.dtd.root == "r"


def test_exact_question_refused(benchmark):
    """The library raises instead of pretending to decide C_K,FK."""
    d3 = school_dtd_d3()
    sigma3 = school_constraints_d3()

    def run():
        try:
            check_consistency(d3, sigma3)
        except UndecidableProblemError:
            return True
        return False

    assert benchmark(run)


@pytest.mark.parametrize("max_nodes", [4, 6, 8])
def test_bounded_semi_decision(benchmark, max_nodes):
    """Bounded search cost grows with the node budget (the honest price)."""
    d3 = school_dtd_d3()
    sigma3 = school_constraints_d3()
    witness = benchmark(bounded_consistency, d3, sigma3, max_nodes)
    assert witness is not None
