"""Experiment F2 — the Theorem 3.1 reduction (Figure 2).

Paper claim: relational key implication reduces (in PTIME) to the
complement of XML consistency for multi-attribute keys/foreign keys. The
reduction itself is executable; both directions of the equivalence are
checked on small instances against brute-force oracles.
"""

import pytest

from repro.checkers.bounded import bounded_consistency
from repro.relational.constraints import RelKey
from repro.relational.model import RelationSchema, Schema
from repro.relational.reductions import relational_implication_to_xml


def _schema(width: int) -> Schema:
    attrs = tuple(f"a{i}" for i in range(width))
    return Schema((RelationSchema("R", attrs), RelationSchema("S", attrs)))


@pytest.mark.parametrize("width", [2, 4, 8, 16])
def test_reduction_construction_scales(benchmark, width):
    """Building the Figure-2 DTD and Sigma is polynomial in the schema."""
    schema = _schema(width)
    phi = RelKey("R", ("a0",))

    reduction = benchmark(relational_implication_to_xml, schema, [], phi)
    assert reduction.dy_type in reduction.dtd.element_types
    # DY carries all of Att(R); EX carries exactly the key attributes.
    assert len(reduction.dtd.attrs(reduction.dy_type)) == width
    assert reduction.dtd.attrs(reduction.ex_type) == frozenset({"a0"})


def test_non_implication_yields_consistency(benchmark):
    """Theta |/- phi  <=>  the reduced XML spec has a witness."""
    schema = Schema((RelationSchema("R", ("x", "y")),))
    reduction = relational_implication_to_xml(schema, [], RelKey("R", ("x",)))

    witness = benchmark(
        bounded_consistency, reduction.dtd, reduction.sigma, 10
    )
    assert witness is not None
    dys = witness.ext(reduction.dy_type)
    assert dys[0].attrs["x"] == dys[1].attrs["x"]
    assert dys[0].attrs["y"] != dys[1].attrs["y"]


def test_implication_yields_inconsistency(benchmark):
    """Theta |- phi  <=>  the reduced XML spec has no witness."""
    schema = Schema((RelationSchema("R", ("x", "y")),))
    reduction = relational_implication_to_xml(
        schema, [RelKey("R", ("x",))], RelKey("R", ("x",))
    )
    witness = benchmark(
        bounded_consistency, reduction.dtd, reduction.sigma, 8
    )
    assert witness is None
