"""Ablation — the design choices DESIGN.md calls out, measured.

Three solver-strategy choices get ablated on the same instance families:

1. **LP pruning** of support branches (on/off) — matters on inconsistent
   instances, where whole support subtrees are refuted by a relaxation;
2. **the maximal-support shortcut** (approximated by comparing consistent
   instances, where the shortcut usually hits, with inconsistent ones,
   where it never can);
3. **scipy/HiGHS vs. the exact rational backend** — the cost of certified
   arithmetic.

Witness synthesis is disabled throughout so only the decision is timed.
"""

import pytest

from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.workloads.generators import star_schema_family, teachers_family

_FAST = CheckerConfig(want_witness=False)
_NO_PRUNE = CheckerConfig(want_witness=False, lp_prune=False)
_EXACT = CheckerConfig(want_witness=False, backend="exact")


@pytest.mark.parametrize("prune", [True, False], ids=["prune", "noprune"])
def test_lp_pruning_on_inconsistent(benchmark, prune):
    dtd, sigma = teachers_family(4, consistent=False)
    config = _FAST if prune else _NO_PRUNE
    result = benchmark(check_consistency, dtd, sigma, config)
    assert not result.consistent


@pytest.mark.parametrize("prune", [True, False], ids=["prune", "noprune"])
def test_lp_pruning_on_consistent(benchmark, prune):
    dtd, sigma = star_schema_family(4, consistent=True)
    config = _FAST if prune else _NO_PRUNE
    result = benchmark(check_consistency, dtd, sigma, config)
    assert result.consistent


def test_shortcut_hit_rate_consistent(benchmark):
    """On satisfiable star schemas the maximal-support shortcut decides."""
    dtd, sigma = star_schema_family(3, consistent=True)
    result = benchmark(check_consistency, dtd, sigma, _FAST)
    assert result.consistent
    assert result.stats.get("shortcut") is True


def test_shortcut_cannot_hit_inconsistent(benchmark):
    dtd, sigma = star_schema_family(3, consistent=False)
    result = benchmark(check_consistency, dtd, sigma, _FAST)
    assert not result.consistent
    assert result.stats.get("shortcut") is not True


@pytest.mark.parametrize("backend", ["scipy", "exact"])
def test_backend_cost_consistent(benchmark, backend):
    dtd, sigma = teachers_family(2, consistent=True)
    config = _FAST if backend == "scipy" else _EXACT
    result = benchmark(check_consistency, dtd, sigma, config)
    assert result.consistent


@pytest.mark.parametrize("backend", ["scipy", "exact"])
def test_backend_cost_inconsistent(benchmark, backend):
    dtd, sigma = teachers_family(2, consistent=False)
    config = _FAST if backend == "scipy" else _EXACT
    result = benchmark(check_consistency, dtd, sigma, config)
    assert not result.consistent
