"""Experiment D2 — the recursive DTD with no finite tree (Section 1).

Paper claim: ``db -> foo, foo -> foo`` admits no finite XML document, and
DTD emptiness is decidable in linear time (Theorem 3.5(1)). The benchmark
sweeps recursive chains of growing length to exhibit the linear shape.
"""

import pytest

from repro.checkers.consistency import dtd_has_valid_tree
from repro.dtd.model import DTD
from repro.workloads.examples import recursive_dtd_d2


def test_d2_emptiness(benchmark):
    d2 = recursive_dtd_d2()
    assert not benchmark(dtd_has_valid_tree, d2)


def _recursive_chain(depth: int) -> DTD:
    """db -> f1 -> f2 -> ... -> f_depth -> f1 (a large unsatisfiable cycle)."""
    content = {"db": "(f1)"}
    for index in range(1, depth + 1):
        target = index + 1 if index < depth else 1
        content[f"f{index}"] = f"(f{target})"
    return DTD.build("db", content)


@pytest.mark.parametrize("depth", [4, 16, 64, 256])
def test_emptiness_scaling(benchmark, depth):
    """Linear-time emptiness across growing cycles (Thm 3.5(1) shape)."""
    dtd = _recursive_chain(depth)
    assert not benchmark(dtd_has_valid_tree, dtd)


@pytest.mark.parametrize("depth", [4, 16, 64, 256])
def test_nonempty_chain_scaling(benchmark, depth):
    """The satisfiable variant (escape hatch at the end) stays linear."""
    content = {"db": "(f1)"}
    for index in range(1, depth + 1):
        content[f"f{index}"] = f"(f{index + 1}?)" if index < depth else "EMPTY"
    dtd = DTD.build("db", content)
    assert benchmark(dtd_has_valid_tree, dtd)
