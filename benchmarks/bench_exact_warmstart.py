"""Warm-started certified simplex benchmarks (ISSUE 2 acceptance gate).

The exact backend re-solves one system many times: per support leaf, per
connectivity-cut round, and per branch-and-bound node.  Warm starts turn
each re-solve into a handful of dual-simplex pivots on the parent's
factorized basis; cold starts refactorize from the all-slack basis every
node.  These benchmarks time the certified pipeline both ways on the
Theorem-5.1 negation families of ``bench_theorem51_negations.py`` and
assert the headline claim: **>= 2x node-throughput for warm over cold**.

Runs are fully certified end to end (``lp_prune=False`` keeps the float
engine out of the loop entirely), so what is measured is exactly the
rational simplex the warm-start rewrite targets.  Every benchmark also
asserts the verdicts, per the suite's fast-nonsense policy.
"""

import time

import pytest

from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD

WARM = CheckerConfig(
    want_witness=False, backend="exact", exact_warm=True, lp_prune=False
)
COLD = CheckerConfig(
    want_witness=False, backend="exact", exact_warm=False, lp_prune=False
)


def _wide_dtd(num_types: int) -> DTD:
    content = {"r": "(" + ", ".join(f"t{i}*" for i in range(num_types)) + ")"}
    content.update({f"t{i}": "EMPTY" for i in range(num_types)})
    return DTD.build(
        "r", content, attrs={f"t{i}": ["x"] for i in range(num_types)}
    )


def _closed_chain(active: int):
    """An inclusion cycle closed into contradiction — UNSAT, so the
    support search visits many leaves and the exact backend re-solves
    the same system under many different bound patches."""
    chain = [f"t{i}.x <= t{(i + 1) % active}.x" for i in range(active)]
    return (
        _wide_dtd(active),
        parse_constraints("\n".join(chain + ["t0.x !<= t1.x"])),
    )


def _negated_keys(scale: int):
    """One negated key per type — SAT with a two-per-type witness."""
    return (
        _wide_dtd(scale),
        parse_constraints("\n".join(f"t{i}.x !-> t{i}" for i in range(scale))),
    )


def _throughput_workload():
    """The negation instances whose certified searches do real work."""
    cases = [(_closed_chain(active), False) for active in (2, 3, 4, 5, 6)]
    cases += [(_negated_keys(scale), True) for scale in (2, 3)]
    return cases


@pytest.mark.parametrize("active", [2, 4, 6])
def test_exact_warm_closed_chain(benchmark, active):
    dtd, sigma = _closed_chain(active)
    result = benchmark(check_consistency, dtd, sigma, WARM)
    assert not result.consistent


@pytest.mark.parametrize("scale", [2, 4])
def test_exact_warm_negated_keys(benchmark, scale):
    dtd, sigma = _negated_keys(scale)
    result = benchmark(check_consistency, dtd, sigma, WARM)
    assert result.consistent


@pytest.mark.parametrize("active", [2, 4])
def test_exact_cold_closed_chain(benchmark, active):
    """Cold ablation of the same instances, for the comparison table."""
    dtd, sigma = _closed_chain(active)
    result = benchmark(check_consistency, dtd, sigma, COLD)
    assert not result.consistent


def _run_workload(config) -> tuple[float, int, int]:
    """(best-of-3 seconds, exact nodes, exact pivots) over the workload."""
    best = float("inf")
    nodes = pivots = 0
    for _ in range(3):
        start = time.perf_counter()
        nodes = pivots = 0
        for (dtd, sigma), expected in _throughput_workload():
            result = check_consistency(dtd, sigma, config)
            assert result.consistent == expected
            nodes += result.stats["exact_nodes"]
            pivots += result.stats["exact_pivots"]
        best = min(best, time.perf_counter() - start)
    return best, nodes, pivots


def test_warm_node_throughput_at_least_2x_cold():
    """The acceptance claim: warm-started branch and bound pushes >= 2x
    the nodes per second of cold-start on the negations workload.

    Measured margin on the reference container is ~3x, so the 2x gate
    has headroom against scheduler noise; pivots-per-node (deterministic
    for a fixed workload) is asserted too, pinning the mechanism and not
    just the clock.
    """
    warm_time, warm_nodes, warm_pivots = _run_workload(WARM)
    cold_time, cold_nodes, cold_pivots = _run_workload(COLD)
    # The two modes may legitimately explore slightly different trees
    # (alternate optimal LP vertices branch differently), so the gates
    # below are per-node rates, never tree-shape equality.
    # The mechanism: warm re-solves need far fewer pivots per node.
    assert (warm_pivots / warm_nodes) * 2 <= cold_pivots / cold_nodes, (
        f"warm {warm_pivots}/{warm_nodes} vs cold {cold_pivots}/{cold_nodes} "
        "pivots per node"
    )
    warm_throughput = warm_nodes / warm_time
    cold_throughput = cold_nodes / cold_time
    assert warm_throughput >= 2 * cold_throughput, (
        f"warm {warm_throughput:.1f} nodes/s vs cold {cold_throughput:.1f} "
        f"nodes/s ({warm_throughput / cold_throughput:.2f}x < 2x)"
    )
