"""Experiment F1 — Figure 1 and the (D1, Sigma1) inconsistency (Section 1).

Paper claims reproduced here:

* the Figure-1 document conforms to D1 but violates Sigma1;
* D1 alone is satisfiable (a witness resembling Figure 1 is synthesized);
* (D1, Sigma1) is inconsistent — the cardinality clash of equations
  (1) and (2).
"""

from repro.checkers.consistency import check_consistency
from repro.constraints.satisfaction import satisfies_all
from repro.workloads.examples import (
    figure1_tree,
    sigma1_constraints,
    teachers_dtd_d1,
)
from repro.xmltree.validate import TreeValidator


def test_dynamic_validation_of_figure1(benchmark):
    """Conformance + satisfaction checking of the Figure-1 document."""
    d1 = teachers_dtd_d1()
    sigma1 = sigma1_constraints()
    validator = TreeValidator(d1)
    doc = figure1_tree()

    def run():
        return bool(validator.validate(doc)), satisfies_all(doc, sigma1)

    conforming, satisfying = benchmark(run)
    assert conforming
    assert not satisfying  # both subjects taught by Joe: key violated


def test_d1_sigma1_inconsistent(benchmark):
    """The static check detects the Section-1 inconsistency."""
    d1 = teachers_dtd_d1()
    sigma1 = sigma1_constraints()
    result = benchmark(check_consistency, d1, sigma1)
    assert not result.consistent


def test_d1_alone_witness_synthesis(benchmark):
    """D1 without constraints: a Figure-1-like witness is built."""
    d1 = teachers_dtd_d1()
    result = benchmark(check_consistency, d1, [])
    assert result.consistent
    assert result.witness is not None
    assert len(result.witness.ext("subject")) == 2 * len(result.witness.ext("teacher"))
