"""Minimal-repair benchmarks (ISSUE 10 acceptance gate).

The repair search probes many candidate edit sets of *one*
specification.  The toggled engine (DESIGN.md section 12) assembles
``Psi`` with shadow rows once and serves every probe — hitting-set
tests and MUS extractions alike — by row-bound flips on that one
persistent workspace, so the acceptance invariants are:

* **exactly one base assembly per ``minimal_repair`` call**, no matter
  how many candidate sets the hitting-set loop probes, and
* **repair wall-clock <= 3x a single diagnose-MUS call** on the
  registrar family (measured ~2.5x: each hitting-set round costs one
  probe plus one core extraction, both row-toggle re-solves).

Every benchmark asserts the correctness of the answer it times, per the
suite's fast-nonsense policy.
"""

import time

import pytest

from repro.analysis.diagnostics import mus
from repro.analysis.repair import DeleteConstraint, RepairStats, minimal_repair
from repro.workloads.generators import registrar_mus_family


def _assert_registrar_repair(repair) -> None:
    """The registrar conflict has a canonical unit-cost fix: delete one
    of the two core constraints (the filler keys all survive)."""
    assert repair.found and repair.verified
    assert repair.cost == 1
    [action] = repair.actions
    assert isinstance(action, DeleteConstraint)
    assert str(action.constraint) in (
        "approval.stamp -> approval",
        "approval.stamp => auditor.aid",
    )


@pytest.mark.parametrize("filler", [8, 16])
def test_repair_registrar(benchmark, filler):
    dtd, sigma = registrar_mus_family(filler)
    repair = benchmark(minimal_repair, dtd, sigma)
    _assert_registrar_repair(repair)


def test_repair_single_assembly():
    """One ``minimal_repair`` call = one base assembly, with the probe
    memo visibly engaged (re-probing a loosening-free candidate set is a
    cache hit, not a solve)."""
    dtd, sigma = registrar_mus_family(16)
    stats = RepairStats()
    repair = minimal_repair(dtd, sigma, stats=stats)
    _assert_registrar_repair(repair)
    assert stats.method == "toggled"
    assert stats.assemblies == 1, (
        f"{stats.assemblies} assemblies for {stats.probes} probes"
    )
    assert stats.probes >= 1
    assert stats.cores >= 1 and stats.hitting_sets >= 1
    assert stats.verify_checks == 1  # the applied repair is re-checked once


def _best_of_3(fn, *args, **kwargs) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def test_repair_within_3x_of_diagnose_mus():
    """The acceptance gate: a full repair search — hitting sets, core
    extractions, verification — lands within 3x of one MUS call on the
    same assembled-workspace machinery (measured ~2.5x, so the gate has
    headroom against scheduler noise)."""
    dtd, sigma = registrar_mus_family(16)
    _assert_registrar_repair(minimal_repair(dtd, sigma))  # warm caches

    mus_time = _best_of_3(mus, dtd, sigma)
    repair_time = _best_of_3(minimal_repair, dtd, sigma)
    ratio = repair_time / mus_time
    assert ratio <= 3.0, (
        f"repair {repair_time * 1000:.1f}ms vs mus {mus_time * 1000:.1f}ms "
        f"({ratio:.2f}x > 3x)"
    )
