"""Experiment F5.3 — Figure 5, "primary, unary keys and foreign keys".

Paper claim (Corollary 4.8): the primary-key restriction does NOT lower
the complexity — consistency stays NP-complete, because the Theorem 4.7
reduction already emits at most one key per element type. The benchmark
runs the same NP-hard family through the primary wrapper and compares
against the unrestricted procedure on the identical instances.
"""

import pytest

from repro.checkers.consistency import check_consistency
from repro.checkers.primary import check_consistency_primary
from repro.constraints.classes import is_primary_key_set
from repro.reductions.lip import (
    brute_force_binary_solution,
    lip_to_xml,
    random_lip_instance,
)


@pytest.mark.parametrize("size", [2, 3, 4])
def test_primary_np_family(benchmark, size, no_witness_config):
    instance = random_lip_instance(size, size, density=0.5, seed=size * 7)
    reduction = lip_to_xml(instance)
    assert is_primary_key_set(reduction.sigma)
    oracle = brute_force_binary_solution(instance)

    result = benchmark(
        check_consistency_primary, reduction.dtd, reduction.sigma, no_witness_config
    )
    assert result.consistent == (oracle is not None)


@pytest.mark.parametrize("size", [2, 3, 4])
def test_unrestricted_same_instances(benchmark, size, no_witness_config):
    """Baseline: the general checker on the identical primary instances.

    Corollary 4.8 predicts no complexity gap; the measured times should
    match the primary wrapper's within noise.
    """
    instance = random_lip_instance(size, size, density=0.5, seed=size * 7)
    reduction = lip_to_xml(instance)
    oracle = brute_force_binary_solution(instance)
    result = benchmark(
        check_consistency, reduction.dtd, reduction.sigma, no_witness_config
    )
    assert result.consistent == (oracle is not None)
