"""Experiment F3 — the Lemma 3.3 reduction (Figure 3).

Paper claim: consistency reduces to the complement of implication by
appending ``DY, DY, EX`` to the root content. On the unary fragment both
sides are decidable here, so the equivalence is checked exactly, in both
of the lemma's forms, on satisfiable and unsatisfiable inputs.
"""

import pytest

from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.relational.reductions import consistency_to_implication
from repro.workloads.generators import teachers_family


@pytest.mark.parametrize("consistent", [True, False])
def test_reduction_equivalence_form1(benchmark, consistent):
    """Sigma satisfiable over D iff (D', Sigma u {ell, phi2}) |/- phi1."""
    dtd, sigma = teachers_family(2, consistent=consistent)
    reduction = consistency_to_implication(dtd)

    def run():
        lhs = check_consistency(dtd, sigma, None).consistent
        rhs = implies(
            reduction.dtd_prime,
            [*sigma, reduction.ell, reduction.phi2],
            reduction.phi1,
        ).implied
        return lhs, rhs

    lhs, rhs = benchmark(run)
    assert lhs == consistent
    assert lhs == (not rhs)


@pytest.mark.parametrize("consistent", [True, False])
def test_reduction_equivalence_form2(benchmark, consistent):
    """Sigma satisfiable over D iff (D', Sigma u {ell, phi1}) |/- phi2."""
    dtd, sigma = teachers_family(2, consistent=consistent)
    reduction = consistency_to_implication(dtd)

    def run():
        lhs = check_consistency(dtd, sigma, None).consistent
        rhs = implies(
            reduction.dtd_prime,
            [*sigma, reduction.ell, reduction.phi1],
            reduction.phi2,
        ).implied
        return lhs, rhs

    lhs, rhs = benchmark(run)
    assert lhs == consistent
    assert lhs == (not rhs)


def test_construction_cost(benchmark):
    """The Figure-3 DTD extension itself is linear-time."""
    dtd, _sigma = teachers_family(2, consistent=True)
    reduction = benchmark(consistency_to_implication, dtd)
    assert reduction.phi1.element_type == reduction.phi2.child_type
