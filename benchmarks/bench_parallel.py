"""Parallel support-branch solving benchmarks (ISSUE 4 acceptance gate).

The solver's NP-hard work — support branches inside one consistency
solve, independent queries inside one implication batch, subset probes
inside one diagnostics audit — is embarrassingly parallel once every
worker owns its solver state (DESIGN.md section 7).  This file gates the
three claims of the parallel layer:

1. **Correctness is schedule-independent.**  On the multi-branch
   implication workload, ``jobs=4`` returns verdicts *and complete
   per-query stats* — including connectivity-cut counts — byte-identical
   to ``jobs=1`` (each query runs the ordinary sequential path inside
   exactly one worker).  On single-solve fan-out, verdicts match and the
   two-level cut pool visibly merges worker-discovered cuts.
2. **The wall clock actually drops.**  ``>= 2x`` at 4 workers on the
   multi-branch implication workload.  Wall-clock speedup needs
   hardware: the timing gate runs only when >= 4 CPU cores are
   available (it is *skipped, loudly,* on smaller containers — the
   correctness gates above always run; fork-less platforms skip too,
   since ``jobs`` degrades to sequential there).
3. **QuickXplain beats the deletion filter.**  On every ``|Sigma| >= 8``
   registrar instance the QuickXplain MUS probe count is strictly below
   the deletion filter's ``|Sigma|`` probes, with equal cores.

Every benchmark asserts the correctness of the answer it times, per the
suite's fast-nonsense policy.
"""

import time

import pytest

from repro.analysis.diagnostics import DiagnosticsStats, mus
from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies_all
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.ilp.condsys import WorkerPool
from repro.workloads.generators import (
    random_dtd,
    random_unary_constraints,
    registrar_mus_family,
    wide_flat_dtd,
)

#: Worker count of the headline gate.
_JOBS = 4

#: Required wall-clock speedup at 4 workers (ideal is ~4x; 2x leaves
#: headroom for pool startup and scheduler noise).
_SPEEDUP_GATE = 2.0


def _implication_workload():
    """The multi-branch implication batch the speedup gate runs on.

    An inclusion chain over a wide DTD, queried with every transitive
    inclusion (implied: the negation-consistency probe must *exhaust*
    its support branches) and every reverse inclusion (not implied: a
    witness exists).  Decided on the certified exact pipeline with LP
    pruning off, so every query does genuine branch-and-bound work —
    the workload shape where fanning queries across workers pays.
    """
    chain_length = 5
    dtd = wide_flat_dtd(chain_length + 2)
    sigma = parse_constraints(
        "\n".join(f"t{i}.x <= t{i + 1}.x" for i in range(chain_length))
    )
    phis = []
    expected = []
    for i in range(chain_length):
        for j in range(i + 1, chain_length + 1):
            phis.append(parse_constraint(f"t{i}.x <= t{j}.x"))
            expected.append(True)
            phis.append(parse_constraint(f"t{j}.x <= t{i}.x"))
            expected.append(False)
    return dtd, sigma, phis, expected


def _config(jobs: int) -> CheckerConfig:
    return CheckerConfig(
        want_witness=False, backend="exact", lp_prune=False, jobs=jobs
    )


def test_parallel_implication_verdicts_and_cut_counts_identical():
    """The correctness half of the gate, hardware-independent: ``jobs=4``
    answers the batch with verdicts and *complete* per-query stats —
    dfs nodes, leaves, exact pivots, connectivity-cut counts — equal to
    ``jobs=1``, in the same order."""
    dtd, sigma, phis, expected = _implication_workload()
    sequential = implies_all(dtd, sigma, phis, _config(1))
    parallel = implies_all(dtd, sigma, phis, _config(_JOBS))
    assert [r.implied for r in sequential] == expected
    assert [r.implied for r in parallel] == expected
    for index, (seq, par) in enumerate(zip(sequential, parallel)):
        assert par.stats == seq.stats, (
            f"query {index}: parallel stats diverged from sequential "
            f"(cuts {par.stats.get('cuts')} vs {seq.stats.get('cuts')})"
        )


def test_branch_fanout_verdicts_match_and_cuts_merge():
    """Single-solve fan-out: verdicts equal the sequential run on
    cut-heavy instances, and the two-level pool demonstrably merges
    worker-discovered cuts into the shared pool."""
    merged_total = 0
    checked = 0
    for seed, num_types in ((17, 5), (16, 4), (56, 5), (44, 5)):
        dtd = random_dtd(seed, num_types=num_types)
        sigma = random_unary_constraints(
            seed * 31 + 7, dtd,
            num_keys=seed % 3, num_fks=(seed + 1) % 3,
            num_neg_keys=seed % 2, num_neg_inclusions=(seed + 1) % 2,
        )
        sequential = check_consistency(dtd, sigma, _config(1))
        parallel = check_consistency(dtd, sigma, _config(_JOBS))
        assert parallel.consistent == sequential.consistent, f"seed {seed}"
        merged_total += parallel.stats.get("cuts_merged", 0)
        checked += 1
    assert checked == 4
    if WorkerPool.available():
        assert merged_total > 0, "no cut ever crossed the merge policy"


def test_parallel_implication_speedup_at_4_workers(speedup_gate):
    """The headline gate: >= 2x wall clock at 4 workers on the
    multi-branch implication workload (sequential cost ~2s, pool
    overhead ~0.25s, so the ideal-parallel margin is wide).  Hardware
    requirements (fork + >= 4 effective cores) are decided by the shared
    guard in ``benchmarks/conftest.py``, so this skips exactly when the
    fuzz sweeps downscale."""
    speedup_gate(_JOBS)
    dtd, sigma, phis, expected = _implication_workload()

    def run(jobs: int) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            results = implies_all(dtd, sigma, phis, _config(jobs))
            best = min(best, time.perf_counter() - start)
            assert [r.implied for r in results] == expected
        return best

    sequential = run(1)
    parallel = run(_JOBS)
    speedup = sequential / parallel
    assert speedup >= _SPEEDUP_GATE, (
        f"sequential {sequential * 1000:.0f}ms vs {_JOBS} workers "
        f"{parallel * 1000:.0f}ms ({speedup:.2f}x < {_SPEEDUP_GATE}x)"
    )


# ---------------------------------------------------------------------------
# QuickXplain vs deletion filter (probe-count gate)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("filler", [4, 8, 12, 20])
def test_quickxplain_probes_strictly_below_deletion(filler):
    """On every |Sigma| >= 8 instance the QuickXplain filter probes
    strictly fewer subsets than the deletion filter (which always pays
    exactly |Sigma|), returning the same 2-element core."""
    dtd, sigma = registrar_mus_family(filler)
    assert len(sigma) >= 8
    qx_stats, del_stats = DiagnosticsStats(), DiagnosticsStats()
    core = mus(dtd, sigma, stats=qx_stats)
    reference = mus(
        dtd, sigma, method="deletion", stats=del_stats
    )
    assert sorted(str(phi) for phi in core) == sorted(
        str(phi) for phi in reference
    ) == ["approval.stamp -> approval", "approval.stamp => auditor.aid"]
    assert del_stats.mus_probes == len(sigma)
    assert qx_stats.mus_probes < del_stats.mus_probes, (
        f"|Sigma|={len(sigma)}: quickxplain {qx_stats.mus_probes} probes "
        f"vs deletion {del_stats.mus_probes}"
    )
    assert qx_stats.assemblies == 1  # still one assembled system


def test_quickxplain_scales_sublinearly():
    """The probe count grows with log(|Sigma|), not |Sigma|: doubling the
    filler must not double the QuickXplain probes (it does exactly double
    the deletion filter's)."""
    counts = []
    for filler in (8, 16, 32):
        dtd, sigma = registrar_mus_family(filler)
        stats = DiagnosticsStats()
        mus(dtd, sigma, stats=stats)
        counts.append(stats.mus_probes)
    assert counts[2] < 2 * counts[0], f"probe counts not sublinear: {counts}"
