"""Toggleable-row diagnostics benchmarks (ISSUE 3 acceptance gate).

The diagnostics workloads — the MUS deletion filter and the redundancy
audit — probe many constraint subsets of *one* specification.  The
toggled engine (DESIGN.md section 6) assembles ``Psi(D, Sigma ∪ ¬Sigma)``
once and serves every probe by row-bound flips on persistent solver
state; the rebuild path (``toggled=False``, the pre-toggle
implementation) re-encodes and re-assembles per probe through full
``check_consistency``/``implies`` calls.

The headline gate: **>= 3x wall-clock speedup for the toggled redundancy
audit over the rebuild path** on audit-sized specifications (9+
constraints), together with the structural assertions that make the
mechanism — not just the clock — visible: identical answers from both
paths, and exactly one base assembly per toggled call regardless of how
many subsets are probed.  Every benchmark asserts the correctness of the
answer it times, per the suite's fast-nonsense policy.
"""

import time

import pytest

from repro.analysis.diagnostics import (
    DiagnosticsStats,
    diagnose,
    mus,
    redundant_constraints,
)
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.workloads.generators import registrar_mus_family


def _mixed_dtd(num_types: int) -> DTD:
    """n unbounded collection types plus n singleton types."""
    parts = [f"t{i}*" for i in range(num_types)] + [
        f"s{i}" for i in range(num_types)
    ]
    content = {"r": "(" + ", ".join(parts) + ")"}
    content.update({f"t{i}": "EMPTY" for i in range(num_types)})
    content.update({f"s{i}": "EMPTY" for i in range(num_types)})
    attrs = {f"t{i}": ["x"] for i in range(num_types)}
    attrs.update({f"s{i}": ["x"] for i in range(num_types)})
    return DTD.build("r", content, attrs=attrs)


def _audit_keys_negkeys(n: int):
    """Keys on singleton types (vacuously implied -> all redundant) plus
    independent negated keys on the collection types (none redundant)."""
    lines = [f"s{i}.x -> s{i}" for i in range(n)]
    lines += [f"t{i}.x !-> t{i}" for i in range(n)]
    return _mixed_dtd(n), parse_constraints("\n".join(lines)), n


def _audit_inclusion_chain(n: int):
    """An inclusion chain plus its transitive shortcut (the one redundancy)."""
    content = {"r": "(" + ", ".join(f"t{i}*" for i in range(n)) + ")"}
    content.update({f"t{i}": "EMPTY" for i in range(n)})
    dtd = DTD.build("r", content, attrs={f"t{i}": ["x"] for i in range(n)})
    lines = [f"t{i}.x <= t{i + 1}.x" for i in range(n - 1)]
    lines += [f"t0.x <= t{n - 1}.x"]
    return dtd, parse_constraints("\n".join(lines)), 1


#: The MUS workload: the spec-doctor conflict (two approvals per order,
#: one auditor) buried under ``n`` innocent filler keys — one shared
#: definition in :mod:`repro.workloads.generators`.
_mus_registrar = registrar_mus_family


#: The audit cases the speedup gate runs over: (dtd, sigma, #redundant).
_AUDIT_CASES = [
    _audit_keys_negkeys(12),
    _audit_keys_negkeys(16),
    _audit_inclusion_chain(8),
    _audit_inclusion_chain(9),
]

_MUS_CASES = [_mus_registrar(16), _mus_registrar(24)]


def _canonical(constraints) -> list[str]:
    return sorted(str(phi) for phi in constraints)


@pytest.mark.parametrize("n", [8, 12])
def test_toggled_audit(benchmark, n):
    dtd, sigma, expected = _audit_keys_negkeys(n)
    redundant = benchmark(redundant_constraints, dtd, sigma)
    assert len(redundant) == expected


@pytest.mark.parametrize("n", [8])
def test_rebuild_audit_ablation(benchmark, n):
    """Rebuild ablation of the same audit, for the comparison table."""
    dtd, sigma, expected = _audit_keys_negkeys(n)
    redundant = benchmark(redundant_constraints, dtd, sigma, toggled=False)
    assert len(redundant) == expected


@pytest.mark.parametrize("n", [16])
def test_toggled_mus(benchmark, n):
    dtd, sigma = _mus_registrar(n)
    core = benchmark(mus, dtd, sigma, method="deletion")
    # The stamp key + the FK into the singleton auditor (|approval| >= 2
    # forced by the DTD, <= 1 forced by key-through-FK): a 2-element MUS.
    assert _canonical(core) == [
        "approval.stamp -> approval",
        "approval.stamp => auditor.aid",
    ]


def test_diagnose_single_assembly_end_to_end():
    """One ``diagnose`` call = one assembly, on both report shapes."""
    for dtd, sigma, _ in _AUDIT_CASES[:1]:
        report = diagnose(dtd, sigma)
        assert report.consistent
        assert report.stats.assemblies == 1
    for dtd, sigma in _MUS_CASES[:1]:
        report = diagnose(dtd, sigma)
        assert not report.consistent
        assert report.stats.assemblies == 1


def _run_audits(toggled: bool) -> tuple[float, list[list[str]], list[DiagnosticsStats]]:
    """(best-of-3 seconds, canonical answers, per-call stats)."""
    best = float("inf")
    answers: list[list[str]] = []
    stats_list: list[DiagnosticsStats] = []
    for _ in range(3):
        answers = []
        stats_list = []
        start = time.perf_counter()
        for dtd, sigma, _ in _AUDIT_CASES:
            stats = DiagnosticsStats()
            answers.append(
                _canonical(
                    redundant_constraints(dtd, sigma, toggled=toggled, stats=stats)
                )
            )
            stats_list.append(stats)
        best = min(best, time.perf_counter() - start)
    return best, answers, stats_list


def test_toggled_redundancy_audit_at_least_3x_rebuild():
    """The acceptance gate: toggling rows on one assembled system runs the
    redundancy audit >= 3x faster than re-encoding per subset.

    Measured margin on the reference container is ~3.3-3.6x, so the 3x
    gate has headroom against scheduler noise.  The mechanism is pinned
    alongside the clock: both paths return identical redundant sets, the
    expected count per family, and the toggled path performs exactly one
    base assembly per call while probing |Sigma| subsets.
    """
    toggled_time, toggled_answers, toggled_stats = _run_audits(toggled=True)
    rebuild_time, rebuild_answers, rebuild_stats = _run_audits(toggled=False)

    assert toggled_answers == rebuild_answers
    for (_, sigma, expected), answer in zip(_AUDIT_CASES, toggled_answers):
        assert len(answer) == expected
    for stats, (_, sigma, _) in zip(toggled_stats, _AUDIT_CASES):
        assert stats.method == "toggled"
        assert stats.assemblies == 1, (
            f"{stats.assemblies} assemblies for {stats.probes} probes"
        )
        assert stats.probes >= len(sigma)
    for stats in rebuild_stats:
        assert stats.method == "rebuild"
        assert stats.assemblies > 1  # the cost the toggles retire

    speedup = rebuild_time / toggled_time
    assert speedup >= 3.0, (
        f"toggled audit {toggled_time * 1000:.1f}ms vs rebuild "
        f"{rebuild_time * 1000:.1f}ms ({speedup:.2f}x < 3x)"
    )


def test_toggled_mus_matches_rebuild_and_saves_assemblies():
    """MUS rides the same machinery: identical answers, one assembly."""
    for dtd, sigma in _MUS_CASES:
        stats = DiagnosticsStats()
        core = mus(dtd, sigma, method="deletion", stats=stats)
        oracle = mus(dtd, sigma, method="deletion", toggled=False)
        assert _canonical(core) == _canonical(oracle)
        assert stats.assemblies == 1
        assert stats.probes == len(sigma) + 1
