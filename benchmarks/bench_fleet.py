"""Fleet benchmarks (ISSUE 9 acceptance gate).

The distributed fleet's claim is *throughput by sharding*: disjoint
sessions hash to different backends, so two backend processes solve two
different specs at the same wall-clock moment — real process
parallelism, not thread interleaving under one GIL.  Gated here:

1. **Two backends beat one on disjoint sessions.**  Sixteen concurrent
   clients, each on its own spec (sixteen distinct fingerprints, so the
   ring spreads them), replay an implication stream through the router.
   The same stream through a two-backend fleet must reach at least 1.5x
   the aggregate throughput of a one-backend fleet (ideal is ~2x; 1.5x
   leaves room for routing overhead and an uneven ring split).  Like
   every wall-clock gate in this suite, the timing claim needs
   hardware: it skips loudly below two effective cores via the shared
   guard in ``benchmarks/conftest.py``.  The sharding *correctness*
   gate below always runs.

2. **The ring actually spreads the sessions.**  After the same stream,
   every backend has opened sessions — the speedup above is sharding,
   not one hot backend with a bystander.

Every benchmark asserts the correctness of the answers it times, per
the suite's fast-nonsense policy.
"""

import asyncio
import json
import time

from repro.dtd.serializer import dtd_to_string
from repro.service.fleet import FleetRouter, spawn_backends
from repro.workloads.generators import wide_flat_dtd

#: Aggregate-throughput factor a two-backend fleet must clear over a
#: single backend on disjoint sessions (ideal ~2x on two free cores).
_FLEET_GATE = 1.5

#: Chain width: ~30ms a solve, so sixteen clients x three queries give
#: each backend ~700ms of real CPU work — large against the router's
#: per-request overhead (~100us), small enough for CI.
_WIDTH = 12

_CLIENTS = 16

#: Three genuine solves per client (distinct phis, no response-cache
#: hits), every one implied by the chain.
_QUERIES = [f"t0.x <= t{j}.x" for j in (3, 6, 9)]


def _disjoint_specs() -> list:
    """Sixteen specs with sixteen distinct fingerprints over one DTD.

    The shared DTD keeps the encoding cache comparison fair between the
    one- and two-backend runs; the varying final constraint makes every
    fingerprint distinct so the ring has sixteen keys to spread.
    """
    dtd_text = dtd_to_string(wide_flat_dtd(_WIDTH))
    pairs = [
        (a, b)
        for a in range(_WIDTH - 1)
        for b in range(_WIDTH - 1)
        if b not in (a, a + 1)
    ]
    specs = []
    for index in range(_CLIENTS):
        a, b = pairs[index]
        chain = [f"t{j}.x <= t{j + 1}.x" for j in range(_WIDTH - 2)]
        chain.append(f"t{a}.x <= t{b}.x")
        specs.append((dtd_text, "\n".join(chain)))
    return specs


async def _client(host, port, dtd_text, sigma_text) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    for phi in _QUERIES:
        request = {
            "id": phi,
            "op": "implies",
            "dtd": dtd_text,
            "constraints": sigma_text,
            "phi": phi,
        }
        writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        response = json.loads(await reader.readline())
        assert response["ok"], response
        assert response["result"]["implied"] is True, phi
    writer.close()


def _run_stream(backends: int) -> tuple:
    """Replay the sixteen-client stream through a ``backends``-wide
    fleet; return (elapsed seconds, router, per-backend session counts).
    """
    specs = _disjoint_specs()
    processes, addresses = spawn_backends(backends)
    try:
        router = FleetRouter(addresses)
        host, port = router.start_background()
        try:

            async def burst():
                await asyncio.gather(
                    *(
                        _client(host, port, dtd_text, sigma_text)
                        for dtd_text, sigma_text in specs
                    )
                )

            start = time.perf_counter()
            asyncio.run(burst())
            elapsed = time.perf_counter() - start

            async def backend_sessions():
                counts = []
                for address in addresses:
                    backend_host, _, backend_port = address.rpartition(":")
                    reader, writer = await asyncio.open_connection(
                        backend_host, int(backend_port)
                    )
                    writer.write(b'{"op": "stats"}\n')
                    await writer.drain()
                    payload = json.loads(await reader.readline())
                    writer.close()
                    counts.append(
                        payload["result"]["registry"]["sessions_opened"]
                    )
                return counts

            sessions = asyncio.run(backend_sessions())
            stats = router.stats
        finally:
            router.close()
        return elapsed, stats, sessions
    finally:
        for process in processes:
            process.kill()
        for process in processes:
            process.wait(timeout=10.0)


def test_ring_spreads_disjoint_sessions_across_both_backends():
    """Gate 2 (always runs): sixteen disjoint sessions land on *both*
    backends, and every request routed — the throughput claim's
    precondition, asserted independently of core count."""
    _, stats, sessions = _run_stream(2)
    assert stats.routed == _CLIENTS * len(_QUERIES)
    assert stats.backends_lost == 0
    assert sum(sessions) == _CLIENTS, sessions
    assert min(sessions) >= 1, (
        f"one backend sat idle: per-backend sessions {sessions}"
    )


def test_two_backend_fleet_throughput_vs_single_backend(speedup_gate):
    """Gate 1: the two-backend fleet reaches >= 1.5x the aggregate
    throughput of a single backend on the disjoint-session stream.

    Hardware requirements (two effective cores) are decided by the
    shared guard in ``benchmarks/conftest.py``, so this skips exactly
    when ``bench_parallel``'s wall-clock gate would."""
    speedup_gate(2)
    single = min(_run_stream(1)[0] for _ in range(2))
    fleet = min(_run_stream(2)[0] for _ in range(2))
    speedup = single / fleet
    assert speedup >= _FLEET_GATE, (
        f"single backend {single * 1000:.0f}ms vs two-backend fleet "
        f"{fleet * 1000:.0f}ms ({speedup:.2f}x < {_FLEET_GATE}x)"
    )
