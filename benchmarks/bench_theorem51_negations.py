"""Experiment T51 — the Theorem 5.1 machinery for C^unary_K¬,IC¬.

Paper claims: consistency with negated keys stays NP (Corollary 4.9) and
with negated inclusion constraints stays NP via set representations
(Theorem 5.1, Lemmas 5.2-5.3). Benchmarks sweep the number of active
attribute pairs — the parameter the z_theta block is exponential in —
and also time the standalone intersection-pattern check on real and
impossible (U, V) matrices.
"""

import pytest

from repro.checkers.consistency import check_consistency
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.encoding.setrep import build_uv_matrices, has_set_representation


def _wide_dtd(num_types: int) -> DTD:
    content = {"r": "(" + ", ".join(f"t{i}*" for i in range(num_types)) + ")"}
    content.update({f"t{i}": "EMPTY" for i in range(num_types)})
    return DTD.build(
        "r", content, attrs={f"t{i}": ["x"] for i in range(num_types)}
    )


@pytest.mark.parametrize("scale", [2, 4, 6, 8])
def test_negated_keys_consistency(benchmark, scale, no_witness_config):
    """C^unary_K¬,IC: one negated key per type (Corollary 4.9)."""
    dtd = _wide_dtd(scale)
    sigma = parse_constraints("\n".join(f"t{i}.x !-> t{i}" for i in range(scale)))
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert result.consistent


@pytest.mark.parametrize("active", [2, 4, 6, 8])
def test_negated_inclusions_consistency(benchmark, active, no_witness_config):
    """C^unary_K¬,IC¬: a cycle of negated inclusions over `active` pairs.

    The z_theta block has 2^active - 1 variables: the sweep exposes the
    exponential dependence the NP bound allows.
    """
    dtd = _wide_dtd(active)
    sigma = parse_constraints(
        "\n".join(f"t{i}.x !<= t{(i + 1) % active}.x" for i in range(active))
    )
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert result.consistent


@pytest.mark.parametrize("active", [2, 4, 6])
def test_mixed_positive_negative_inclusions(benchmark, active, no_witness_config):
    """Inclusion chains plus a negated back-edge: satisfiable iff the
    back edge does not close the chain into equality."""
    dtd = _wide_dtd(active + 1)
    chain = [f"t{i}.x <= t{i + 1}.x" for i in range(active)]
    sigma = parse_constraints("\n".join(chain + [f"t{active}.x !<= t0.x"]))
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert result.consistent


def test_chain_closed_into_contradiction(benchmark, no_witness_config):
    """a ⊆ b ⊆ a with a ⊄ b is inconsistent — sets would be equal."""
    dtd = _wide_dtd(2)
    sigma = parse_constraints("t0.x <= t1.x\nt1.x <= t0.x\nt0.x !<= t1.x")
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert not result.consistent


@pytest.mark.parametrize("num_sets", [2, 4, 6])
def test_intersection_pattern_positive(benchmark, num_sets):
    """U,V of actual sets always admit a representation (Lemma 5.3)."""
    sets = [set(f"v{j}" for j in range(i + 1)) for i in range(num_sets)]
    u, v = build_uv_matrices(sets)
    assert benchmark(has_set_representation, u, v)


def test_intersection_pattern_negative(benchmark):
    """An impossible (U, V) pair is rejected."""
    u = [[1, 0], [0, 1]]
    v = [[0, 2], [1, 0]]
    assert not benchmark(has_set_representation, u, v)
