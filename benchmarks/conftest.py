"""Benchmark suite configuration.

Every benchmark asserts the *correctness* of the answer it times, so a
regression in a decision procedure fails the benchmark run rather than
silently producing fast nonsense. Run with:

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def no_witness_config():
    """Pure decision timing: skip witness synthesis."""
    from repro.checkers.config import CheckerConfig

    return CheckerConfig(want_witness=False)
