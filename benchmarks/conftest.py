"""Benchmark suite configuration.

Every benchmark asserts the *correctness* of the answer it times, so a
regression in a decision procedure fails the benchmark run rather than
silently producing fast nonsense. Run with:

    pytest benchmarks/ --benchmark-only

``--jobs N`` threads the parallel executor (DESIGN.md section 7) through
every figure benchmark that takes the shared checker-config fixtures, so
any of them can be timed with worker-pool fan-out:

    pytest benchmarks/ --benchmark-only --jobs 4

This conftest is also the one home of the **hardware skip guard** for
wall-clock gates: both the local suite and CI's cgroup-limited 2-core
runners decide "can this speedup gate mean anything here?" through
:func:`parallel_speedup_skip_reason`, which reads the same
:func:`repro.ilp.condsys.effective_parallelism` primitive the
differential fuzz sweeps use to trim oversubscribed worker counts — so
local runs and CI skip identically instead of drifting between
``os.cpu_count()`` and affinity masks.
"""

import pytest


def parallel_speedup_skip_reason(jobs: int) -> "str | None":
    """Why a ``jobs``-worker wall-clock gate cannot run here, or ``None``.

    Speedup gates need real hardware: ``effective_parallelism()`` cores
    (affinity-aware — what CI's 2-core runners actually grant) and a
    ``fork`` start method.  Correctness gates never skip on cores; only
    timing claims do.
    """
    from repro.ilp.condsys import WorkerPool, effective_parallelism

    if not WorkerPool.available():
        return "no fork start method: jobs degrades to sequential here"
    cores = effective_parallelism()
    if cores < jobs:
        return (
            f"wall-clock speedup needs >= {jobs} effective CPU cores, "
            f"container has {cores}; the correctness gates still ran"
        )
    return None


@pytest.fixture
def speedup_gate():
    """Callable fixture: ``speedup_gate(jobs)`` skips when the hardware
    cannot support a ``jobs``-worker wall-clock claim."""

    def gate(jobs: int) -> None:
        reason = parallel_speedup_skip_reason(jobs)
        if reason is not None:
            pytest.skip(reason)

    return gate


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the parallel executor; the shared "
        "checker-config fixtures pass this through, so every figure "
        "bench can be run parallel (verdicts are jobs-independent)",
    )


@pytest.fixture
def jobs(request):
    """The worker count selected with ``--jobs`` (default 1)."""
    return request.config.getoption("--jobs")


@pytest.fixture
def no_witness_config(jobs):
    """Pure decision timing: skip witness synthesis."""
    from repro.checkers.config import CheckerConfig

    return CheckerConfig(want_witness=False, jobs=jobs)
