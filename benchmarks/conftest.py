"""Benchmark suite configuration.

Every benchmark asserts the *correctness* of the answer it times, so a
regression in a decision procedure fails the benchmark run rather than
silently producing fast nonsense. Run with:

    pytest benchmarks/ --benchmark-only

``--jobs N`` threads the parallel executor (DESIGN.md section 7) through
every figure benchmark that takes the shared checker-config fixtures, so
any of them can be timed with worker-pool fan-out:

    pytest benchmarks/ --benchmark-only --jobs 4
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the parallel executor; the shared "
        "checker-config fixtures pass this through, so every figure "
        "bench can be run parallel (verdicts are jobs-independent)",
    )


@pytest.fixture
def jobs(request):
    """The worker count selected with ``--jobs`` (default 1)."""
    return request.config.getoption("--jobs")


@pytest.fixture
def no_witness_config(jobs):
    """Pure decision timing: skip witness synthesis."""
    from repro.checkers.config import CheckerConfig

    return CheckerConfig(want_witness=False, jobs=jobs)
