"""Experiment F4 — the Theorem 4.7 reduction (Figure 4).

Paper claim: 0/1 LIP ``Ax = 1`` reduces in PTIME to consistency of unary
keys and foreign keys, with at most one key per element type (primary-key
restriction, Corollary 4.8). The benchmark times the checker on reduced
instances and verifies every verdict against a brute-force LIP oracle —
the NP-hardness family is exactly where the ILP-based procedure must
work hardest.
"""

import pytest

from repro.checkers.consistency import check_consistency
from repro.constraints.classes import is_primary_key_set
from repro.reductions.lip import (
    brute_force_binary_solution,
    extract_binary_solution,
    lip_to_xml,
    random_lip_instance,
)


@pytest.mark.parametrize("size", [(2, 2), (3, 3), (4, 4), (5, 5)])
def test_reduced_instances(benchmark, size):
    rows, cols = size
    instance = random_lip_instance(rows, cols, density=0.5, seed=rows * 31 + cols)
    reduction = lip_to_xml(instance)
    assert is_primary_key_set(reduction.sigma)
    oracle = brute_force_binary_solution(instance)

    result = benchmark(check_consistency, reduction.dtd, reduction.sigma)
    assert result.consistent == (oracle is not None)
    if result.consistent:
        solution = extract_binary_solution(reduction, result.witness)
        for row in instance.matrix:
            assert sum(a * x for a, x in zip(row, solution)) == 1


def test_reduction_construction(benchmark):
    """Building the Figure-4 DTD and constraints is PTIME."""
    instance = random_lip_instance(6, 6, density=0.5, seed=99)
    reduction = benchmark(lip_to_xml, instance)
    assert reduction.dtd.root == "r"


@pytest.mark.parametrize("solvable", [True, False])
def test_known_answer_instances(benchmark, solvable):
    from repro.reductions.lip import LIPInstance

    if solvable:
        instance = LIPInstance(((1, 1, 0), (0, 1, 1)))
    else:
        instance = LIPInstance(((1, 0), (1, 1), (0, 1)))
    reduction = lip_to_xml(instance)
    result = benchmark(check_consistency, reduction.dtd, reduction.sigma)
    assert result.consistent == solvable
