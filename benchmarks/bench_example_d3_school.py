"""Experiment D3 — the school DTD with multi-attribute constraints
(Section 2.2).

Paper claims reproduced: the five constraints (1)-(5) are well-formed
C_K,FK constraints over D3, a concrete document satisfies them, and a
witness exists (found by bounded search — the exact problem for this
class is undecidable, Theorem 3.1).
"""

from repro.checkers.bounded import bounded_consistency
from repro.constraints.satisfaction import satisfies_all
from repro.workloads.examples import (
    school_constraints_d3,
    school_document,
    school_dtd_d3,
)
from repro.xmltree.validate import conforms


def test_document_validation(benchmark):
    d3 = school_dtd_d3()
    sigma3 = school_constraints_d3()
    doc = school_document()

    def run():
        return bool(conforms(doc, d3)) and satisfies_all(doc, sigma3)

    assert benchmark(run)


def test_bounded_witness_search(benchmark):
    d3 = school_dtd_d3()
    sigma3 = school_constraints_d3()
    witness = benchmark(bounded_consistency, d3, sigma3, 4)
    assert witness is not None
    assert satisfies_all(witness, sigma3)


def test_violation_detection(benchmark):
    """Satisfaction checking scales over a larger corrupted document."""
    d3 = school_dtd_d3()
    sigma3 = school_constraints_d3()
    doc = school_document()
    # Duplicate the first enrollment: violates the enroll key.
    enrolls = doc.ext("enroll")
    enrolls[1].attrs.update(enrolls[0].attrs)
    assert bool(conforms(doc, d3))
    assert not benchmark(satisfies_all, doc, sigma3)
