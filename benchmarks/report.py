#!/usr/bin/env python3
"""Regenerate the paper-shaped summary: Figure 5 plus Figures 1-4.

This standalone harness (not collected by pytest) runs every reproduced
experiment once, measures wall-clock times across the scale sweeps, and
prints a Figure-5-style table plus one line per qualitative experiment.
Its output is the reproduction record for the paper's figures.

Run:  python benchmarks/report.py

Solver perf regression tracking::

    python benchmarks/report.py --write-baseline   # (re)write BENCH_solver.json
    python benchmarks/report.py --compare          # fail on >20% regression
    python benchmarks/report.py --compare --check-only   # CI: counters only

The baseline file records wall time plus the solver's ``dfs_nodes`` and
``leaves_solved`` counters per benchmark, so both time *and* search-effort
regressions are visible.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from collections.abc import Callable
from pathlib import Path

from repro.analysis.diagnostics import diagnose
from repro.checkers.bounded import bounded_consistency
from repro.checkers.consistency import check_consistency, dtd_has_valid_tree
from repro.checkers.implication import implies, implies_all
from repro.checkers.config import CheckerConfig
from repro.dtd.model import DTD
from repro.checkers.keys_only import implies_key_keys_only, keys_only_consistent
from repro.constraints.ast import Key
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.satisfaction import satisfies_all
from repro.errors import UndecidableProblemError
from repro.reductions.lip import (
    brute_force_binary_solution,
    lip_to_xml,
    random_lip_instance,
)
from repro.relational.constraints import RelKey
from repro.relational.model import RelationSchema, Schema
from repro.relational.reductions import (
    consistency_to_implication,
    relational_implication_to_xml,
)
from repro.workloads.examples import (
    figure1_tree,
    recursive_dtd_d2,
    school_constraints_d3,
    school_document,
    school_dtd_d3,
    sigma1_constraints,
    teachers_dtd_d1,
)
from repro.workloads.generators import (
    fixed_dtd_constraint_family,
    keys_only_family,
    registrar_mus_family,
    star_schema_family,
    teachers_family,
    wide_flat_dtd,
)
from repro.xmltree.validate import conforms

_FAST = CheckerConfig(want_witness=False)


def _time(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock milliseconds over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000)
    return statistics.median(samples)


def _series(label: str, points: list[tuple[int, float]], verdict: str) -> None:
    rendered = "  ".join(f"{scale}:{ms:8.2f}ms" for scale, ms in points)
    print(f"  {label:<42} {verdict:<12} {rendered}")


def figure5() -> None:
    print("=" * 100)
    print("Figure 5 — main results (measured; times are medians of 3 runs)")
    print("=" * 100)

    print("\nconsistency row")
    print("-" * 100)

    # Column: multi-attribute keys + foreign keys (undecidable).
    d3, sigma3 = school_dtd_d3(), school_constraints_d3()
    try:
        check_consistency(d3, sigma3)
        verdict = "BUG"
    except UndecidableProblemError:
        verdict = "refused"
    points = [
        (n, _time(lambda n=n: bounded_consistency(d3, sigma3, n)))
        for n in (4, 6, 8)
    ]
    _series("C_K,FK (undecidable; bounded search/nodes)", points, verdict)

    # Column: unary keys + foreign keys (NP-complete).
    points = []
    for dims in (1, 2, 4, 8):
        dtd, sigma = star_schema_family(dims, consistent=True)
        points.append((dims, _time(lambda d=dtd, s=sigma: check_consistency(d, s, _FAST))))
    _series("C^unary_K,FK consistent (star schema/dims)", points, "all SAT")
    points = []
    for subjects in (2, 4, 8, 16):
        dtd, sigma = teachers_family(subjects, consistent=False)
        points.append(
            (subjects, _time(lambda d=dtd, s=sigma: check_consistency(d, s, _FAST)))
        )
    _series("C^unary_K,FK inconsistent (teachers/subjects)", points, "all UNSAT")

    # Column: primary unary (same complexity, Cor. 4.8) via the Figure-4 family.
    points = []
    for size in (2, 3, 4):
        instance = random_lip_instance(size, size, 0.5, seed=size * 7)
        reduction = lip_to_xml(instance)
        oracle = brute_force_binary_solution(instance) is not None
        result = check_consistency(reduction.dtd, reduction.sigma, _FAST)
        assert result.consistent == oracle
        points.append(
            (
                size,
                _time(
                    lambda r=reduction: check_consistency(r.dtd, r.sigma, _FAST)
                ),
            )
        )
    _series("primary C^unary_K,FK (Thm 4.7 family/m=n)", points, "oracle-ok")

    # Column: fixed DTD (PTIME).
    points = []
    for count in (4, 16, 64, 128):
        dtd, sigma = fixed_dtd_constraint_family(count)
        points.append(
            (count, _time(lambda d=dtd, s=sigma: check_consistency(d, s, _FAST)))
        )
    _series("fixed DTD, unary (PTIME /|Sigma|)", points, "all SAT")

    # Column: keys only (linear time).
    points = []
    for scale in (4, 16, 64, 256):
        dtd, sigma = keys_only_family(scale)
        points.append(
            (scale, _time(lambda d=dtd, s=sigma: keys_only_consistent(d, s)))
        )
    _series("C_K keys only (linear /scale)", points, "all SAT")

    print("\nimplication row")
    print("-" * 100)

    # Keys only: linear.
    points = []
    for scale in (4, 16, 64, 256):
        dtd, sigma = keys_only_family(scale)
        phi = Key(f"rec{scale // 2}", ("a", "b", "c"))
        points.append(
            (scale, _time(lambda d=dtd, s=sigma, p=phi: implies_key_keys_only(d, s, p)))
        )
    _series("C_K implication (linear /scale)", points, "all implied")

    # Unary keys (coNP, Thm 4.10) and inclusions (Thm 5.4).
    points = []
    for dims in (1, 2, 4):
        dtd, sigma = star_schema_family(dims, consistent=True)
        phi = parse_constraint("dim0.id -> dim0")
        points.append(
            (dims, _time(lambda d=dtd, s=sigma, p=phi: implies(d, s, p, _FAST)))
        )
    _series("unary key implication (coNP /dims)", points, "all implied")
    points = []
    for dims in (1, 2, 4):
        dtd, sigma = star_schema_family(dims, consistent=True)
        phi = parse_constraint("fact.ref0 <= dim0.id")
        points.append(
            (dims, _time(lambda d=dtd, s=sigma, p=phi: implies(d, s, p, _FAST)))
        )
    _series("unary IC implication (Thm 5.1 /dims)", points, "all implied")


def qualitative() -> None:
    print()
    print("=" * 100)
    print("Figures 1-4 and the worked examples")
    print("=" * 100)

    d1, sigma1 = teachers_dtd_d1(), sigma1_constraints()
    doc = figure1_tree()
    line1 = (
        f"F1  Figure-1 doc: conforms={bool(conforms(doc, d1))}, "
        f"satisfies Sigma1={satisfies_all(doc, sigma1)}; "
        f"(D1,Sigma1) consistent={check_consistency(d1, sigma1).consistent}"
    )
    print(line1)

    d2 = recursive_dtd_d2()
    print(f"D2  has valid tree={dtd_has_valid_tree(d2)} (expected False)")

    d3 = school_dtd_d3()
    doc3 = school_document()
    witness = bounded_consistency(d3, school_constraints_d3(), max_nodes=4)
    print(
        f"D3  document valid={bool(conforms(doc3, d3))}, "
        f"satisfies={satisfies_all(doc3, school_constraints_d3())}, "
        f"bounded witness nodes={witness.size() if witness else None}"
    )

    schema = Schema((RelationSchema("R", ("x", "y")),))
    red = relational_implication_to_xml(schema, [], RelKey("R", ("x",)))
    found = bounded_consistency(red.dtd, red.sigma, max_nodes=10)
    red2 = relational_implication_to_xml(
        schema, [RelKey("R", ("x",))], RelKey("R", ("x",))
    )
    gone = bounded_consistency(red2.dtd, red2.sigma, max_nodes=8)
    print(
        f"F2  Thm 3.1: not-implied -> consistent={found is not None}; "
        f"implied -> consistent={gone is not None}"
    )

    checks = []
    for consistent in (True, False):
        dtd, sigma = teachers_family(2, consistent=consistent)
        r = consistency_to_implication(dtd)
        lhs = check_consistency(dtd, sigma).consistent
        rhs = implies(r.dtd_prime, [*sigma, r.ell, r.phi2], r.phi1).implied
        checks.append(lhs == (not rhs))
    print(f"F3  Lemma 3.3 equivalence on SAT/UNSAT inputs: {checks}")

    agreements = 0
    for seed in range(8):
        instance = random_lip_instance(3, 3, 0.55, seed=seed)
        reduction = lip_to_xml(instance)
        oracle = brute_force_binary_solution(instance) is not None
        got = check_consistency(reduction.dtd, reduction.sigma, _FAST).consistent
        agreements += got == oracle
    print(f"F4  Thm 4.7: checker vs brute-force oracle agreement: {agreements}/8")

    sigma_neg = parse_constraints("t0.x <= t1.x\nt1.x <= t0.x\nt0.x !<= t1.x")
    wide = DTD.build(
        "r", {"r": "(t0*, t1*)", "t0": "EMPTY", "t1": "EMPTY"},
        attrs={"t0": ["x"], "t1": ["x"]},
    )
    print(
        "T51 negated-inclusion contradiction detected: "
        f"{not check_consistency(wide, sigma_neg).consistent}"
    )


# ---------------------------------------------------------------------------
# Solver perf regression tracking (BENCH_solver.json)
# ---------------------------------------------------------------------------

_BASELINE_PATH = Path(__file__).parent / "BENCH_solver.json"

#: Wall-clock of the same three workloads measured at the seed commit
#: (09ce4bb, pre-incremental solver) on the reference container — kept so
#: the recorded speedup of the assemble-once/bound-patch core stays
#: visible in the baseline file.
_SEED_MS = {
    "figure5_implication": 27.33,
    "figure5_unary": 39.06,
    "theorem51_negations": 47.21,
}

#: Fail --compare when current wall time exceeds baseline by this factor.
_REGRESSION_FACTOR = 1.20


#: Shared wide-DTD builder (one definition for benchmarks and tests).
_wide_dtd = wide_flat_dtd


def _solver_workloads() -> dict[str, Callable[[], list]]:
    """The three solver-spine workloads tracked by BENCH_solver.json.

    Instances are built outside the timed closures (pytest-benchmark
    style): only the checker calls are measured.  Each closure returns the
    checker results so search counters can be aggregated.
    """
    impl_cases = []
    for dims in (1, 2, 4):
        dtd, sigma = star_schema_family(dims, consistent=True)
        phis = [
            parse_constraint("dim0.id -> dim0"),
            parse_constraint("fact.ref0 <= dim0.id"),
        ]
        impl_cases.append((dtd, sigma, phis))

    unary_cases = []
    for dims in (1, 2, 4, 8):
        unary_cases.append(star_schema_family(dims, consistent=True))
        unary_cases.append(star_schema_family(dims, consistent=False))
    for subjects in (2, 4, 8, 16):
        unary_cases.append(teachers_family(subjects, consistent=False))

    # Certified-pipeline cases (exact backend, no float assistance): the
    # closed-chain contradictions re-solve one system under many bound
    # patches, which is precisely what the warm-started simplex speeds up.
    exact_config = CheckerConfig(
        want_witness=False, backend="exact", lp_prune=False
    )
    exact_cases = []
    for active in (2, 3, 4):
        chain = [f"t{i}.x <= t{(i + 1) % active}.x" for i in range(active)]
        exact_cases.append(
            (
                _wide_dtd(active),
                parse_constraints("\n".join(chain + ["t0.x !<= t1.x"])),
            )
        )
    exact_cases.append(
        (
            _wide_dtd(2),
            parse_constraints("t0.x !-> t0\nt1.x !-> t1"),
        )
    )

    neg_cases = []
    for scale in (2, 4, 6, 8):
        neg_cases.append(
            (
                _wide_dtd(scale),
                parse_constraints(
                    "\n".join(f"t{i}.x !-> t{i}" for i in range(scale))
                ),
            )
        )
    for active in (2, 4, 6, 8):
        neg_cases.append(
            (
                _wide_dtd(active),
                parse_constraints(
                    "\n".join(
                        f"t{i}.x !<= t{(i + 1) % active}.x"
                        for i in range(active)
                    )
                ),
            )
        )
    for active in (2, 4, 6):
        chain = [f"t{i}.x <= t{i + 1}.x" for i in range(active)]
        neg_cases.append(
            (
                _wide_dtd(active + 1),
                parse_constraints(
                    "\n".join(chain + [f"t{active}.x !<= t0.x"])
                ),
            )
        )

    # Diagnostics cases (ISSUE 3): subset-probing workloads served by row
    # toggles on one assembled system — an audit with vacuous keys plus
    # independent negated keys, an inclusion chain with its transitive
    # shortcut, and a MUS hunt buried under filler keys (the families of
    # benchmarks/bench_diagnostics.py at report-friendly sizes).
    diag_cases = []
    for scale in (6, 8):
        parts = [f"t{i}*" for i in range(scale)] + [f"s{i}" for i in range(scale)]
        content = {"r": "(" + ", ".join(parts) + ")"}
        content.update({f"t{i}": "EMPTY" for i in range(scale)})
        content.update({f"s{i}": "EMPTY" for i in range(scale)})
        attrs = {f"t{i}": ["x"] for i in range(scale)}
        attrs.update({f"s{i}": ["x"] for i in range(scale)})
        diag_cases.append(
            (
                DTD.build("r", content, attrs=attrs),
                parse_constraints(
                    "\n".join(
                        [f"s{i}.x -> s{i}" for i in range(scale)]
                        + [f"t{i}.x !-> t{i}" for i in range(scale)]
                    )
                ),
            )
        )
    chain = [f"t{i}.x <= t{i + 1}.x" for i in range(5)] + ["t0.x <= t5.x"]
    diag_cases.append((_wide_dtd(6), parse_constraints("\n".join(chain))))
    diag_cases.append(registrar_mus_family(8))

    class _DiagResult:
        """Adapter: expose DiagnosticsStats under the checker-stats keys."""

        def __init__(self, report):
            assert report.stats.assemblies <= 1, "toggled path regressed"
            self.stats = {
                "dfs_nodes": report.stats.dfs_nodes,
                "leaves": report.stats.leaves_solved,
                "exact_nodes": report.stats.exact_nodes,
                "exact_pivots": report.stats.exact_pivots,
            }

    # Parallel executor case (ISSUE 4): a multi-branch implication batch
    # fanned across 2 workers.  Every query runs the ordinary sequential
    # path inside one worker, so the tracked counters are byte-identical
    # to jobs=1 — the entry regresses if either the search counters grow
    # or the pool startup/dispatch overhead blows up the wall time.
    par_dtd = _wide_dtd(5)
    par_sigma = parse_constraints(
        "\n".join(f"t{i}.x <= t{i + 1}.x" for i in range(3))
    )
    par_phis = []
    for i in range(3):
        for j in range(i + 1, 4):
            par_phis.append(parse_constraint(f"t{i}.x <= t{j}.x"))
            par_phis.append(parse_constraint(f"t{j}.x <= t{i}.x"))
    par_config = CheckerConfig(
        want_witness=False, backend="exact", lp_prune=False, jobs=2
    )

    # QuickXplain MUS case (ISSUE 4): the registrar conflict buried under
    # filler keys; probes must stay below the deletion filter's |Sigma|.
    from repro.analysis.diagnostics import DiagnosticsStats, mus

    qx_dtd, qx_sigma = diag_cases[-1]

    class _MusResult:
        """Adapter: run + verify one QuickXplain MUS, expose its counters."""

        def __init__(self, dtd, sigma):
            mus_stats = DiagnosticsStats()
            core = mus(dtd, sigma, stats=mus_stats)
            assert len(core) == 2, "registrar core regressed"
            assert mus_stats.mus_probes < len(sigma), (
                "quickxplain probe count regressed to the deletion filter's"
            )
            self.stats = {
                "dfs_nodes": mus_stats.dfs_nodes,
                "leaves": mus_stats.leaves_solved,
                "exact_nodes": mus_stats.exact_nodes,
                "exact_pivots": mus_stats.exact_pivots,
            }

    # Repair case (ISSUE 10): the registrar conflict repaired end to end
    # — hitting sets, shadow-row probes, core extraction and the final
    # verification check, all on one assembled workspace.
    from repro.analysis.repair import RepairStats, minimal_repair

    class _RepairResult:
        """Adapter: run + verify one minimal repair, expose its counters."""

        def __init__(self, dtd, sigma):
            repair_stats = RepairStats()
            repair = minimal_repair(dtd, sigma, stats=repair_stats)
            assert repair.found and repair.verified, "registrar repair regressed"
            assert repair.cost == 1, "registrar repair cost regressed"
            assert repair_stats.assemblies == 1, "repair re-assembled"
            self.stats = {
                "dfs_nodes": repair_stats.dfs_nodes,
                "leaves": repair_stats.leaves_solved,
                "exact_nodes": repair_stats.exact_nodes,
                "exact_pivots": repair_stats.exact_pivots,
            }

    # Service case (ISSUE 5): the serving hot path — one replay-mode
    # session answering the 32-request stream (8 distinct implication
    # queries, 24 exact repeats).  Counters are deterministic: the eight
    # misses run the ordinary solver path, and the 24 response-cache
    # hits replay their recorded stats (so a caching regression shows up
    # as a wall-time regression, and a solver regression as a counter
    # regression).
    from repro.service.session import SpecSession

    service_dtd = _wide_dtd(9)
    service_sigma = parse_constraints(
        "\n".join(f"t{i}.x <= t{i + 1}.x" for i in range(7))
    )
    service_phis = []
    for i in range(8):
        for j in range(8):
            if i != j and len(service_phis) < 8:
                service_phis.append(f"t{i}.x <= t{j}.x")
    service_stream = [service_phis[k % 8] for k in range(32)]

    class _ServiceResult:
        """Adapter: expose a response payload's solver counters."""

        def __init__(self, payload):
            self.stats = payload["stats"]

    def _service_workload() -> list:
        session = SpecSession(service_dtd, service_sigma)
        payloads = [session.implies(phi) for phi in service_stream]
        assert session.stats.cache_hits == len(service_stream) - 8, (
            "response cache regressed"
        )
        return [_ServiceResult(payload) for payload in payloads]

    # Metrics case (ISSUE 8): the same 32-request stream answered through
    # the *full* server dispatch — admission control, deadline plumbing,
    # per-op latency histograms and the namespaced collector — followed
    # by one Prometheus render.  Search counters stay byte-identical to
    # the `service` entry (the collector observes, it never steers), so
    # this entry isolates the observability overhead on the serving hot
    # path: a collector regression shows up as wall time against the
    # same counters.
    from repro.dtd.serializer import dtd_to_string
    from repro.service.registry import SessionRegistry
    from repro.service.server import CheckingServer

    metrics_dtd_text = dtd_to_string(service_dtd)
    metrics_sigma_text = "\n".join(str(phi) for phi in service_sigma)

    def _metrics_workload() -> list:
        server = CheckingServer(SessionRegistry())

        async def replay():
            responses = []
            for index, phi in enumerate(service_stream):
                line = json.dumps(
                    {
                        "id": index,
                        "op": "implies",
                        "dtd": metrics_dtd_text,
                        "constraints": metrics_sigma_text,
                        "phi": phi,
                    }
                )
                responses.append(await server.handle_request(line))
            return responses

        responses = asyncio.run(replay())
        rendered = server.render_metrics()
        assert (
            f"repro_server_requests_total {len(service_stream)}" in rendered
        ), "the scrape lost the request counter"
        assert 'op="implies"' in rendered, "per-op histograms regressed"
        server.executor.shutdown(wait=False)
        for response in responses:
            assert response["ok"], response
        return [_ServiceResult(response["result"]) for response in responses]

    # Fleet case (ISSUE 9): the routed serving path — eight disjoint
    # sessions sharded over two live backends plus one fanned
    # ``implies_all`` batch (wave dispatch, chunk merge, cut sync).
    # Search counters stay deterministic (the ring split is a pure
    # function of the fingerprints), so this entry isolates the
    # router's wire overhead: a routing regression shows up as wall
    # time against unchanged counters.
    from repro.service.fleet import FleetRouter

    fleet_specs = []
    for index in range(8):
        chain = [f"t{i}.x <= t{i + 1}.x" for i in range(7)]
        chain.append(f"t{index}.x <= t{(index + 2) % 8}.x")
        fleet_specs.append("\n".join(chain))
    fleet_batch = [f"t0.x <= t{j}.x" for j in range(2, 8)]

    def _fleet_workload() -> list:
        backends = [CheckingServer(SessionRegistry()) for _ in range(2)]
        addresses = [
            "%s:%d" % backend.start_background() for backend in backends
        ]
        router = FleetRouter(addresses, wave_chunk=2)
        router.start_background()
        try:

            async def replay():
                host, port = router.address
                reader, writer = await asyncio.open_connection(host, port)
                responses = []
                for index, sigma_text in enumerate(fleet_specs):
                    writer.write(
                        (
                            json.dumps(
                                {
                                    "id": index,
                                    "op": "implies",
                                    "dtd": metrics_dtd_text,
                                    "constraints": sigma_text,
                                    "phi": "t0.x <= t4.x",
                                }
                            )
                            + "\n"
                        ).encode()
                    )
                    await writer.drain()
                    responses.append(json.loads(await reader.readline()))
                writer.write(
                    (
                        json.dumps(
                            {
                                "id": "batch",
                                "op": "implies_all",
                                "dtd": metrics_dtd_text,
                                "constraints": fleet_specs[0],
                                "phis": fleet_batch,
                            }
                        )
                        + "\n"
                    ).encode()
                )
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
                writer.close()
                return responses

            responses = asyncio.run(replay())
            assert router.stats.waves >= 1, "the batch never fanned out"
            assert router.stats.backends_lost == 0
        finally:
            router.close()
            for backend in backends:
                backend.close()
        results = []
        for response in responses:
            assert response["ok"], response
            result = response["result"]
            if "results" in result:
                for item in result["results"]:
                    assert item["implied"] is True
                    results.append(_ServiceResult(item))
            else:
                assert result["implied"] is True
                results.append(_ServiceResult(result))
        return results

    return {
        "figure5_implication": lambda: [
            result
            for dtd, sigma, phis in impl_cases
            for result in implies_all(dtd, sigma, phis, _FAST)
        ],
        "figure5_unary": lambda: [
            check_consistency(dtd, sigma, _FAST) for dtd, sigma in unary_cases
        ],
        "theorem51_negations": lambda: [
            check_consistency(dtd, sigma, _FAST) for dtd, sigma in neg_cases
        ],
        "exact_warmstart": lambda: [
            check_consistency(dtd, sigma, exact_config)
            for dtd, sigma in exact_cases
        ],
        "diagnostics": lambda: [
            _DiagResult(diagnose(dtd, sigma, _FAST)) for dtd, sigma in diag_cases
        ],
        "parallel": lambda: implies_all(par_dtd, par_sigma, par_phis, par_config),
        "quickxplain": lambda: [_MusResult(qx_dtd, qx_sigma)],
        "repair": lambda: [_RepairResult(qx_dtd, qx_sigma)],
        "service": _service_workload,
        "metrics": _metrics_workload,
        "fleet": _fleet_workload,
    }


def _time_min(fn: Callable[[], object], repeats: int = 9) -> float:
    """Best-of-N wall-clock milliseconds — far more stable than a median
    at the few-millisecond scale the incremental solver runs at."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - start) * 1000)
    return best


def solver_benchmarks() -> dict[str, dict[str, float | int]]:
    """Measure the tracked workloads: wall time plus search counters."""
    measurements: dict[str, dict[str, float | int]] = {}
    for name, workload in _solver_workloads().items():
        results = workload()  # warm-up (fills the encoding cache) + counters
        dfs_nodes = sum(r.stats.get("dfs_nodes", 0) for r in results)
        leaves = sum(r.stats.get("leaves", 0) for r in results)
        entry: dict[str, float | int] = {
            "ms": round(_time_min(workload), 3),
            "dfs_nodes": dfs_nodes,
            "leaves_solved": leaves,
            "exact_nodes": sum(r.stats.get("exact_nodes", 0) for r in results),
            "exact_pivots": sum(
                r.stats.get("exact_pivots", 0) for r in results
            ),
        }
        seed_ms = _SEED_MS.get(name)
        if seed_ms is not None:
            entry["seed_ms"] = seed_ms
            entry["speedup_vs_seed"] = round(seed_ms / entry["ms"], 2)
        measurements[name] = entry
    return measurements


def write_baseline(path: Path = _BASELINE_PATH) -> None:
    """Write BENCH_solver.json from a fresh measurement."""
    payload = {
        "note": (
            "Solver-spine benchmark baseline; regenerate with "
            "`python benchmarks/report.py --write-baseline`, check with "
            "`--compare` (fails on >20% wall-time regression). Absolute ms "
            "are machine-relative: regenerate on the machine that runs "
            "--compare before comparing across hosts. seed_ms was measured "
            "at the pre-incremental seed commit on the reference container."
        ),
        "benchmarks": solver_benchmarks(),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {path}")
    for name, entry in payload["benchmarks"].items():
        print(
            f"  {name:<24} {entry['ms']:8.2f}ms  dfs_nodes={entry['dfs_nodes']}"
            f"  leaves={entry['leaves_solved']}"
            + (
                f"  speedup_vs_seed={entry['speedup_vs_seed']}x"
                if "speedup_vs_seed" in entry
                else ""
            )
        )


#: Slack on the deterministic search counters before --compare fails: the
#: workloads are fixed, so any growth means solver behavior changed, but a
#: few extra nodes from solver-version drift should not hard-fail the gate.
_COUNTER_SLACK = 8


def compare_with_baseline(
    path: Path = _BASELINE_PATH, check_only: bool = False
) -> int:
    """Re-measure; fail (exit 1) on >20% wall-time regression or on
    search-effort growth (``dfs_nodes``/``leaves_solved``) beyond slack.

    ``check_only`` drops the wall-time gate and keeps the correctness
    and search-counter gates — the CI mode: absolute milliseconds are
    machine-relative (the committed baseline was measured on the dev
    container), but the deterministic counters must match anywhere.
    """
    if not path.exists():
        print(f"no baseline at {path}; run --write-baseline first", file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())["benchmarks"]
    current = solver_benchmarks()
    failed = False
    for name, entry in current.items():
        base = baseline.get(name)
        if base is None:
            print(f"  {name:<24} NEW {entry['ms']:8.2f}ms (not in baseline)")
            continue
        ratio = entry["ms"] / base["ms"]
        problems = []
        if ratio > _REGRESSION_FACTOR and not check_only:
            problems.append(f"time (>{int((_REGRESSION_FACTOR - 1) * 100)}%)")
        for counter, slack in (
            ("dfs_nodes", _COUNTER_SLACK),
            ("leaves_solved", _COUNTER_SLACK),
            ("exact_nodes", _COUNTER_SLACK),
            # Pivot counts are larger in magnitude; allow matching slack.
            ("exact_pivots", _COUNTER_SLACK * 8),
        ):
            baseline_count = base.get(counter, 0)
            if entry.get(counter, 0) > baseline_count + slack:
                problems.append(
                    f"{counter} {baseline_count} -> {entry.get(counter, 0)}"
                )
        verdict = "ok" if not problems else "REGRESSION: " + ", ".join(problems)
        failed = failed or bool(problems)
        print(
            f"  {name:<24} {base['ms']:8.2f}ms -> {entry['ms']:8.2f}ms "
            f"({ratio:5.2f}x)  dfs={entry['dfs_nodes']} leaves={entry['leaves_solved']}  "
            f"{verdict}"
        )
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="measure the solver workloads and write BENCH_solver.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="measure and fail on >20%% wall-time regression vs the baseline",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="with --compare: drop the wall-time gate, keep the "
        "correctness and search-counter gates (the CI mode — baseline "
        "milliseconds are machine-relative, counters are not)",
    )
    args = parser.parse_args(argv)
    if args.write_baseline:
        write_baseline()
        return 0
    if args.compare:
        return compare_with_baseline(check_only=args.check_only)
    figure5()
    qualitative()
    return 0


if __name__ == "__main__":
    sys.exit(main())
