#!/usr/bin/env python3
"""Regenerate the paper-shaped summary: Figure 5 plus Figures 1-4.

This standalone harness (not collected by pytest) runs every reproduced
experiment once, measures wall-clock times across the scale sweeps, and
prints a Figure-5-style table plus one line per qualitative experiment.
Its output is the source of record for EXPERIMENTS.md.

Run:  python benchmarks/report.py
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable

from repro.checkers.bounded import bounded_consistency
from repro.checkers.consistency import check_consistency, dtd_has_valid_tree
from repro.checkers.implication import implies
from repro.checkers.config import CheckerConfig
from repro.checkers.keys_only import implies_key_keys_only, keys_only_consistent
from repro.constraints.ast import Key
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.satisfaction import satisfies_all
from repro.errors import UndecidableProblemError
from repro.reductions.lip import (
    brute_force_binary_solution,
    lip_to_xml,
    random_lip_instance,
)
from repro.relational.constraints import RelKey
from repro.relational.model import RelationSchema, Schema
from repro.relational.reductions import (
    consistency_to_implication,
    relational_implication_to_xml,
)
from repro.workloads.examples import (
    figure1_tree,
    recursive_dtd_d2,
    school_constraints_d3,
    school_document,
    school_dtd_d3,
    sigma1_constraints,
    teachers_dtd_d1,
)
from repro.workloads.generators import (
    fixed_dtd_constraint_family,
    keys_only_family,
    star_schema_family,
    teachers_family,
)
from repro.xmltree.validate import conforms

_FAST = CheckerConfig(want_witness=False)


def _time(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock milliseconds over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000)
    return statistics.median(samples)


def _series(label: str, points: list[tuple[int, float]], verdict: str) -> None:
    rendered = "  ".join(f"{scale}:{ms:8.2f}ms" for scale, ms in points)
    print(f"  {label:<42} {verdict:<12} {rendered}")


def figure5() -> None:
    print("=" * 100)
    print("Figure 5 — main results (measured; times are medians of 3 runs)")
    print("=" * 100)

    print("\nconsistency row")
    print("-" * 100)

    # Column: multi-attribute keys + foreign keys (undecidable).
    d3, sigma3 = school_dtd_d3(), school_constraints_d3()
    try:
        check_consistency(d3, sigma3)
        verdict = "BUG"
    except UndecidableProblemError:
        verdict = "refused"
    points = [
        (n, _time(lambda n=n: bounded_consistency(d3, sigma3, n)))
        for n in (4, 6, 8)
    ]
    _series("C_K,FK (undecidable; bounded search/nodes)", points, verdict)

    # Column: unary keys + foreign keys (NP-complete).
    points = []
    for dims in (1, 2, 4, 8):
        dtd, sigma = star_schema_family(dims, consistent=True)
        points.append((dims, _time(lambda d=dtd, s=sigma: check_consistency(d, s, _FAST))))
    _series("C^unary_K,FK consistent (star schema/dims)", points, "all SAT")
    points = []
    for subjects in (2, 4, 8, 16):
        dtd, sigma = teachers_family(subjects, consistent=False)
        points.append(
            (subjects, _time(lambda d=dtd, s=sigma: check_consistency(d, s, _FAST)))
        )
    _series("C^unary_K,FK inconsistent (teachers/subjects)", points, "all UNSAT")

    # Column: primary unary (same complexity, Cor. 4.8) via the Figure-4 family.
    points = []
    for size in (2, 3, 4):
        instance = random_lip_instance(size, size, 0.5, seed=size * 7)
        reduction = lip_to_xml(instance)
        oracle = brute_force_binary_solution(instance) is not None
        result = check_consistency(reduction.dtd, reduction.sigma, _FAST)
        assert result.consistent == oracle
        points.append(
            (
                size,
                _time(
                    lambda r=reduction: check_consistency(r.dtd, r.sigma, _FAST)
                ),
            )
        )
    _series("primary C^unary_K,FK (Thm 4.7 family/m=n)", points, "oracle-ok")

    # Column: fixed DTD (PTIME).
    points = []
    for count in (4, 16, 64, 128):
        dtd, sigma = fixed_dtd_constraint_family(count)
        points.append(
            (count, _time(lambda d=dtd, s=sigma: check_consistency(d, s, _FAST)))
        )
    _series("fixed DTD, unary (PTIME /|Sigma|)", points, "all SAT")

    # Column: keys only (linear time).
    points = []
    for scale in (4, 16, 64, 256):
        dtd, sigma = keys_only_family(scale)
        points.append(
            (scale, _time(lambda d=dtd, s=sigma: keys_only_consistent(d, s)))
        )
    _series("C_K keys only (linear /scale)", points, "all SAT")

    print("\nimplication row")
    print("-" * 100)

    # Keys only: linear.
    points = []
    for scale in (4, 16, 64, 256):
        dtd, sigma = keys_only_family(scale)
        phi = Key(f"rec{scale // 2}", ("a", "b", "c"))
        points.append(
            (scale, _time(lambda d=dtd, s=sigma, p=phi: implies_key_keys_only(d, s, p)))
        )
    _series("C_K implication (linear /scale)", points, "all implied")

    # Unary keys (coNP, Thm 4.10) and inclusions (Thm 5.4).
    points = []
    for dims in (1, 2, 4):
        dtd, sigma = star_schema_family(dims, consistent=True)
        phi = parse_constraint("dim0.id -> dim0")
        points.append(
            (dims, _time(lambda d=dtd, s=sigma, p=phi: implies(d, s, p, _FAST)))
        )
    _series("unary key implication (coNP /dims)", points, "all implied")
    points = []
    for dims in (1, 2, 4):
        dtd, sigma = star_schema_family(dims, consistent=True)
        phi = parse_constraint("fact.ref0 <= dim0.id")
        points.append(
            (dims, _time(lambda d=dtd, s=sigma, p=phi: implies(d, s, p, _FAST)))
        )
    _series("unary IC implication (Thm 5.1 /dims)", points, "all implied")


def qualitative() -> None:
    print()
    print("=" * 100)
    print("Figures 1-4 and the worked examples")
    print("=" * 100)

    d1, sigma1 = teachers_dtd_d1(), sigma1_constraints()
    doc = figure1_tree()
    line1 = (
        f"F1  Figure-1 doc: conforms={bool(conforms(doc, d1))}, "
        f"satisfies Sigma1={satisfies_all(doc, sigma1)}; "
        f"(D1,Sigma1) consistent={check_consistency(d1, sigma1).consistent}"
    )
    print(line1)

    d2 = recursive_dtd_d2()
    print(f"D2  has valid tree={dtd_has_valid_tree(d2)} (expected False)")

    d3 = school_dtd_d3()
    doc3 = school_document()
    witness = bounded_consistency(d3, school_constraints_d3(), max_nodes=4)
    print(
        f"D3  document valid={bool(conforms(doc3, d3))}, "
        f"satisfies={satisfies_all(doc3, school_constraints_d3())}, "
        f"bounded witness nodes={witness.size() if witness else None}"
    )

    schema = Schema((RelationSchema("R", ("x", "y")),))
    red = relational_implication_to_xml(schema, [], RelKey("R", ("x",)))
    found = bounded_consistency(red.dtd, red.sigma, max_nodes=10)
    red2 = relational_implication_to_xml(
        schema, [RelKey("R", ("x",))], RelKey("R", ("x",))
    )
    gone = bounded_consistency(red2.dtd, red2.sigma, max_nodes=8)
    print(
        f"F2  Thm 3.1: not-implied -> consistent={found is not None}; "
        f"implied -> consistent={gone is not None}"
    )

    checks = []
    for consistent in (True, False):
        dtd, sigma = teachers_family(2, consistent=consistent)
        r = consistency_to_implication(dtd)
        lhs = check_consistency(dtd, sigma).consistent
        rhs = implies(r.dtd_prime, [*sigma, r.ell, r.phi2], r.phi1).implied
        checks.append(lhs == (not rhs))
    print(f"F3  Lemma 3.3 equivalence on SAT/UNSAT inputs: {checks}")

    agreements = 0
    for seed in range(8):
        instance = random_lip_instance(3, 3, 0.55, seed=seed)
        reduction = lip_to_xml(instance)
        oracle = brute_force_binary_solution(instance) is not None
        got = check_consistency(reduction.dtd, reduction.sigma, _FAST).consistent
        agreements += got == oracle
    print(f"F4  Thm 4.7: checker vs brute-force oracle agreement: {agreements}/8")

    sigma_neg = parse_constraints("t0.x <= t1.x\nt1.x <= t0.x\nt0.x !<= t1.x")
    from repro.dtd.model import DTD

    wide = DTD.build(
        "r", {"r": "(t0*, t1*)", "t0": "EMPTY", "t1": "EMPTY"},
        attrs={"t0": ["x"], "t1": ["x"]},
    )
    print(
        "T51 negated-inclusion contradiction detected: "
        f"{not check_consistency(wide, sigma_neg).consistent}"
    )


def main() -> None:
    figure5()
    qualitative()


if __name__ == "__main__":
    main()
