"""Experiment F5.1 — Figure 5, "multi-attribute keys only" column.

Paper claim: consistency and implication for C_K are decidable in LINEAR
TIME (Theorem 3.5). The benchmarks sweep instance size; the reported
times should grow roughly linearly with the scale parameter (report.py
records the measured series).
"""

import pytest

from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.checkers.keys_only import implies_key_keys_only, keys_only_consistent
from repro.constraints.ast import Key
from repro.workloads.generators import chain_dtd, keys_only_family

SCALES = [4, 16, 64, 256]


@pytest.mark.parametrize("scale", SCALES)
def test_consistency_linear(benchmark, scale):
    dtd, sigma = keys_only_family(scale)
    assert benchmark(keys_only_consistent, dtd, sigma)


@pytest.mark.parametrize("scale", SCALES)
def test_implication_subsumption_linear(benchmark, scale):
    dtd, sigma = keys_only_family(scale)
    # Superkey of a key in Sigma: implied by subsumption.
    phi = Key(f"rec{scale - 1}", ("a", "b", "c"))
    assert benchmark(implies_key_keys_only, dtd, sigma, phi)


@pytest.mark.parametrize("scale", SCALES)
def test_implication_multiplicity_linear(benchmark, scale):
    # Deep chain: implication refuted via can_have_two (star at each level).
    dtd, sigma = chain_dtd(scale)
    phi = Key(f"c{scale}", ("id",))
    result = benchmark(implies_key_keys_only, dtd, [], phi)
    assert not result


@pytest.mark.parametrize("scale", [4, 16, 64])
def test_full_checker_dispatch(benchmark, scale, no_witness_config):
    """End-to-end check_consistency on the keys-only class."""
    dtd, sigma = keys_only_family(scale)
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert result.consistent


def test_counterexample_synthesis(benchmark):
    """Refuted implication with witness construction (Lemma 3.7)."""
    dtd, sigma = keys_only_family(4)
    phi = Key("rec0", ("a",))  # not subsumed by {a,b} or {c}
    result = benchmark(implies, dtd, sigma, phi)
    assert not result.implied
    assert result.counterexample is not None
