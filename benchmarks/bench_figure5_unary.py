"""Experiment F5.2 — Figure 5, "unary keys and foreign keys" column.

Paper claim: consistency for C^unary_K,FK is NP-complete (Theorems 4.1 and
4.7). The procedure is the Psi(D, Sigma) ILP encoding; benchmarks sweep
both consistent and inconsistent families. NP-completeness predicts no
polynomial worst case, but the encoding is polynomial-size and typical
instances solve fast — exactly the behaviour the table's "NP-complete"
cell allows (see `python benchmarks/report.py`).
"""

import pytest

from repro.checkers.consistency import check_consistency
from repro.workloads.generators import star_schema_family, teachers_family

SCALES = [1, 2, 4, 8]


@pytest.mark.parametrize("dims", SCALES)
def test_star_schema_consistent(benchmark, dims, no_witness_config):
    dtd, sigma = star_schema_family(dims, consistent=True)
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert result.consistent


@pytest.mark.parametrize("dims", SCALES)
def test_star_schema_inconsistent(benchmark, dims, no_witness_config):
    dtd, sigma = star_schema_family(dims, consistent=False)
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert not result.consistent


@pytest.mark.parametrize("subjects", [2, 4, 8, 16])
def test_teachers_interaction_inconsistent(benchmark, subjects, no_witness_config):
    """The scaled Section-1 cardinality clash."""
    dtd, sigma = teachers_family(subjects, consistent=False)
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert not result.consistent


@pytest.mark.parametrize("dims", [1, 2, 4])
def test_witness_synthesis_overhead(benchmark, dims):
    """Same family with full witness synthesis and re-verification."""
    dtd, sigma = star_schema_family(dims, consistent=True)
    result = benchmark(check_consistency, dtd, sigma)
    assert result.consistent
    assert result.witness is not None
