"""Serving benchmarks (ISSUE 5 acceptance gates).

Two claims of the long-lived checking service are gated here:

1. **Warm sessions beat cold one-shots.**  On the registrar workload, a
   warm-session ``implies`` (p50, full re-solve on the session's warm
   workspaces — the response cache is cleared between repeats, so this
   is *not* the trivial cached-repeat case) is at least 5x faster than a
   cold one-shot CLI invocation (fresh interpreter, fresh parse, fresh
   encode and assembly — what every request paid before the service
   existed).  In practice the gap is orders of magnitude; 5x leaves room
   for slow CI containers.
2. **Coalescing beats sequential one-shots.**  A stream of 32 requests
   (eight distinct queries re-asked by 32 concurrent clients) answered
   through the server's per-session batcher achieves at least 2x the
   aggregate throughput of the *same stream* issued as sequential
   one-shots (fresh parse, fresh session and cleared encoding caches
   per request — the cold-start cost the service amortizes).  This is a
   structural amortization claim (validate once, share the encoding
   block, coalesce into ``implies_all``, answer exact repeats from the
   response cache), not a parallelism claim, so it runs on any core
   count.

3. **Shedding keeps admitted requests fast.**  (ISSUE 6.)  With a tiny
   in-flight cap and a flood of concurrent clients, over-limit requests
   are shed immediately with a structured ``overloaded`` answer — so
   the requests that *are* admitted never wait behind an unbounded
   backlog.  Gate: the shed-mode p50 for admitted requests stays within
   2x of the uncontended warm p50 (an unbounded queue would multiply it
   by the backlog depth instead).

4. **The HTTP front end is a thin skin.**  (ISSUE 8.)  Both transports
   share the same dispatch and the same live session; on cache-hit
   repeats (transport overhead isolated from solving) the warm HTTP
   p50 stays within 2x of the warm line-protocol p50 (+1ms floor).

5. **Scrapes don't perturb serving.**  (ISSUE 8.)  A continuous
   ``GET /metrics`` scraper hammering the collector while 32 concurrent
   clients replay cached queries moves the admitted p50 by at most 10%
   (best-of-N on both sides, small floor) — the collector snapshot is
   a lock-scoped copy, never a pause of the serving path.

Every benchmark asserts the correctness of the answers it times, per
the suite's fast-nonsense policy.
"""

import asyncio
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro.constraints.parser import parse_constraints
from repro.dtd.serializer import dtd_to_string
from repro.encoding.combined import clear_encoding_cache
from repro.service.registry import SessionRegistry
from repro.service.server import CheckingServer
from repro.service.session import SpecSession
from repro.workloads.generators import registrar_mus_family, wide_flat_dtd

#: The warm-vs-cold speedup the service must clear (measured: >> 20x).
_WARM_GATE = 5.0

#: Aggregate-throughput factor for the coalesced 32-client batch.
_BATCH_GATE = 2.0

_CLIENTS = 32


def _registrar_spec():
    """The registrar workload: the |Sigma| = 12 MUS-hunt family."""
    dtd, sigma = registrar_mus_family(8)
    phis = [str(phi) for phi in sigma[:4]]
    return dtd, sigma, phis


def test_warm_session_implies_p50_vs_cold_cli(tmp_path):
    """Gate 1: warm-session ``implies`` p50 >= 5x faster than the cold
    one-shot CLI on the registrar workload."""
    dtd, sigma, phis = _registrar_spec()
    dtd_path = tmp_path / "registrar.dtd"
    sigma_path = tmp_path / "registrar.sig"
    dtd_path.write_text(dtd_to_string(dtd))
    sigma_path.write_text("\n".join(str(phi) for phi in sigma) + "\n")

    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def cold_once() -> float:
        start = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "implies",
                str(dtd_path),
                str(sigma_path),
                phis[0],
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - start
        assert proc.returncode == 0, proc.stderr
        assert "implied: True" in proc.stdout
        return elapsed

    cold_p50 = statistics.median(cold_once() for _ in range(5))

    session = SpecSession(dtd, sigma, mode="warm")
    assert session.implies(phis[0])["implied"] is True  # build the workspace

    def warm_once() -> float:
        # Clear only the response cache: the repeat must re-solve on the
        # warm workspace (bound patches on the persistent assembly), not
        # just replay a recorded answer.
        session._responses.clear()
        session._response_bytes = 0
        start = time.perf_counter()
        payload = session.implies(phis[0])
        elapsed = time.perf_counter() - start
        assert payload["implied"] is True
        return elapsed

    warm_p50 = statistics.median(warm_once() for _ in range(9))
    assert session.stats.workspaces_reused >= 9

    speedup = cold_p50 / warm_p50
    assert speedup >= _WARM_GATE, (
        f"cold one-shot CLI p50 {cold_p50 * 1000:.1f}ms vs warm-session "
        f"implies p50 {warm_p50 * 1000:.1f}ms: {speedup:.1f}x < {_WARM_GATE}x"
    )


def _chain_workload():
    """The 32-request client stream over one chain specification.

    Thirty-two requests drawn from eight distinct implication queries —
    the serving shape the ISSUE motivates (many clients re-asking a
    stable spec), and the shape where the service's two amortizations
    both engage: coalescing shares validation and the encoding block
    across a batch, and the response cache answers exact repeats.  The
    one-shot side replays the *same* stream, paying a cold start per
    request (fresh parse, cleared encoding caches) the way the
    pre-service CLI did.
    """
    dtd = wide_flat_dtd(9)
    sigma_text = "\n".join(f"t{i}.x <= t{i + 1}.x" for i in range(7))
    distinct = []
    for i in range(8):
        for j in range(8):
            if i != j and len(distinct) < 8:
                distinct.append((f"t{i}.x <= t{j}.x", j > i))
    stream = [distinct[index % len(distinct)] for index in range(_CLIENTS)]
    return dtd, sigma_text, stream


def test_coalesced_batch_throughput_vs_sequential_one_shots():
    """Gate 2: 32 concurrent clients through the batcher >= 2x aggregate
    throughput over 32 sequential one-shot solves."""
    dtd, sigma_text, phis = _chain_workload()
    dtd_text = dtd_to_string(dtd)

    # -- one-shot side: fresh parse, cold encoding caches, per query ----
    from repro.dtd.parser import parse_dtd

    def one_shots() -> float:
        start = time.perf_counter()
        for phi, expected in phis:
            clear_encoding_cache()
            cold = SpecSession(parse_dtd(dtd_text), parse_constraints(sigma_text))
            assert cold.implies(phi)["implied"] is expected
        return time.perf_counter() - start

    sequential = min(one_shots() for _ in range(2))

    # -- coalesced side: 32 concurrent clients against one server -------
    server = CheckingServer(SessionRegistry())
    host, port = server.start_background()

    async def client(phi: str, expected: bool) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        request = {
            "id": phi,
            "op": "implies",
            "dtd": dtd_text,
            "constraints": sigma_text,
            "phi": phi,
        }
        writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        response = json.loads(await reader.readline())
        writer.close()
        assert response["ok"], response
        assert response["result"]["implied"] is expected, phi

    async def burst() -> None:
        await asyncio.gather(
            *(client(phi, expected) for phi, expected in phis)
        )

    try:
        # Warm the session admission (parse + validate) but none of the
        # 32 query answers, then time the full concurrent burst.
        server.registry.session_for(dtd_text, sigma_text)
        start = time.perf_counter()
        asyncio.run(burst())
        coalesced = time.perf_counter() - start
        stats = server.stats_payload()["server"]
        assert stats["errors"] == 0
        assert stats["batches_coalesced"] >= 1, stats
        assert stats["batch_width"] >= 2
    finally:
        server.close()

    throughput_gain = sequential / coalesced
    assert throughput_gain >= _BATCH_GATE, (
        f"32 sequential one-shots {sequential * 1000:.0f}ms vs coalesced "
        f"batch {coalesced * 1000:.0f}ms: {throughput_gain:.2f}x < "
        f"{_BATCH_GATE}x aggregate throughput"
    )


#: Shed-mode admitted-request p50 must stay within this factor of the
#: uncontended warm p50 (plus a 5ms floor absorbing event-loop noise on
#: sub-millisecond baselines).
_OVERLOAD_GATE = 2.0


def test_shed_mode_keeps_admitted_request_latency_bounded():
    """Gate 3: under a client flood with ``max_inflight=1``, admitted
    requests answer at uncontended speed (within 2x) while the rest shed
    with structured ``overloaded`` + ``retry_after`` answers."""
    dtd = wide_flat_dtd(9)
    sigma_text = "\n".join(f"t{i}.x <= t{i + 1}.x" for i in range(7))
    dtd_text = dtd_to_string(dtd)
    # 56 distinct queries (every ordered pair), each a genuine solve on
    # first ask; verdict is "implied" exactly when j > i on the chain.
    pairs = [
        (f"t{i}.x <= t{j}.x", j > i)
        for i in range(8)
        for j in range(8)
        if i != j
    ]

    server = CheckingServer(
        SessionRegistry(), max_inflight=1, queue_depth=1
    )
    host, port = server.start_background()

    def request_for(index: int) -> tuple[dict, bool]:
        phi, expected = pairs[index % len(pairs)]
        return (
            {
                "id": index,
                "op": "implies",
                "dtd": dtd_text,
                "constraints": sigma_text,
                "phi": phi,
            },
            expected,
        )

    async def timed_call(reader, writer, request):
        start = time.perf_counter()
        writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        line = await reader.readline()
        return time.perf_counter() - start, json.loads(line)

    async def uncontended(indices):
        reader, writer = await asyncio.open_connection(host, port)
        samples = []
        for index in indices:
            request, expected = request_for(index)
            elapsed, response = await timed_call(reader, writer, request)
            assert response["ok"], response
            assert response["result"]["implied"] is expected
            samples.append(elapsed)
        writer.close()
        return samples

    async def flood(indices):
        connections = [
            await asyncio.open_connection(host, port) for _ in indices
        ]

        async def one(connection, index):
            reader, writer = connection
            request, expected = request_for(index)
            elapsed, response = await timed_call(reader, writer, request)
            writer.close()
            if response["ok"]:
                assert response["result"]["implied"] is expected
                return ("admitted", elapsed)
            assert response["error"]["type"] == "overloaded", response
            assert response["error"]["retry_after"] > 0
            return ("shed", elapsed)

        return await asyncio.gather(
            *(one(conn, idx) for conn, idx in zip(connections, indices))
        )

    try:
        # Uncontended warm p50: sequential distinct solves after warmup.
        server.registry.session_for(dtd_text, sigma_text)
        warm_samples = asyncio.run(uncontended(range(12)))
        warm_p50 = statistics.median(warm_samples[2:])

        # Shed mode: bursts of 8 simultaneous clients against cap 1.
        admitted, shed = [], 0
        next_index = 12
        for _ in range(20):
            outcomes = asyncio.run(
                flood(range(next_index, next_index + 8))
            )
            next_index += 8
            for kind, elapsed in outcomes:
                if kind == "admitted":
                    admitted.append(elapsed)
                else:
                    shed += 1
            if len(admitted) >= 8:
                break
        assert shed > 0, "the flood never triggered shedding"
        assert admitted, "shedding starved every request"
        stats = server.stats_payload()["server"]
        assert stats["requests_shed"] == shed
        assert stats["errors"] == 0, "sheds must not count as errors"

        admitted_p50 = statistics.median(admitted)
        bound = _OVERLOAD_GATE * max(warm_p50, 0.005)
        assert admitted_p50 <= bound, (
            f"shed-mode admitted p50 {admitted_p50 * 1000:.1f}ms vs "
            f"uncontended warm p50 {warm_p50 * 1000:.1f}ms: exceeds "
            f"{_OVERLOAD_GATE}x (+5ms floor) — admission control is not "
            "keeping the queue ahead of admitted requests short"
        )
    finally:
        server.close()


#: Warm HTTP p50 must stay within this factor of the warm line p50
#: (plus a 1ms floor absorbing scheduler noise on sub-millisecond
#: cache-hit roundtrips).
_HTTP_GATE = 2.0

#: A concurrent scraper may move the admitted p50 by at most this factor
#: (again with a small floor: at cache-hit speed a single descheduling
#: is a larger fraction than any real perturbation).
_SCRAPE_GATE = 1.10


def test_warm_http_p50_within_2x_of_warm_line_p50():
    """Gate 4: cache-hit repeats over both transports against ONE live
    server; the HTTP skin (head parse, body frame, answer task) must not
    double the line protocol's roundtrip."""
    import http.client

    from repro.service.http import HTTPFrontend

    dtd, sigma_text, _ = _chain_workload()
    dtd_text = dtd_to_string(dtd)
    request = {
        "id": 0,
        "op": "implies",
        "dtd": dtd_text,
        "constraints": sigma_text,
        "phi": "t0.x <= t1.x",
    }
    body = json.dumps(request)

    server = CheckingServer(SessionRegistry())
    front = HTTPFrontend(server)
    http_address = front.start_background(line_port=0)
    try:
        host, port = server.address

        async def line_samples(repeats: int) -> list:
            reader, writer = await asyncio.open_connection(host, port)
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                writer.write((body + "\n").encode())
                await writer.drain()
                response = json.loads(await reader.readline())
                samples.append(time.perf_counter() - start)
                assert response["ok"] and response["result"]["implied"] is True
            writer.close()
            return samples

        # First ask pays the solve; everything timed after it is a
        # response-cache hit, so both medians measure transport overhead.
        asyncio.run(line_samples(1))
        line_p50 = statistics.median(asyncio.run(line_samples(21)))

        connection = http.client.HTTPConnection(*http_address, timeout=30)
        try:
            samples = []
            for _ in range(21):
                start = time.perf_counter()
                connection.request("POST", "/v1/implies", body=body)
                response = connection.getresponse()
                payload = json.loads(response.read())
                samples.append(time.perf_counter() - start)
                assert response.status == 200
                assert payload["ok"] and payload["result"]["implied"] is True
            http_p50 = statistics.median(samples)
        finally:
            connection.close()

        bound = _HTTP_GATE * max(line_p50, 0.001)
        assert http_p50 <= bound, (
            f"warm HTTP p50 {http_p50 * 1000:.2f}ms vs warm line p50 "
            f"{line_p50 * 1000:.2f}ms: exceeds {_HTTP_GATE}x (+1ms floor) — "
            "the HTTP skin is no longer thin"
        )
    finally:
        front.close()


def test_metrics_scrape_does_not_perturb_admitted_latency():
    """Gate 5: a continuous ``/metrics`` scraper beside 32 concurrent
    cached-query clients moves the admitted p50 by <= 10% (best-of-N)."""
    from repro.service.http import HTTPFrontend

    dtd, sigma_text, stream = _chain_workload()
    dtd_text = dtd_to_string(dtd)

    server = CheckingServer(SessionRegistry())
    front = HTTPFrontend(server)
    http_address = front.start_background(line_port=0)
    try:
        host, port = server.address

        async def warm() -> None:
            reader, writer = await asyncio.open_connection(host, port)
            for index, (phi, expected) in enumerate(stream):
                request = {
                    "id": index,
                    "op": "implies",
                    "dtd": dtd_text,
                    "constraints": sigma_text,
                    "phi": phi,
                }
                writer.write((json.dumps(request) + "\n").encode())
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"], response
                assert response["result"]["implied"] is expected
            writer.close()

        async def scraper(http_host: str, http_port: int) -> None:
            # ~50 scrapes/sec: orders of magnitude above any production
            # cadence, but paced — a busy loop would measure CPU theft on
            # a small container, not collector interference.
            reader, writer = await asyncio.open_connection(http_host, http_port)
            try:
                while True:
                    writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
                    await writer.drain()
                    length = 0
                    while True:
                        header = await reader.readline()
                        if header.lower().startswith(b"content-length:"):
                            length = int(header.split(b":", 1)[1])
                        if header in (b"\r\n", b"\n"):
                            break
                    page = await reader.readexactly(length)
                    assert b"repro_server_requests_total" in page
                    await asyncio.sleep(0.02)
            except asyncio.CancelledError:
                writer.close()
                raise

        async def admitted_p50(with_scraper: bool) -> float:
            scrape_task = None
            if with_scraper:
                scrape_task = asyncio.ensure_future(scraper(*http_address))
            samples = []

            async def client(offset: int) -> None:
                reader, writer = await asyncio.open_connection(host, port)
                for round_number in range(6):
                    phi, expected = stream[(offset + round_number) % len(stream)]
                    request = {
                        "id": offset,
                        "op": "implies",
                        "dtd": dtd_text,
                        "constraints": sigma_text,
                        "phi": phi,
                    }
                    start = time.perf_counter()
                    writer.write((json.dumps(request) + "\n").encode())
                    await writer.drain()
                    response = json.loads(await reader.readline())
                    samples.append(time.perf_counter() - start)
                    assert response["ok"], response
                    assert response["result"]["implied"] is expected
                writer.close()

            try:
                await asyncio.gather(*(client(i) for i in range(_CLIENTS)))
            finally:
                if scrape_task is not None:
                    scrape_task.cancel()
                    await asyncio.gather(scrape_task, return_exceptions=True)
            return statistics.median(samples)

        asyncio.run(warm())
        # Best-of-N on both sides, rounds interleaved so machine drift
        # (page cache, thermal, CI neighbours) cancels instead of biasing
        # one mode.
        quiet_rounds, scraped_rounds = [], []
        for _ in range(5):
            quiet_rounds.append(asyncio.run(admitted_p50(False)))
            scraped_rounds.append(asyncio.run(admitted_p50(True)))
        quiet = min(quiet_rounds)
        scraped = min(scraped_rounds)

        # 10% relative plus a 2ms absolute floor: at single-digit-ms
        # baselines on a shared container, one descheduling is already
        # larger than any genuine collector interference.
        bound = _SCRAPE_GATE * quiet + 0.002
        assert scraped <= bound, (
            f"admitted p50 under scrape {scraped * 1000:.2f}ms vs quiet "
            f"{quiet * 1000:.2f}ms: scraping perturbs serving beyond "
            f"{(_SCRAPE_GATE - 1) * 100:.0f}% (+2ms floor)"
        )
    finally:
        front.close()
