"""Witness synthesis scaling: the constructive side of Lemma 4.5.

The decision procedures only need feasibility; producing an actual
document adds skeleton assembly (backtracking over Alt choices), tree
contraction (Lemma 4.3) and value assignment (Lemma 4.4). This bench
measures that constructive pipeline as witness sizes grow — near-linear
growth validates the assembly heuristic (the worst case is exponential in
adversarial Alt nests, exercised in tests, not here).
"""

import pytest

from repro.dtd.model import DTD
from repro.dtd.simplify import simplify_dtd
from repro.encoding.combined import build_encoding
from repro.encoding.dtd_system import encode_dtd, ext_var
from repro.constraints.parser import parse_constraints
from repro.ilp.condsys import solve_conditional_system
from repro.ilp.scipy_backend import solve_milp
from repro.witness.skeleton import assemble_skeleton
from repro.witness.synthesize import synthesize_witness


@pytest.mark.parametrize("count", [10, 100, 1000])
def test_star_assembly_scaling(benchmark, count):
    """Wide trees: one star, `count` children."""
    d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"})
    simple = simplify_dtd(d)
    system = encode_dtd(simple).system.copy()
    system.add_ge({ext_var("a"): 1}, count)
    solution = solve_milp(system)
    assert solution.feasible

    tree = benchmark(assemble_skeleton, simple, solution.values)
    assert len(tree.ext("a")) >= count


@pytest.mark.parametrize("depth", [10, 50, 200])
def test_recursion_assembly_scaling(benchmark, depth):
    """Deep trees: a right-recursive chain of the requested depth."""
    d = DTD.build("r", {"r": "(a)", "a": "(a?)"})
    simple = simplify_dtd(d)
    system = encode_dtd(simple).system.copy()
    system.add_ge({ext_var("a"): 1}, depth)
    solution = solve_milp(system)
    assert solution.feasible

    tree = benchmark(assemble_skeleton, simple, solution.values)
    assert len(tree.ext("a")) >= depth


@pytest.mark.parametrize("count", [10, 100, 500])
def test_full_pipeline_with_values(benchmark, count):
    """Solve + skeleton + contraction + keyed value assignment."""
    d = DTD.build("r", {"r": "(item*)", "item": "EMPTY"},
                  attrs={"item": ["sku"]})
    sigma = parse_constraints("item.sku -> item")
    encoding = build_encoding(d, sigma)
    encoding.condsys.base.add_ge({ext_var("item"): 1}, count, label="scale")
    result, _stats = solve_conditional_system(encoding.condsys)
    assert result.feasible

    tree = benchmark(synthesize_witness, encoding, result.values)
    items = tree.ext("item")
    assert len(items) >= count
    assert len({node.attrs["sku"] for node in items}) == len(items)
