"""Experiment F5.6 — Figure 5, implication row.

Paper claims: implication is linear-time for keys only (Theorem 3.5(3)),
coNP-complete for unary keys/FKs (Theorem 4.10) and for unary keys and
inclusion constraints (Theorem 5.4), undecidable for multi-attribute
C_K,FK (Corollary 3.4 — covered in bench_figure5_undecidable). The coNP
procedures run consistency on Sigma ∪ {not phi}; negated keys exercise
the C^unary_K¬,IC machinery, negated inclusions the full Theorem 5.1
set-representation machinery.
"""

import pytest

from repro.checkers.implication import implies, implies_all
from repro.constraints.ast import Key
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.dtd.model import DTD
from repro.workloads.generators import keys_only_family, star_schema_family

SCALES = [4, 16, 64]


@pytest.mark.parametrize("scale", SCALES)
def test_keys_only_implication_linear(benchmark, scale, no_witness_config):
    dtd, sigma = keys_only_family(scale)
    phi = Key(f"rec{scale // 2}", ("a", "b", "c"))
    result = benchmark(implies, dtd, sigma, phi, no_witness_config)
    assert result.implied


@pytest.mark.parametrize("dims", [1, 2, 4])
def test_unary_key_implication_conp(benchmark, dims, no_witness_config):
    """Implication of a key: consistency of Sigma + NegKey (Thm 4.10)."""
    dtd, sigma = star_schema_family(dims, consistent=True)
    phi = parse_constraint("dim0.id -> dim0")  # literally in Sigma
    result = benchmark(implies, dtd, sigma, phi, no_witness_config)
    assert result.implied


@pytest.mark.parametrize("dims", [1, 2, 4])
def test_unary_inclusion_implication_conp(benchmark, dims, no_witness_config):
    """Implication of an inclusion: the Theorem 5.1 negation machinery."""
    dtd, sigma = star_schema_family(dims, consistent=True)
    phi = parse_constraint("fact.ref0 <= dim0.id")
    result = benchmark(implies, dtd, sigma, phi, no_witness_config)
    assert result.implied


def test_inclusion_chain_implication(benchmark, no_witness_config):
    """Transitivity through a chain of inclusion constraints."""
    dtd = DTD.build(
        "r",
        {"r": "(a*, b*, c*, d*)", "a": "EMPTY", "b": "EMPTY",
         "c": "EMPTY", "d": "EMPTY"},
        attrs={t: ["x"] for t in "abcd"},
    )
    sigma = parse_constraints("a.x <= b.x\nb.x <= c.x\nc.x <= d.x")
    phi = parse_constraint("a.x <= d.x")
    result = benchmark(implies, dtd, sigma, phi, no_witness_config)
    assert result.implied


@pytest.mark.parametrize("dims", [2, 4])
def test_batch_implication_shares_encoding(benchmark, dims, no_witness_config):
    """The whole-Sigma audit shape: every constraint tested against the
    rest in one ``implies_all`` batch, sharing the per-DTD encoding."""
    dtd, sigma = star_schema_family(dims, consistent=True)
    phis = [
        *(parse_constraint(f"dim{i}.id -> dim{i}") for i in range(dims)),
        *(parse_constraint(f"fact.ref{i} <= dim{i}.id") for i in range(dims)),
    ]
    results = benchmark(implies_all, dtd, sigma, phis, no_witness_config)
    assert all(r.implied for r in results)


def test_refuted_implication_with_counterexample(benchmark):
    """The expensive direction: counterexample synthesis included."""
    dtd, sigma = star_schema_family(2, consistent=True)
    phi = parse_constraint("dim0.id <= fact.ref0")  # converse: not implied
    result = benchmark(implies, dtd, sigma, phi)
    assert not result.implied
    assert result.counterexample is not None
