"""Experiment F5.4 — Figure 5, "fixed DTD, unary constraints" column.

Paper claim (Corollaries 4.11 and 5.5): for a FIXED DTD, consistency and
implication of unary constraints are decidable in PTIME — the number of
variables in Psi(D, Sigma) is bounded by the DTD, and bounded-dimension
integer programming is polynomial (Lenstra). Our solver substitutes
branch-and-bound for Lenstra's algorithm (see DESIGN.md); the
benchmark holds the DTD constant and sweeps |Sigma|, expecting polynomial
(near-linear) growth in the measured times.
"""

import pytest

from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.constraints.parser import parse_constraint
from repro.workloads.generators import fixed_dtd_constraint_family

SCALES = [4, 16, 64, 128]


@pytest.mark.parametrize("num_constraints", SCALES)
def test_consistency_fixed_dtd(benchmark, num_constraints, no_witness_config):
    dtd, sigma = fixed_dtd_constraint_family(num_constraints)
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert result.consistent


@pytest.mark.parametrize("num_constraints", SCALES)
def test_consistency_fixed_dtd_with_keys(benchmark, num_constraints, no_witness_config):
    dtd, sigma = fixed_dtd_constraint_family(num_constraints)
    sigma = sigma + [parse_constraint("a.x -> a"), parse_constraint("b.x -> b")]
    result = benchmark(check_consistency, dtd, sigma, no_witness_config)
    assert result.consistent


@pytest.mark.parametrize("num_constraints", [4, 16, 64])
def test_implication_fixed_dtd(benchmark, num_constraints, no_witness_config):
    """Implication over the fixed DTD: the IC cycle implies its closure."""
    dtd, sigma = fixed_dtd_constraint_family(num_constraints)
    # The family cycles a->b->c->a on attribute x at indices 0, 2, 4...;
    # with at least 3 constraints the transitive inclusion a.x <= c.x holds
    # only when the even-index chain is present; just check decidability
    # and correctness against a constraint literally in Sigma.
    phi = sigma[0]
    result = benchmark(implies, dtd, sigma, phi, no_witness_config)
    assert result.implied
