"""Per-request wall-clock budgets with cooperative cancellation.

A :class:`Deadline` is an absolute ``time.monotonic()`` expiry.  The
service front end opens a :func:`deadline_scope` around each request's
solver work; deep loops — the support-branch DFS, the parallel wave
dispatcher, the rebuild oracle — call :func:`check_deadline` at their
node boundaries and raise :class:`~repro.errors.BudgetExceededError`
once the budget is spent.  The scope travels through a
:class:`contextvars.ContextVar`, so it needs no parameter threading, is
per-thread (each executor thread serves one request at a time), and is
inherited by fork-based solver workers (``CLOCK_MONOTONIC`` is
system-wide on the platforms the fork pool runs on, so the absolute
expiry stays meaningful across the fork).

When no scope is open, :func:`check_deadline` is a single
``ContextVar.get`` — cheap enough for per-node use.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.errors import BudgetExceededError


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry: ``budget`` seconds measured from ``start``."""

    expires_at: float
    budget: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """The deadline ``seconds`` from now (clock: ``time.monotonic``)."""
        if seconds < 0:
            raise ValueError("a deadline budget cannot be negative")
        return cls(expires_at=time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def exceeded(self) -> BudgetExceededError:
        """The structured error reporting this deadline as spent."""
        return BudgetExceededError(
            f"request deadline of {self.budget:.3f}s exceeded"
        )


#: The ambient deadline of the request being served (None = unbounded).
_DEADLINE: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The deadline governing the current context, if any."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Run a block under ``deadline`` (``None`` leaves the scope open).

    Nested scopes keep the *tighter* expiry, so an outer request budget
    cannot be loosened by an inner caller.

    >>> with deadline_scope(Deadline.after(60.0)):
    ...     current_deadline().budget
    60.0
    >>> current_deadline() is None
    True
    """
    if deadline is None:
        yield
        return
    outer = _DEADLINE.get()
    if outer is not None and outer.expires_at <= deadline.expires_at:
        yield
        return
    token = _DEADLINE.set(deadline)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def check_deadline() -> None:
    """Raise :class:`BudgetExceededError` if the ambient deadline passed.

    The cooperative cancellation point: loops that can run long call
    this once per iteration.

    >>> check_deadline()   # no scope open: a no-op
    >>> with deadline_scope(Deadline(expires_at=0.0, budget=0.0)):
    ...     check_deadline()
    Traceback (most recent call last):
        ...
    repro.errors.BudgetExceededError: request deadline of 0.000s exceeded
    """
    deadline = _DEADLINE.get()
    if deadline is not None and deadline.expired():
        raise deadline.exceeded()
