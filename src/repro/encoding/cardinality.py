"""``C_Sigma`` and the attribute-totality conditionals (Lemmas 4.4, 4.6).

For every attribute pair ``(tau, l)`` with ``l in R(tau)`` the variable
``|ext(tau.l)|`` counts the *distinct* ``l``-values of ``tau`` elements.
Rows (referring to an arbitrary tree valid w.r.t. the DTD):

* ``0 <= |ext(tau.l)| <= |ext(tau)|`` — always (each element contributes
  one value);
* a key ``tau.l -> tau`` holds iff ``|ext(tau.l)| = |ext(tau)|``;
* an inclusion ``tau1.l1 ⊆ tau2.l2`` implies
  ``|ext(tau1.l1)| <= |ext(tau2.l2)|`` (and the witness construction of
  Lemma 4.4 realizes the converse with prefix-nested value sets);
* a negated key ``tau.l -/-> tau`` holds iff
  ``|ext(tau.l)| <= |ext(tau)| - 1`` (Corollary 4.9);
* attribute totality — ``|ext(tau)| > 0 -> |ext(tau.l)| > 0`` — is *not* a
  linear row; it is recorded as a conditional for the support solver
  (the paper handles it with a big-M constant instead; see DESIGN.md).

Support clauses: an inclusion constraint forces ``s(tau1) -> s(tau2)``
(a present tau1 has an l1-value, which must appear among tau2's values, so
some tau2 element exists); negated constraints force their element types
present (``tau`` for a negated key needs two elements; ``tau1`` for a
negated inclusion needs a witness element).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.ast import (
    Constraint,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.dtd.model import DTD
from repro.encoding.dtd_system import ext_var
from repro.errors import InvalidConstraintError
from repro.ilp.condsys import SupportClause
from repro.ilp.model import LinearSystem, VarId


def attr_var(tau: str, attr: str) -> VarId:
    """The ``|ext(tau.l)|`` variable identifier."""
    return ("attr", tau, attr)


@dataclass
class CardinalityEncoding:
    """The ``C_Sigma`` rows plus conditional/support bookkeeping.

    ``rows_of``, ``clauses_of`` and ``forced_of`` record, per constraint,
    the stable row indices it contributed to the system, the indices of
    its support clauses within :attr:`clauses`, and the element types it
    forces present — the toggle registry diagnostics uses to (de)activate
    individual constraints on the assembled system without re-encoding
    (DESIGN.md section 6).  The attribute-bound rows and the totality
    conditionals are *not* registered: they depend only on the DTD and
    stay active under every constraint subset.
    """

    requires_if_present: dict[str, tuple[VarId, ...]] = field(default_factory=dict)
    clauses: tuple[SupportClause, ...] = ()
    forced_true: frozenset[str] = frozenset()
    rows_of: dict[Constraint, tuple[int, ...]] = field(default_factory=dict)
    clauses_of: dict[Constraint, tuple[int, ...]] = field(default_factory=dict)
    forced_of: dict[Constraint, frozenset[str]] = field(default_factory=dict)


def encode_constraints(
    dtd: DTD,
    system: LinearSystem,
    keys: list[Key],
    inclusions: list[InclusionConstraint],
    neg_keys: list[NegKey],
    neg_inclusions: list[NegInclusion],
) -> CardinalityEncoding:
    """Add ``C_Sigma`` rows (for unary constraints) to ``system``.

    All constraints must be unary; multi-attribute input is a caller bug
    and raises :class:`InvalidConstraintError`.
    """
    for phi in [*keys, *inclusions]:
        if not phi.is_unary():
            raise InvalidConstraintError(
                f"cardinality encoding handles unary constraints only: {phi}"
            )

    # Bounds 0 <= |ext(tau.l)| <= |ext(tau)| for *all* attribute pairs, and
    # the attribute-totality conditionals (lower bounds are implicit: all
    # ILP variables are nonnegative).
    requires: dict[str, list[VarId]] = {}
    for tau, attr in dtd.attribute_pairs():
        var = attr_var(tau, attr)
        system.add_le({var: 1, ext_var(tau): -1}, 0, label=f"attr-bound:{tau}.{attr}")
        requires.setdefault(tau, []).append(var)

    clauses: list[SupportClause] = []
    forced_true: set[str] = set()
    rows_of: dict[Constraint, tuple[int, ...]] = {}
    clauses_of: dict[Constraint, tuple[int, ...]] = {}
    forced_of: dict[Constraint, frozenset[str]] = {}

    for key in keys:
        tau, attr = key.element_type, key.attrs[0]
        row = system.add_eq(
            {attr_var(tau, attr): 1, ext_var(tau): -1}, 0, label=f"key:{tau}.{attr}"
        )
        rows_of[key] = (row,)

    for inc in inclusions:
        child = attr_var(inc.child_type, inc.child_attrs[0])
        parent = attr_var(inc.parent_type, inc.parent_attrs[0])
        rows: tuple[int, ...] = ()
        if child != parent:
            rows = (system.add_le({child: 1, parent: -1}, 0, label=f"ic:{inc}"),)
        rows_of[inc] = rows
        if inc.child_type != inc.parent_type:
            clauses_of[inc] = (len(clauses),)
            clauses.append(
                SupportClause(inc.child_type, frozenset([inc.parent_type]))
            )

    for neg in neg_keys:
        tau, attr = neg.element_type, neg.attr
        # |ext(tau.l)| < |ext(tau)|, i.e. <= ext - 1; with attribute
        # totality this forces |ext(tau)| >= 2: a genuine duplicate exists.
        row = system.add_le(
            {attr_var(tau, attr): 1, ext_var(tau): -1}, -1, label=f"negkey:{neg}"
        )
        rows_of[neg] = (row,)
        forced_true.add(tau)
        forced_of[neg] = frozenset({tau})

    for neg in neg_inclusions:
        # The counting part lives in the set-representation block; here we
        # only record that a witness tau1 element must exist.
        forced_true.add(neg.child_type)
        forced_of[neg] = frozenset({neg.child_type})

    return CardinalityEncoding(
        requires_if_present={tau: tuple(vars_) for tau, vars_ in requires.items()},
        clauses=tuple(clauses),
        forced_true=frozenset(forced_true),
        rows_of=rows_of,
        clauses_of=clauses_of,
        forced_of=forced_of,
    )
