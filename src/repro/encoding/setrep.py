"""Set representations for negated inclusion constraints (Theorem 5.1).

Cardinalities alone cannot express ``tau_i.l_i ⊄ tau_j.l_j`` — it speaks
about *set difference*, not sizes. The paper extends the system with
matrices ``U = (u_ij)``, ``V = (v_ij)`` intended as
``u_ij = |ext(tau_i.l_i) ∩ ext(tau_j.l_j)|`` and
``v_ij = |ext(tau_i.l_i) \\ ext(tau_j.l_j)|``, requires

* ``|ext(tau_i.l_i)| = u_ii = u_ij + v_ij`` for all ``i, j``;
* ``v_ij = 0`` for each inclusion ``i ⊆ j`` in Sigma (and ``v_ii = 0``);
* ``v_ij >= 1`` for each negated inclusion ``i ⊄ j``,

and demands that ``U, V`` admit a **set representation** (finite sets
``A_1..A_n`` realizing them). Lemma 5.3 shows this is equivalent to the
solvability of the extension ``Psi'`` with one variable ``z_theta`` per
nonempty ``theta ⊆ {1..n}`` — ``z_theta`` counts the values lying in
exactly the sets ``{A_i : theta(i) = 1}`` — via

    u_ij = sum of z_theta with theta(i) = theta(j) = 1,
    v_ij = sum of z_theta with theta(i) = 1, theta(j) = 0.

We solve ``Psi'`` directly: it is exponential only in the number of
*active* attribute pairs (those occurring in an inclusion or negated
inclusion), which is small in practice and capped explicitly. A feasible
``z`` assignment *is* a set representation, which the witness synthesizer
turns into concrete attribute values (Lemma 5.2).

For fidelity, this module also provides the paper's intersection-pattern
machinery: :func:`build_uv_matrices`, the ``2n x 2n`` matrix ``W`` of
Theorem 5.1, and a decision procedure :func:`has_set_representation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.constraints.ast import Constraint, InclusionConstraint, NegInclusion
from repro.encoding.cardinality import attr_var
from repro.errors import ComplexityLimitError
from repro.ilp.model import LinearSystem, VarId


def z_var(mask: int) -> VarId:
    """The ``z_theta`` variable for the membership bitmask ``theta``."""
    return ("z", mask)


@dataclass
class SetRepBlock:
    """Bookkeeping for a built ``z_theta`` block.

    ``pairs`` lists the active attribute pairs in index order; bit ``i`` of
    a mask corresponds to ``pairs[i]``.  ``rows_of`` records the stable row
    indices each (negated) inclusion contributed — its part of the toggle
    registry (the ``setrep-card`` rows depend only on the pair set and are
    never toggleable).
    """

    pairs: tuple[tuple[str, str], ...]
    rows_of: dict[Constraint, tuple[int, ...]] = field(default_factory=dict)

    @property
    def num_masks(self) -> int:
        return (1 << len(self.pairs)) - 1

    def index_of(self, tau: str, attr: str) -> int:
        return self.pairs.index((tau, attr))

    def masks_with(self, bit: int) -> list[int]:
        """All nonempty masks with ``bit`` set."""
        return [m for m in range(1, (1 << len(self.pairs))) if m >> bit & 1]

    def masks_with_without(self, bit_in: int, bit_out: int) -> list[int]:
        """All nonempty masks with ``bit_in`` set and ``bit_out`` clear."""
        return [
            m
            for m in range(1, (1 << len(self.pairs)))
            if (m >> bit_in & 1) and not (m >> bit_out & 1)
        ]


def active_pairs(
    inclusions: Sequence[InclusionConstraint],
    neg_inclusions: Sequence[NegInclusion],
) -> tuple[tuple[str, str], ...]:
    """Attribute pairs occurring in any (negated) inclusion constraint."""
    seen: list[tuple[str, str]] = []

    def add(tau: str, attr: str) -> None:
        pair = (tau, attr)
        if pair not in seen:
            seen.append(pair)

    for inc in inclusions:
        add(inc.child_type, inc.child_attrs[0])
        add(inc.parent_type, inc.parent_attrs[0])
    for neg in neg_inclusions:
        add(neg.child_type, neg.child_attr)
        add(neg.parent_type, neg.parent_attr)
    return tuple(seen)


def encode_set_representation(
    system: LinearSystem,
    inclusions: Sequence[InclusionConstraint],
    neg_inclusions: Sequence[NegInclusion],
    max_active: int = 12,
) -> SetRepBlock:
    """Add the ``z_theta`` block tying ``|ext(tau.l)|`` to set membership.

    Only called when negated inclusions are present. Raises
    :class:`ComplexityLimitError` beyond ``max_active`` active pairs (the
    block has ``2^n - 1`` variables; the problem is NP-complete, so some
    cap is inevitable — raise it explicitly for larger instances).
    """
    pairs = active_pairs(inclusions, neg_inclusions)
    if len(pairs) > max_active:
        raise ComplexityLimitError(
            f"{len(pairs)} attribute pairs occur in (negated) inclusion "
            f"constraints; the set-representation block is exponential and "
            f"capped at {max_active} (override with max_setrep_attrs)"
        )
    block = SetRepBlock(pairs)

    # |ext(tau_i.l_i)| = u_ii = sum of z over masks containing i.
    for i, (tau, attr) in enumerate(pairs):
        coeffs: dict[VarId, int] = {attr_var(tau, attr): 1}
        for mask in block.masks_with(i):
            coeffs[z_var(mask)] = -1
        system.add_eq(coeffs, 0, label=f"setrep-card:{tau}.{attr}")

    # v_ij = 0 for inclusions i ⊆ j (v_ii = 0 holds by construction:
    # no mask has bit i both set and clear).
    for inc in inclusions:
        i = block.index_of(inc.child_type, inc.child_attrs[0])
        j = block.index_of(inc.parent_type, inc.parent_attrs[0])
        if i == j:
            continue
        coeffs = {z_var(mask): 1 for mask in block.masks_with_without(i, j)}
        if coeffs:
            row = system.add_eq(coeffs, 0, label=f"setrep-ic:{inc}")
            block.rows_of[inc] = block.rows_of.get(inc, ()) + (row,)

    # v_ij >= 1 for negated inclusions i ⊄ j.
    for neg in neg_inclusions:
        i = block.index_of(neg.child_type, neg.child_attr)
        j = block.index_of(neg.parent_type, neg.parent_attr)
        if i == j:
            # tau.l ⊄ tau.l is unsatisfiable: force 0 >= 1.
            row = system.add_ge({}, 1, label=f"setrep-negic-self:{neg}")
            block.rows_of[neg] = block.rows_of.get(neg, ()) + (row,)
            continue
        coeffs = {z_var(mask): 1 for mask in block.masks_with_without(i, j)}
        row = system.add_ge(coeffs, 1, label=f"setrep-negic:{neg}")
        block.rows_of[neg] = block.rows_of.get(neg, ()) + (row,)

    return block


# ---------------------------------------------------------------------------
# Paper-faithful intersection-pattern machinery (Theorem 5.1)
# ---------------------------------------------------------------------------


def build_uv_matrices(sets: Sequence[frozenset[str] | set[str]]):
    """``U, V`` matrices of a family of finite sets.

    ``u_ij = |A_i ∩ A_j|``, ``v_ij = |A_i \\ A_j|`` — the intended
    interpretation in Theorem 5.1.
    """
    n = len(sets)
    u = [[0] * n for _ in range(n)]
    v = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            u[i][j] = len(set(sets[i]) & set(sets[j]))
            v[i][j] = len(set(sets[i]) - set(sets[j]))
    return u, v


def build_intersection_pattern_matrix(
    u: Sequence[Sequence[int]], v: Sequence[Sequence[int]], big_k: int
):
    """The ``2n x 2n`` matrix ``W`` from the proof of Theorem 5.1.

    ``W`` is an intersection pattern iff ``U, V`` admit a set
    representation inside a universe of size ``big_k`` (the proof picks
    ``K = M * n`` for the solution bound ``M``).
    """
    n = len(u)
    w = [[0] * (2 * n) for _ in range(2 * n)]
    for i in range(2 * n):
        for j in range(2 * n):
            if i < n and j < n:
                w[i][j] = u[i][j]
            elif i < n <= j:
                w[i][j] = v[i][j - n]
            elif j < n <= i:
                w[i][j] = v[j][i - n]
            else:
                a, b = i - n, j - n
                w[i][j] = big_k - u[a][b] - v[a][b] - v[b][a]
    return w


def has_set_representation(
    u: Sequence[Sequence[int]], v: Sequence[Sequence[int]], max_active: int = 12
) -> bool:
    """Do ``U, V`` admit a set representation? (Lemma 5.3 check.)

    Decided by solving the ``z_theta`` system for the given matrices —
    small inputs only (exponential in ``n``). Uses the fast backend with
    certified fallback on numerical doubt.
    """
    from repro.ilp.exact import solve_exact
    from repro.ilp.scipy_backend import solve_milp

    n = len(u)
    if n > max_active:
        raise ComplexityLimitError(
            f"set-representation check capped at {max_active} sets, got {n}"
        )
    system = LinearSystem()
    for i in range(n):
        for j in range(n):
            coeffs_u: dict[VarId, int] = {}
            coeffs_v: dict[VarId, int] = {}
            for mask in range(1, 1 << n):
                if mask >> i & 1 and mask >> j & 1:
                    coeffs_u[z_var(mask)] = 1
                if mask >> i & 1 and not (mask >> j & 1):
                    coeffs_v[z_var(mask)] = 1
            system.add_eq(coeffs_u, u[i][j], label=f"u[{i}][{j}]")
            system.add_eq(coeffs_v, v[i][j], label=f"v[{i}][{j}]")
    result = solve_milp(system)
    if result.status == "error":
        result = solve_exact(system)
    return result.feasible


def extract_sets(
    block: SetRepBlock, values: Mapping[VarId, int], prefix: str = "v"
) -> dict[tuple[str, str], list[str]]:
    """Concrete value sets realizing a feasible ``z`` assignment.

    Returns, per active pair, the list of value tokens forming ``A_i``;
    tokens are shared across pairs exactly according to mask membership,
    so intersections and differences match ``U, V`` by construction.
    """
    tokens: dict[int, list[str]] = {}
    for mask in range(1, (1 << len(block.pairs))):
        count = values.get(z_var(mask), 0)
        if count > 0:
            tokens[mask] = [f"{prefix}{mask}_{t}" for t in range(count)]
    sets: dict[tuple[str, str], list[str]] = {}
    for i, pair in enumerate(block.pairs):
        members: list[str] = []
        for mask, names in tokens.items():
            if mask >> i & 1:
                members.extend(names)
        sets[pair] = members
    return sets
