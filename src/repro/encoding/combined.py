"""Assembly of ``Psi(D, Sigma)`` (Lemma 4.6, Theorem 4.1, Theorem 5.1).

:func:`build_encoding` turns a DTD and a set of *unary* constraints into a
single :class:`~repro.ilp.condsys.ConditionalSystem`:

* ``Psi_DN`` rows for the simplified DTD (:mod:`repro.encoding.dtd_system`);
* ``C_Sigma`` rows, negated-key rows and attribute-totality conditionals
  (:mod:`repro.encoding.cardinality`);
* the ``z_theta`` set-representation block when negated inclusion
  constraints are present (:mod:`repro.encoding.setrep`);
* support clauses and forced/forbidden supports for the search.

The resulting system is solvable iff an XML tree conforming to ``D`` and
satisfying ``Sigma`` exists; a feasible solution is realizable as an actual
witness tree by :mod:`repro.witness`.

The ``Psi_DN`` block depends only on the DTD, so it is memoized per DTD
value (:func:`encoding_cache_stats` reports hit rates): batch callers such
as :func:`repro.checkers.implication.implies_all` re-encode only the
constraint rows per query.  The cached system is never handed out directly
— every :func:`build_encoding` call copies it before the constraint
encoders append rows.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.constraints.classes import expand_foreign_keys, validate_constraints
from repro.dtd.analysis import usable_types
from repro.dtd.model import DTD
from repro.dtd.simplify import SimpleDTD, simplify_dtd
from repro.encoding.cardinality import encode_constraints
from repro.encoding.dtd_system import DTDSystem, RuleSite, encode_dtd, ext_var
from repro.encoding.setrep import SetRepBlock, encode_set_representation
from repro.errors import InvalidConstraintError
from repro.ilp.condsys import ConditionalSystem


@dataclass(frozen=True)
class ConstraintToggle:
    """One constraint's toggleable contribution to ``Psi(D, Sigma)``.

    ``rows`` are stable base-row indices (``C_Sigma`` and set-representation
    rows); ``clause_ids`` index into ``condsys.clauses``; ``forced_true``
    are the element types the constraint forces present.  Deactivating a
    constraint means dropping all three from the probe: rows by bound
    toggles on the assembled system, clauses and forced supports by
    filtering the :class:`~repro.ilp.condsys.ConditionalSystem` view (they
    are only sound while their constraint is active).
    """

    rows: tuple[int, ...] = ()
    clause_ids: tuple[int, ...] = ()
    forced_true: frozenset[str] = frozenset()


@dataclass
class ConsistencyEncoding:
    """Everything the solver and the witness synthesizer need."""

    dtd: DTD
    simple: SimpleDTD
    condsys: ConditionalSystem
    keys: list[Key]
    inclusions: list[InclusionConstraint]
    neg_keys: list[NegKey]
    neg_inclusions: list[NegInclusion]
    setrep: SetRepBlock | None
    constraints: list[Constraint]
    #: Toggle registry, keyed by *expanded* unary constraint (foreign keys
    #: appear through their inclusion + key components).
    toggles: dict[Constraint, ConstraintToggle] = field(default_factory=dict)
    #: Rule-site provenance (``repair_sites=True`` only): every ``Psi_DN``
    #: rule row, in encoder order, for the repair engine's loosening probes.
    sites: tuple[RuleSite, ...] = ()
    #: Per-site toggle (``repair_sites=True`` only): deactivating it leaves
    #: the site's one-sided shadow row, turning the rule equation into the
    #: loosened (children-optional) projection.
    site_toggles: dict[int, ConstraintToggle] = field(default_factory=dict)


@dataclass
class _DTDBlock:
    """The constraint-independent part of the encoding, cached per DTD."""

    simple: SimpleDTD
    dtd_system: DTDSystem
    forced_false: frozenset[str]
    ext_vars: dict[str, object]


#: LRU cache of ``Psi_DN`` blocks, keyed by DTD *value* (two structurally
#: equal DTDs share an entry). Bounded so long-running batch services do
#: not accumulate encodings for every DTD they ever saw.
_DTD_BLOCK_CACHE: "OrderedDict[object, _DTDBlock]" = OrderedDict()
_DTD_BLOCK_CACHE_LIMIT = 128
_CACHE_STATS = {"hits": 0, "misses": 0}


def encoding_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the per-DTD ``Psi_DN`` cache."""
    return dict(_CACHE_STATS)


def clear_encoding_cache() -> None:
    """Drop all cached ``Psi_DN`` blocks and reset the counters."""
    _DTD_BLOCK_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def canonical_spec(dtd: DTD, constraints: list[Constraint]) -> str:
    """The canonical text form of a ``(DTD, Sigma)`` specification.

    The DTD is rendered in declaration syntax (root first, a stable
    round-trip of :func:`repro.dtd.serializer.dtd_to_string`) and the
    constraints in the library's text syntax, one per line, *in order*:
    constraint order is part of a specification's identity because
    order-sensitive consumers (the MUS filters, toggle row ids) would
    otherwise serve one ordering's answers for another.

    >>> from repro.dtd.model import DTD
    >>> d = DTD.build("r", {"r": "(a)", "a": "EMPTY"}, attrs={"a": ["k"]})
    >>> print(canonical_spec(d, []))
    <!ELEMENT r (a)>
    <!ELEMENT a EMPTY>
    <!ATTLIST a k CDATA #REQUIRED>
    <BLANKLINE>
    """
    from repro.dtd.serializer import dtd_to_string

    lines = [dtd_to_string(dtd)]
    lines.extend(str(phi) for phi in constraints)
    return "\n".join(lines)


def spec_fingerprint(dtd: DTD, constraints: list[Constraint]) -> str:
    """A stable hex fingerprint of ``(DTD, Sigma)`` — the session cache key.

    Two structurally equal specifications (same DTD value, same
    constraints in the same order) always produce the same fingerprint,
    across processes and runs; any difference in root, content models,
    attributes, or the constraint sequence produces a different one.

    >>> from repro.dtd.model import DTD
    >>> d = DTD.build("r", {"r": "(a)", "a": "EMPTY"}, attrs={"a": ["k"]})
    >>> fp = spec_fingerprint(d, [])
    >>> fp == spec_fingerprint(d, []) and len(fp) == 64
    True
    """
    digest = hashlib.sha256(canonical_spec(dtd, constraints).encode("utf-8"))
    return digest.hexdigest()


def _dtd_cache_key(dtd: DTD) -> object:
    """A hashable value key for a DTD (regex ASTs are frozen/hashable)."""
    return (
        dtd.root,
        dtd.element_types,
        tuple(sorted(dtd.content.items())),
        tuple(sorted(dtd.attrs_of.items())),
    )


def _dtd_block(dtd: DTD) -> _DTDBlock:
    """The cached DTD-only encoding block (simplify + ``Psi_DN`` + usability)."""
    key = _dtd_cache_key(dtd)
    block = _DTD_BLOCK_CACHE.get(key)
    if block is not None:
        _CACHE_STATS["hits"] += 1
        _DTD_BLOCK_CACHE.move_to_end(key)
        return block
    _CACHE_STATS["misses"] += 1
    simple = simplify_dtd(dtd)
    dtd_system = encode_dtd(simple)
    usable = usable_types(simple.to_dtd())
    block = _DTDBlock(
        simple=simple,
        dtd_system=dtd_system,
        forced_false=frozenset(set(simple.types) - set(usable)),
        ext_vars={symbol: ext_var(symbol) for symbol in simple.symbols()},
    )
    _DTD_BLOCK_CACHE[key] = block
    if len(_DTD_BLOCK_CACHE) > _DTD_BLOCK_CACHE_LIMIT:
        _DTD_BLOCK_CACHE.popitem(last=False)
    return block


def split_unary(
    constraints: list[Constraint],
) -> tuple[list[Key], list[InclusionConstraint], list[NegKey], list[NegInclusion]]:
    """Split an FK-expanded constraint list by kind, rejecting multi-attribute."""
    keys: list[Key] = []
    inclusions: list[InclusionConstraint] = []
    neg_keys: list[NegKey] = []
    neg_inclusions: list[NegInclusion] = []
    for phi in constraints:
        if not phi.is_unary():
            raise InvalidConstraintError(
                f"the linear-integer encoding handles unary constraints only "
                f"(Theorem 3.1 makes the multi-attribute problem undecidable): {phi}"
            )
        if isinstance(phi, Key):
            if phi not in keys:
                keys.append(phi)
        elif isinstance(phi, InclusionConstraint):
            if phi not in inclusions:
                inclusions.append(phi)
        elif isinstance(phi, NegKey):
            if phi not in neg_keys:
                neg_keys.append(phi)
        elif isinstance(phi, NegInclusion):
            if phi not in neg_inclusions:
                neg_inclusions.append(phi)
        elif isinstance(phi, ForeignKey):  # pragma: no cover - expanded earlier
            raise InvalidConstraintError("foreign keys must be expanded first")
        else:
            raise InvalidConstraintError(f"unknown constraint {phi!r}")
    return keys, inclusions, neg_keys, neg_inclusions


def build_encoding(
    dtd: DTD,
    constraints: list[Constraint],
    max_setrep_attrs: int = 12,
    repair_sites: bool = False,
) -> ConsistencyEncoding:
    """Build ``Psi(D, Sigma)`` for unary ``Sigma`` over ``dtd``.

    ``repair_sites=True`` additionally registers every ``Psi_DN`` rule
    row as a toggleable *site* and appends, per site, a permanent
    one-sided shadow row (``ext(tau) - sum(children) >= 0``): with the
    equality row active the system is byte-identical in meaning to the
    plain encoding, and with it deactivated the shadow keeps the upper
    bound while dropping the lower — exactly the projection of the DTD
    with that site's children made optional.  This is the repair
    engine's probe surface (:mod:`repro.analysis.repair`); the cached
    ``Psi_DN`` block stays pristine because shadow rows are appended to
    the per-call copy only.

    >>> from repro.dtd.model import DTD
    >>> from repro.constraints.parser import parse_constraints
    >>> d = DTD.build("r", {"r": "(a)", "a": "EMPTY"}, attrs={"a": ["k"]})
    >>> enc = build_encoding(d, parse_constraints("a.k -> a"))
    >>> enc.condsys.base.num_rows >= 3
    True
    """
    validate_constraints(dtd, constraints)
    expanded = expand_foreign_keys(constraints)
    keys, inclusions, neg_keys, neg_inclusions = split_unary(expanded)

    block = _dtd_block(dtd)
    # The cached system is pristine Psi_DN; the constraint encoders append
    # rows, so they get a (cheap, shallow) copy.
    system = block.dtd_system.system.copy()
    cardinality = encode_constraints(
        dtd, system, keys, inclusions, neg_keys, neg_inclusions
    )
    setrep: SetRepBlock | None = None
    if neg_inclusions:
        setrep = encode_set_representation(
            system, inclusions, neg_inclusions, max_active=max_setrep_attrs
        )

    # The toggle registry: every expanded constraint's rows, support
    # clauses (offset past the DTD-derived clauses, which are always
    # active) and forced supports, under stable identifiers.
    dtd_clause_count = len(block.dtd_system.clauses)
    toggles: dict[Constraint, ConstraintToggle] = {}
    for phi in [*keys, *inclusions, *neg_keys, *neg_inclusions]:
        rows = cardinality.rows_of.get(phi, ())
        if setrep is not None:
            rows = rows + setrep.rows_of.get(phi, ())
        toggles[phi] = ConstraintToggle(
            rows=rows,
            clause_ids=tuple(
                dtd_clause_count + i for i in cardinality.clauses_of.get(phi, ())
            ),
            forced_true=cardinality.forced_of.get(phi, frozenset()),
        )

    # Repair mode: shadow rows + per-site toggles over the rule rows.
    sites: tuple[RuleSite, ...] = ()
    site_toggles: dict[int, ConstraintToggle] = {}
    if repair_sites:
        sites = block.dtd_system.sites
        for index, site in enumerate(sites):
            coeffs = dict(system.rows[site.row].coeffs)
            system.add_ge(coeffs, 0, label=f"shadow:{site.parent}:{index}")
            site_toggles[index] = ConstraintToggle(
                rows=(site.row,),
                clause_ids=(site.clause,) if site.clause is not None else (),
            )

    toggleable_rows = frozenset(
        row for toggle in toggles.values() for row in toggle.rows
    ) | frozenset(
        row for toggle in site_toggles.values() for row in toggle.rows
    )
    toggleable_clauses = frozenset(
        clause_id
        for toggle in toggles.values()
        for clause_id in toggle.clause_ids
    ) | frozenset(
        clause_id
        for toggle in site_toggles.values()
        for clause_id in toggle.clause_ids
    )
    condsys = ConditionalSystem(
        base=system,
        ext_var=dict(block.ext_vars),
        root=block.simple.root,
        element_types=block.simple.types,
        edges=block.dtd_system.edges,
        requires_if_present=cardinality.requires_if_present,
        clauses=block.dtd_system.clauses + cardinality.clauses,
        forced_true=cardinality.forced_true,
        forced_false=block.forced_false,
        toggleable_rows=toggleable_rows,
        toggleable_clauses=toggleable_clauses,
    )
    return ConsistencyEncoding(
        dtd=dtd,
        simple=block.simple,
        condsys=condsys,
        keys=keys,
        inclusions=inclusions,
        neg_keys=neg_keys,
        neg_inclusions=neg_inclusions,
        setrep=setrep,
        constraints=list(constraints),
        toggles=toggles,
        sites=sites,
        site_toggles=site_toggles,
    )
