"""Assembly of ``Psi(D, Sigma)`` (Lemma 4.6, Theorem 4.1, Theorem 5.1).

:func:`build_encoding` turns a DTD and a set of *unary* constraints into a
single :class:`~repro.ilp.condsys.ConditionalSystem`:

* ``Psi_DN`` rows for the simplified DTD (:mod:`repro.encoding.dtd_system`);
* ``C_Sigma`` rows, negated-key rows and attribute-totality conditionals
  (:mod:`repro.encoding.cardinality`);
* the ``z_theta`` set-representation block when negated inclusion
  constraints are present (:mod:`repro.encoding.setrep`);
* support clauses and forced/forbidden supports for the search.

The resulting system is solvable iff an XML tree conforming to ``D`` and
satisfying ``Sigma`` exists; a feasible solution is realizable as an actual
witness tree by :mod:`repro.witness`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.constraints.classes import expand_foreign_keys, validate_constraints
from repro.dtd.analysis import usable_types
from repro.dtd.model import DTD
from repro.dtd.simplify import SimpleDTD, simplify_dtd
from repro.encoding.cardinality import encode_constraints
from repro.encoding.dtd_system import encode_dtd, ext_var
from repro.encoding.setrep import SetRepBlock, encode_set_representation
from repro.errors import InvalidConstraintError
from repro.ilp.condsys import ConditionalSystem


@dataclass
class ConsistencyEncoding:
    """Everything the solver and the witness synthesizer need."""

    dtd: DTD
    simple: SimpleDTD
    condsys: ConditionalSystem
    keys: list[Key]
    inclusions: list[InclusionConstraint]
    neg_keys: list[NegKey]
    neg_inclusions: list[NegInclusion]
    setrep: SetRepBlock | None
    constraints: list[Constraint]


def split_unary(
    constraints: list[Constraint],
) -> tuple[list[Key], list[InclusionConstraint], list[NegKey], list[NegInclusion]]:
    """Split an FK-expanded constraint list by kind, rejecting multi-attribute."""
    keys: list[Key] = []
    inclusions: list[InclusionConstraint] = []
    neg_keys: list[NegKey] = []
    neg_inclusions: list[NegInclusion] = []
    for phi in constraints:
        if not phi.is_unary():
            raise InvalidConstraintError(
                f"the linear-integer encoding handles unary constraints only "
                f"(Theorem 3.1 makes the multi-attribute problem undecidable): {phi}"
            )
        if isinstance(phi, Key):
            if phi not in keys:
                keys.append(phi)
        elif isinstance(phi, InclusionConstraint):
            if phi not in inclusions:
                inclusions.append(phi)
        elif isinstance(phi, NegKey):
            if phi not in neg_keys:
                neg_keys.append(phi)
        elif isinstance(phi, NegInclusion):
            if phi not in neg_inclusions:
                neg_inclusions.append(phi)
        elif isinstance(phi, ForeignKey):  # pragma: no cover - expanded earlier
            raise InvalidConstraintError("foreign keys must be expanded first")
        else:
            raise InvalidConstraintError(f"unknown constraint {phi!r}")
    return keys, inclusions, neg_keys, neg_inclusions


def build_encoding(
    dtd: DTD,
    constraints: list[Constraint],
    max_setrep_attrs: int = 12,
) -> ConsistencyEncoding:
    """Build ``Psi(D, Sigma)`` for unary ``Sigma`` over ``dtd``.

    >>> from repro.dtd.model import DTD
    >>> from repro.constraints.parser import parse_constraints
    >>> d = DTD.build("r", {"r": "(a)", "a": "EMPTY"}, attrs={"a": ["k"]})
    >>> enc = build_encoding(d, parse_constraints("a.k -> a"))
    >>> enc.condsys.base.num_rows >= 3
    True
    """
    validate_constraints(dtd, constraints)
    expanded = expand_foreign_keys(constraints)
    keys, inclusions, neg_keys, neg_inclusions = split_unary(expanded)

    simple = simplify_dtd(dtd)
    dtd_system = encode_dtd(simple)
    cardinality = encode_constraints(
        dtd, dtd_system.system, keys, inclusions, neg_keys, neg_inclusions
    )
    setrep: SetRepBlock | None = None
    if neg_inclusions:
        setrep = encode_set_representation(
            dtd_system.system, inclusions, neg_inclusions, max_active=max_setrep_attrs
        )

    simple_as_dtd = simple.to_dtd()
    usable = usable_types(simple_as_dtd)
    forced_false = frozenset(set(simple.types) - set(usable))

    condsys = ConditionalSystem(
        base=dtd_system.system,
        ext_var={symbol: ext_var(symbol) for symbol in simple.symbols()},
        root=simple.root,
        element_types=simple.types,
        edges=dtd_system.edges,
        requires_if_present=cardinality.requires_if_present,
        clauses=dtd_system.clauses + cardinality.clauses,
        forced_true=cardinality.forced_true,
        forced_false=forced_false,
    )
    return ConsistencyEncoding(
        dtd=dtd,
        simple=simple,
        condsys=condsys,
        keys=keys,
        inclusions=inclusions,
        neg_keys=neg_keys,
        neg_inclusions=neg_inclusions,
        setrep=setrep,
        constraints=list(constraints),
    )
