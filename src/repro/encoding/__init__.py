"""Encodings of DTDs and unary constraints as linear integer systems.

This package implements Section 4 and 5 of the paper:

* :mod:`repro.encoding.dtd_system` — the cardinality constraints
  ``Psi_DN`` determined by a simplified DTD (Lemma 4.5), plus the support
  clauses and occurrence edges used to repair realizability (DESIGN.md
  section 3);
* :mod:`repro.encoding.cardinality` — the constraints ``C_Sigma``
  determined by unary keys and inclusion constraints (Lemma 4.4), the
  attribute-totality conditionals of ``Psi(D, Sigma)`` (Lemma 4.6), and
  the negated-key rows (Corollary 4.9);
* :mod:`repro.encoding.setrep` — the set-representation extension for
  negated inclusion constraints: the ``z_theta`` block of Lemma 5.3 and
  the intersection-pattern matrix ``W`` of Theorem 5.1;
* :mod:`repro.encoding.combined` — assembly of everything into one
  :class:`~repro.ilp.condsys.ConditionalSystem` plus the bookkeeping the
  witness synthesizer needs.
"""

from repro.encoding.cardinality import CardinalityEncoding, encode_constraints
from repro.encoding.combined import ConsistencyEncoding, build_encoding
from repro.encoding.dtd_system import DTDSystem, encode_dtd
from repro.encoding.setrep import (
    SetRepBlock,
    build_intersection_pattern_matrix,
    build_uv_matrices,
    encode_set_representation,
    has_set_representation,
)

__all__ = [
    "DTDSystem",
    "encode_dtd",
    "CardinalityEncoding",
    "encode_constraints",
    "SetRepBlock",
    "encode_set_representation",
    "build_uv_matrices",
    "build_intersection_pattern_matrix",
    "has_set_representation",
    "ConsistencyEncoding",
    "build_encoding",
]
