"""Human-readable rendering of the cardinality systems.

Section 4.1 of the paper prints ``Psi_DN1`` — the system for the
simplified teachers DTD — equation by equation. This module reproduces
that presentation for any encoding, which doubles as a debugging aid: the
rows are grouped the way the paper groups them (per-rule blocks, totality
equations, ``C_Sigma``, set-representation block).
"""

from __future__ import annotations

from repro.encoding.combined import ConsistencyEncoding
from repro.ilp.model import Row, VarId


def _term(var: VarId, coeff: int) -> str:
    name = _var_name(var)
    if coeff == 1:
        return name
    if coeff == -1:
        return f"-{name}"
    return f"{coeff}*{name}"


def _var_name(var: VarId) -> str:
    if isinstance(var, tuple):
        if var[0] == "ext":
            return f"|ext({var[1]})|"
        if var[0] == "attr":
            return f"|ext({var[1]}.{var[2]})|"
        if var[0] == "occ":
            _tag, slot, child, parent = var
            return f"x{slot}({child},{parent})"
        if var[0] == "z":
            return f"z[{var[1]:b}]"
    return str(var)


def _equation(row: Row) -> str:
    """Render a row with the |ext| / x^i notation of the paper."""
    positives = [(v, c) for v, c in row.coeffs if c > 0]
    negatives = [(v, -c) for v, c in row.coeffs if c < 0]
    left = " + ".join(_term(v, c) for v, c in positives) or "0"
    right = " + ".join(_term(v, c) for v, c in negatives)
    sense = {"==": "=", "<=": "<=", ">=": ">="}[row.sense]
    if row.rhs == 0 and right:
        return f"{left} {sense} {right}"
    if right:
        return f"{left} {sense} {right} + {row.rhs}"
    return f"{left} {sense} {row.rhs}"


def describe_encoding(encoding: ConsistencyEncoding) -> str:
    """Render ``Psi(D, Sigma)`` in the paper's Section-4.1 style.

    >>> from repro.encoding.combined import build_encoding
    >>> from repro.workloads.examples import teachers_dtd_d1
    >>> text = describe_encoding(build_encoding(teachers_dtd_d1(), []))
    >>> "|ext(teachers)| = 1" in text
    True
    """
    groups: dict[str, list[str]] = {
        "DTD cardinality constraints (Psi_DN)": [],
        "constraint cardinalities (C_Sigma)": [],
        "set-representation block (Theorem 5.1)": [],
    }
    for row in encoding.condsys.base.rows:
        rendered = _equation(row)
        if row.label.startswith(("key:", "ic:", "negkey:", "attr-bound:")):
            groups["constraint cardinalities (C_Sigma)"].append(rendered)
        elif row.label.startswith("setrep"):
            groups["set-representation block (Theorem 5.1)"].append(rendered)
        else:
            groups["DTD cardinality constraints (Psi_DN)"].append(rendered)

    lines: list[str] = []
    for title, equations in groups.items():
        if not equations:
            continue
        lines.append(title)
        lines.extend(f"    {eq}" for eq in equations)
    conditionals = [
        f"    |ext({tau})| > 0  ->  {', '.join(_var_name(v) + ' > 0' for v in attrs)}"
        for tau, attrs in sorted(encoding.condsys.requires_if_present.items())
    ]
    if conditionals:
        lines.append("attribute-totality conditionals")
        lines.extend(conditionals)
    lines.append("all variables >= 0, integer")
    return "\n".join(lines)
