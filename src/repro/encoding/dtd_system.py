"""``Psi_DN``: the cardinality constraints determined by a simple DTD.

Variables (Lemma 4.5): ``|ext(tau)|`` for every element type and the string
type, and one occurrence variable ``x^i_{a,tau}`` for each occurrence of a
symbol ``a`` at position ``i`` in the rule of ``tau``. Rows:

* ``|ext(r)| = 1`` — a unique root;
* per rule, the local equations (``One``: ``ext = x1``; ``Seq``:
  ``ext = x1`` and ``ext = x2``; ``Alt``: ``ext = x1 + x2``);
* totality: for every non-root symbol, ``|ext(a)| = sum of its occurrence
  variables`` — every node sits under exactly one parent slot.

Beyond the paper, we also emit the *support clauses* and the *occurrence
edge list* that the conditional solver uses to enforce realizability
(DESIGN.md section 3): the paper's claim that any solution of ``Psi_DN``
yields a tree misses a connectivity condition for recursive DTDs, which the
solver restores with connectivity cuts over exactly these edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.simplify import AltRule, EpsRule, OneRule, SeqRule, SimpleDTD
from repro.ilp.condsys import SupportClause
from repro.ilp.model import LinearSystem, VarId
from repro.regex.ast import TEXT_SYMBOL


def ext_var(symbol: str) -> VarId:
    """The ``|ext(symbol)|`` variable identifier."""
    return ("ext", symbol)


def occ_var(slot: int, child: str, parent: str) -> VarId:
    """The occurrence variable ``x^slot_{child,parent}``."""
    return ("occ", slot, child, parent)


@dataclass(frozen=True)
class RuleSite:
    """Provenance of one rule row of ``Psi_DN`` (a *loosenable site*).

    The repair engine (:mod:`repro.analysis.repair`) probes DTD
    cardinality loosenings by deactivating individual rule rows, so the
    encoder records, per rule equation: the parent type, the stable row
    index, the index of the support clause the row contributed (``None``
    for text-only sites, which have no clause), and the ``(occurrence
    variable, child symbol)`` pairs the row constrains.
    """

    parent: str
    row: int
    clause: int | None
    children: tuple[tuple[VarId, str], ...]


@dataclass
class DTDSystem:
    """``Psi_DN`` plus the structural data the solver needs."""

    simple: SimpleDTD
    system: LinearSystem
    edges: tuple[tuple[VarId, str, str], ...]
    clauses: tuple[SupportClause, ...]
    sites: tuple[RuleSite, ...] = ()


def encode_dtd(simple: SimpleDTD) -> DTDSystem:
    """Build ``Psi_DN`` for a simplified DTD.

    >>> from repro.dtd.model import DTD
    >>> from repro.dtd.simplify import simplify_dtd
    >>> d = DTD.build("r", {"r": "(a, a)", "a": "EMPTY"})
    >>> psi = encode_dtd(simplify_dtd(d))
    >>> psi.system.num_rows >= 3
    True
    """
    system = LinearSystem()
    edges: list[tuple[VarId, str, str]] = []
    clauses: list[SupportClause] = []
    sites: list[RuleSite] = []

    # Unique root.
    system.add_eq({ext_var(simple.root): 1}, 1, label="root")

    occurrence_sites: dict[str, list[VarId]] = {
        symbol: [] for symbol in simple.types
    }
    occurrence_sites[TEXT_SYMBOL] = []
    parents_of: dict[str, set[str]] = {symbol: set() for symbol in simple.types}

    for tau in simple.types:
        rule = simple.rules[tau]
        ext_tau = ext_var(tau)
        if isinstance(rule, EpsRule):
            continue
        if isinstance(rule, OneRule):
            var = occ_var(1, rule.symbol, tau)
            row = system.add_eq({ext_tau: 1, var: -1}, 0, label=f"rule:{tau}")
            occurrence_sites[rule.symbol].append(var)
            edges.append((var, tau, rule.symbol))
            clause_id: int | None = None
            if rule.symbol != TEXT_SYMBOL:
                parents_of[rule.symbol].add(tau)
                # Deepest-node argument: a required child of tau's own type
                # would force infinite descent, so tau minus itself.
                clause_id = len(clauses)
                clauses.append(SupportClause(tau, frozenset([rule.symbol]) - {tau}))
            sites.append(RuleSite(tau, row, clause_id, ((var, rule.symbol),)))
        elif isinstance(rule, SeqRule):
            for slot, symbol in ((1, rule.first), (2, rule.second)):
                var = occ_var(slot, symbol, tau)
                row = system.add_eq({ext_tau: 1, var: -1}, 0, label=f"rule:{tau}:{slot}")
                occurrence_sites[symbol].append(var)
                edges.append((var, tau, symbol))
                clause_id = None
                if symbol != TEXT_SYMBOL:
                    parents_of[symbol].add(tau)
                    clause_id = len(clauses)
                    clauses.append(SupportClause(tau, frozenset([symbol]) - {tau}))
                sites.append(RuleSite(tau, row, clause_id, ((var, symbol),)))
        elif isinstance(rule, AltRule):
            var1 = occ_var(1, rule.left, tau)
            var2 = occ_var(2, rule.right, tau)
            row = system.add_eq(
                {ext_tau: 1, var1: -1, var2: -1}, 0, label=f"rule:{tau}"
            )
            occurrence_sites[rule.left].append(var1)
            occurrence_sites[rule.right].append(var2)
            edges.append((var1, tau, rule.left))
            edges.append((var2, tau, rule.right))
            for symbol in (rule.left, rule.right):
                if symbol != TEXT_SYMBOL:
                    parents_of[symbol].add(tau)
            # If either branch is text, a present tau needs no element
            # child. Otherwise the *deepest* tau node's child cannot be a
            # tau, so tau itself is excluded from the alternatives (an
            # empty set then means tau can never be present).
            clause_id = None
            if TEXT_SYMBOL not in (rule.left, rule.right):
                element_alts = frozenset((rule.left, rule.right)) - {tau}
                clause_id = len(clauses)
                clauses.append(SupportClause(tau, element_alts))
            sites.append(
                RuleSite(tau, row, clause_id, ((var1, rule.left), (var2, rule.right)))
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown rule {rule!r}")

    # Totality: every non-root node is some parent's child, exactly once.
    for symbol, occ_vars in occurrence_sites.items():
        if symbol == simple.root:
            continue
        coeffs: dict[VarId, int] = {ext_var(symbol): 1}
        for var in occ_vars:
            coeffs[var] = coeffs.get(var, 0) - 1
        system.add_eq(coeffs, 0, label=f"totality:{symbol}")

    # A present non-root type needs a present parent type; the shallowest
    # node of a type never has a parent of the same type, so the type
    # itself is excluded from the alternatives.
    for symbol in simple.types:
        if symbol == simple.root:
            continue
        alternatives = frozenset(parents_of[symbol] - {symbol})
        clauses.append(SupportClause(symbol, alternatives))

    return DTDSystem(
        simple=simple,
        system=system,
        edges=tuple(edges),
        clauses=tuple(clauses),
        sites=tuple(sites),
    )
