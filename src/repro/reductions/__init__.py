"""Complexity reductions between LIP and XML consistency.

:mod:`repro.reductions.lip` implements the Theorem 4.7 construction
(Figure 4): a 0/1 linear integer program ``Ax = 1`` becomes a DTD with
unary keys and foreign keys whose consistency decides the program — the
NP-hardness direction of the paper's main upper bound, executable both as
a correctness cross-check (our consistency checker against a brute-force
LIP oracle) and as a workload generator for hard instances.
"""

from repro.reductions.lip import (
    LIPInstance,
    LIPReduction,
    brute_force_binary_solution,
    extract_binary_solution,
    lip_to_xml,
    random_lip_instance,
)

__all__ = [
    "LIPInstance",
    "LIPReduction",
    "lip_to_xml",
    "brute_force_binary_solution",
    "extract_binary_solution",
    "random_lip_instance",
]
