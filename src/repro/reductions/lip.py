"""Theorem 4.7: 0/1 linear integer programming -> XML consistency.

The variant of LIP used by the paper: given a 0/1 matrix ``A`` (m rows, n
columns), does ``Ax = 1`` (all right-hand sides 1) have a binary solution
``x ∈ {0,1}^n``? This is NP-complete; the Figure-4 construction turns an
instance into a DTD ``D`` and unary keys/foreign keys ``Sigma`` such that

    Ax = 1 has a binary solution  iff  (D, Sigma) is consistent.

Structure of the DTD (Figure 4): the root has one ``F_i`` child per row
and one ``b_i`` child per row; ``F_i`` has an ``X_ij`` child for each
``a_ij = 1``; each ``X_ij`` optionally holds a ``Z_ij`` (whose presence
encodes ``x_j = 1`` in row ``i``); a present ``Z_ij`` holds a ``VF_i``.
Constraints: the attribute ``v`` of ``VF_i`` is a key and exchanges
foreign keys with ``b_i.v`` — since there is exactly one ``b_i``, exactly
one ``VF_i`` exists, i.e. row ``i`` sums to exactly 1. Mutual foreign keys
between the ``Z_ij.A_ij`` across rows force all occurrences of ``x_j`` to
take the same value. At most one key is declared per element type, so the
instance satisfies the primary-key restriction (Corollary 4.8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product

from repro.constraints.ast import Constraint, ForeignKey, InclusionConstraint, Key
from repro.dtd.model import DTD
from repro.regex.ast import EPSILON, Concat, Name, Optional, Regex
from repro.xmltree.model import XMLTree


@dataclass(frozen=True)
class LIPInstance:
    """A 0/1 matrix ``A``; the question is binary solvability of ``Ax = 1``."""

    matrix: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.matrix or not self.matrix[0]:
            raise ValueError("the matrix must be nonempty")
        width = len(self.matrix[0])
        for row in self.matrix:
            if len(row) != width:
                raise ValueError("ragged matrix")
            if any(value not in (0, 1) for value in row):
                raise ValueError("matrix entries must be 0/1")

    @property
    def num_rows(self) -> int:
        return len(self.matrix)

    @property
    def num_cols(self) -> int:
        return len(self.matrix[0])


def brute_force_binary_solution(instance: LIPInstance) -> tuple[int, ...] | None:
    """Exhaustive oracle: a binary solution of ``Ax = 1``, or ``None``.

    >>> brute_force_binary_solution(LIPInstance(((1, 1),)))
    (0, 1)
    """
    for candidate in product((0, 1), repeat=instance.num_cols):
        if all(
            sum(a * x for a, x in zip(row, candidate)) == 1
            for row in instance.matrix
        ):
            return candidate
    return None


@dataclass
class LIPReduction:
    """The Figure-4 DTD and constraints for a LIP instance."""

    instance: LIPInstance
    dtd: DTD
    sigma: list[Constraint]
    z_type: dict[tuple[int, int], str]


def lip_to_xml(instance: LIPInstance) -> LIPReduction:
    """Build ``(D, Sigma)`` consistent iff ``Ax = 1`` has a binary solution.

    >>> red = lip_to_xml(LIPInstance(((1, 0), (0, 1))))
    >>> red.dtd.root
    'r'
    """
    m, n = instance.num_rows, instance.num_cols
    content: dict[str, Regex] = {}
    attrs: dict[str, list[str]] = {}
    z_type: dict[tuple[int, int], str] = {}

    f_types = [f"F{i}" for i in range(1, m + 1)]
    b_types = [f"b{i}" for i in range(1, m + 1)]
    content["r"] = Concat(tuple(Name(t) for t in f_types + b_types))
    for i in range(1, m + 1):
        row = instance.matrix[i - 1]
        x_children = [
            Name(f"X{i}_{j}") for j in range(1, n + 1) if row[j - 1] == 1
        ]
        content[f"F{i}"] = Concat(tuple(x_children)) if len(x_children) > 1 else (
            x_children[0] if x_children else EPSILON
        )
        content[f"b{i}"] = EPSILON
        content[f"VF{i}"] = EPSILON
        attrs[f"b{i}"] = ["v"]
        attrs[f"VF{i}"] = ["v"]
        for j in range(1, n + 1):
            if row[j - 1] == 1:
                content[f"X{i}_{j}"] = Optional(Name(f"Z{i}_{j}"))
                content[f"Z{i}_{j}"] = Name(f"VF{i}")
                attrs[f"Z{i}_{j}"] = [f"A{i}_{j}"]
                z_type[(i, j)] = f"Z{i}_{j}"

    dtd = DTD.build("r", content, attrs=attrs)

    sigma: list[Constraint] = []
    for i in range(1, m + 1):
        # |ext(VFi)| = |ext(bi)| = 1: row i sums to exactly one.
        sigma.append(Key(f"VF{i}", ("v",)))
        sigma.append(Key(f"b{i}", ("v",)))
        sigma.append(
            ForeignKey(InclusionConstraint(f"VF{i}", ("v",), f"b{i}", ("v",)))
        )
        sigma.append(
            ForeignKey(InclusionConstraint(f"b{i}", ("v",), f"VF{i}", ("v",)))
        )
    # All occurrences of x_j take the same value: mutual foreign keys among
    # the rows where column j occurs.
    for j in range(1, n + 1):
        rows_with_j = [
            i for i in range(1, m + 1) if instance.matrix[i - 1][j - 1] == 1
        ]
        for i in rows_with_j:
            sigma.append(Key(f"Z{i}_{j}", (f"A{i}_{j}",)))
        for i in rows_with_j:
            for k in rows_with_j:
                if i != k:
                    sigma.append(
                        ForeignKey(
                            InclusionConstraint(
                                f"Z{i}_{j}", (f"A{i}_{j}",),
                                f"Z{k}_{j}", (f"A{k}_{j}",),
                            )
                        )
                    )
    return LIPReduction(instance=instance, dtd=dtd, sigma=sigma, z_type=z_type)


def extract_binary_solution(
    reduction: LIPReduction, tree: XMLTree
) -> tuple[int, ...]:
    """Read the binary assignment off a witness tree.

    ``x_j = 1`` iff any ``Z_ij`` element is present.
    """
    n = reduction.instance.num_cols
    solution = [0] * n
    for (i, j), z_name in reduction.z_type.items():
        del i
        if tree.ext(z_name):
            solution[j - 1] = 1
    return tuple(solution)


def random_lip_instance(
    num_rows: int, num_cols: int, density: float = 0.5, seed: int = 0
) -> LIPInstance:
    """A seeded random 0/1 matrix with at least one 1 per row."""
    rng = random.Random(seed)
    matrix = []
    for _ in range(num_rows):
        row = [1 if rng.random() < density else 0 for _ in range(num_cols)]
        if not any(row):
            row[rng.randrange(num_cols)] = 1
        matrix.append(tuple(row))
    return LIPInstance(tuple(matrix))
