"""Specification diagnostics: *why* is a spec broken, *what* is redundant.

The paper motivates static validation with "repeated failures are due to a
bad specification" (Section 1) and closes proposing a design theory for
XML specifications (Section 6). Two concrete tools toward that:

* :func:`minimal_inconsistent_subset` — a deletion-minimal subset of
  Sigma that is already inconsistent with the DTD (a MUS): the smallest
  story to tell the schema author. Found by the standard deletion filter:
  O(|Sigma|) consistency probes.
* :func:`redundant_constraints` — constraints implied by the rest of the
  specification (over the DTD): safe to drop, or a hint that the author
  expected them to add strength they do not add. One implication probe per
  expanded constraint.

Both are **subset-probing** workloads: every probe decides consistency of
the *same* specification with some constraints removed (and, for
implication, one negation added).  The default engine therefore assembles
``Psi(D, Sigma ∪ ¬Sigma)`` exactly once, with every constraint's rows
registered as toggleable (DESIGN.md section 6), and serves each probe by
row-bound flips on the persistent solver state — one base assembly per
call instead of one per subset.  ``toggled=False`` selects the
re-encode-per-subset reference path, kept as the differential oracle
(:mod:`tests.test_diagnostics_differential`) and the benchmark baseline
(``benchmarks/bench_diagnostics.py``).

Both operate on the decidable unary classes; specifications outside them
(multi-attribute constraints) automatically fall back to the rebuild path,
which dispatches through the checkers' own fragment logic.

>>> from repro.dtd.model import DTD
>>> from repro.constraints.parser import parse_constraints
>>> d = DTD.build("r", {"r": "(a*, b*, c*)", "a": "EMPTY", "b": "EMPTY",
...                     "c": "EMPTY"}, attrs={t: ["x"] for t in "abc"})
>>> sigma = parse_constraints("a.x <= b.x\\nb.x <= c.x\\na.x <= c.x")
>>> report = diagnose(d, sigma)
>>> (report.consistent, [str(phi) for phi in report.redundant])
(True, ['a.x <= c.x'])
>>> report.stats.assemblies                   # one assembly, many probes
1
>>> report.stats.probes >= 4
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterable

from repro.constraints.ast import Constraint
from repro.constraints.classes import expand_foreign_keys
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.checkers.consistency import check_consistency, dtd_has_valid_tree
from repro.checkers.implication import _negate, implies
from repro.dtd.model import DTD
from repro.encoding.combined import build_encoding
from repro.errors import ComplexityLimitError, InvalidConstraintError
from repro.ilp.condsys import CondSolveStats, SolveWorkspace, solve_conditional_system


@dataclass
class DiagnosticsStats:
    """Work counters for one diagnostics call.

    ``assemblies`` counts full base-matrix assemblies — exactly 1 on the
    toggled path no matter how many subsets are probed (the acceptance
    invariant of DESIGN.md section 6); the rebuild path pays one per
    consistency/implication call.  ``probes`` counts subset solves.
    """

    method: str = "toggled"
    assemblies: int = 0
    probes: int = 0
    dfs_nodes: int = 0
    leaves_solved: int = 0
    bound_patch_solves: int = 0
    cuts_added: int = 0
    cut_pool_hits: int = 0
    lp_prunes: int = 0
    lp_probe_decided: int = 0
    exact_nodes: int = 0
    exact_pivots: int = 0

    def merge_solve(self, solve: CondSolveStats) -> None:
        """Fold one :class:`CondSolveStats` into the running totals."""
        self.probes += 1
        self.assemblies += solve.assemblies
        self.dfs_nodes += solve.dfs_nodes
        self.leaves_solved += solve.leaves_solved
        self.bound_patch_solves += solve.bound_patch_solves
        self.cuts_added += solve.cuts_added
        self.cut_pool_hits += solve.cut_pool_hits
        self.lp_prunes += solve.lp_prunes
        self.lp_probe_decided += int(solve.lp_probe_decided)
        self.exact_nodes += solve.exact_nodes
        self.exact_pivots += solve.exact_pivots

    def merge_checker(self, stats: dict | None) -> None:
        """Fold a checker result's stats dict (rebuild path) in."""
        self.probes += 1
        if not stats:
            return
        self.assemblies += stats.get("assemblies", 0)
        self.dfs_nodes += stats.get("dfs_nodes", 0)
        self.leaves_solved += stats.get("leaves", 0)
        self.bound_patch_solves += stats.get("bound_patch_solves", 0)
        self.cuts_added += stats.get("cuts", 0)
        self.cut_pool_hits += stats.get("cut_pool_hits", 0)
        self.lp_prunes += stats.get("lp_prunes", 0)
        self.lp_probe_decided += int(stats.get("lp_probe_decided", False))
        self.exact_nodes += stats.get("exact_nodes", 0)
        self.exact_pivots += stats.get("exact_pivots", 0)

    def as_dict(self) -> dict[str, int | str]:
        """Flat rendering for ``--stats`` output and benchmarks."""
        return {
            "method": self.method,
            "assemblies": self.assemblies,
            "probes": self.probes,
            "dfs_nodes": self.dfs_nodes,
            "leaves_solved": self.leaves_solved,
            "bound_patch_solves": self.bound_patch_solves,
            "cuts_added": self.cuts_added,
            "cut_pool_hits": self.cut_pool_hits,
            "lp_prunes": self.lp_prunes,
            "lp_probe_decided": self.lp_probe_decided,
            "exact_nodes": self.exact_nodes,
            "exact_pivots": self.exact_pivots,
        }


def _use_toggles(
    toggled: bool, sigma: list[Constraint], config: CheckerConfig
) -> bool:
    """Route to the toggled engine?  Requires unary constraints (the only
    encodable fragment) and the incremental solver core — a workspace is
    persistent bound-patched state, so ``config.incremental=False`` (the
    from-scratch ablation) selects the rebuild path, whose checker calls
    honor the flag."""
    return (
        toggled
        and config.incremental
        and all(phi.is_unary() for phi in sigma)
    )


class _ToggleProbe:
    """One assembled ``Psi(D, Sigma ∪ ¬Sigma)``, probed under row toggles.

    Built once per diagnostics call: the union system carries rows for
    every constraint of ``sigma`` (foreign keys through their expanded
    inclusion + key parts) and — when ``with_negations`` — for the
    negation of every part, each registered as a toggle group.  A probe
    activates a subset of those groups and re-solves through a shared
    :class:`~repro.ilp.condsys.SolveWorkspace`; support clauses and forced
    supports contributed by deactivated constraints are filtered out of
    the :class:`ConditionalSystem` view, since they are only sound while
    their constraint is active.
    """

    def __init__(
        self,
        dtd: DTD,
        sigma: list[Constraint],
        config: CheckerConfig,
        with_negations: bool,
        stats: DiagnosticsStats,
    ):
        self._config = config
        self.stats = stats
        self.parts: dict[Constraint, tuple[Constraint, ...]] = {
            phi: tuple(expand_foreign_keys([phi])) for phi in sigma
        }
        self.negations: dict[Constraint, tuple[Constraint, ...]] = {}
        union: list[Constraint] = []
        seen: set[Constraint] = set()

        def push(phi: Constraint) -> None:
            if phi not in seen:
                seen.add(phi)
                union.append(phi)

        for phi in sigma:
            for part in self.parts[phi]:
                push(part)
        if with_negations:
            for phi in sigma:
                negs = tuple(_negate(part) for part in self.parts[phi])
                self.negations[phi] = negs
                for neg in negs:
                    push(neg)
        self.encoding = build_encoding(
            dtd, union, max_setrep_attrs=config.max_setrep_attrs
        )
        self._toggleable_clauses = frozenset(
            clause_id
            for toggle in self.encoding.toggles.values()
            for clause_id in toggle.clause_ids
        )
        self.workspace = SolveWorkspace(self.encoding.condsys.base)

    def active_parts(self, constraints: Iterable[Constraint]) -> frozenset[Constraint]:
        """The expanded toggle groups of a subset of the original Sigma."""
        return frozenset(
            part for phi in constraints for part in self.parts[phi]
        )

    def consistent(self, active: frozenset[Constraint]) -> bool:
        """One subset probe: is the DTD plus the active constraints SAT?"""
        condsys = self.encoding.condsys
        toggles = [self.encoding.toggles[phi] for phi in active]
        active_rows = frozenset(
            row for toggle in toggles for row in toggle.rows
        )
        active_clauses = {
            clause_id for toggle in toggles for clause_id in toggle.clause_ids
        }
        forced: frozenset[str] = frozenset().union(
            *(toggle.forced_true for toggle in toggles)
        ) if toggles else frozenset()
        result, solve_stats = solve_conditional_system(
            replace(condsys, forced_true=forced),
            backend=self._config.backend,
            max_support_nodes=self._config.max_support_nodes,
            lp_prune=self._config.lp_prune,
            exact_warm=self._config.exact_warm,
            active_rows=active_rows,
            workspace=self.workspace,
            inactive_clauses=frozenset(self._toggleable_clauses - active_clauses),
        )
        self.stats.merge_solve(solve_stats)
        return result.feasible


def _mus_filter(probe: _ToggleProbe, sigma: list[Constraint]) -> list[Constraint]:
    """The deletion filter, driven by subset probes (full set known UNSAT)."""
    current = list(sigma)
    index = 0
    while index < len(current):
        candidate = current[:index] + current[index + 1:]
        if probe.consistent(probe.active_parts(candidate)):
            index += 1  # constraint is necessary for the conflict
        else:
            current = candidate  # still inconsistent without it: drop
    return current


def _redundancy_filter(
    probe: _ToggleProbe, sigma: list[Constraint]
) -> list[Constraint]:
    """Implication audit via probes: ``phi`` is implied by the rest iff
    every component's negation is inconsistent with the rest's rows."""
    redundant: list[Constraint] = []
    for index, phi in enumerate(sigma):
        rest = sigma[:index] + sigma[index + 1:]
        rest_parts = probe.active_parts(rest)
        if all(
            not probe.consistent(rest_parts | {negated})
            for negated in probe.negations[phi]
        ):
            redundant.append(phi)
    return redundant


def minimal_inconsistent_subset(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    toggled: bool = True,
    stats: DiagnosticsStats | None = None,
) -> list[Constraint]:
    """A deletion-minimal inconsistent subset of ``Sigma`` (a MUS).

    Requires the full set to be inconsistent with the DTD (raises
    :class:`InvalidConstraintError` otherwise). The result may be empty
    when the DTD alone has no valid tree — then no constraints are to
    blame at all.

    ``toggled=False`` selects the rebuild-per-subset reference path (one
    full checker call per probe); the default probes constraint subsets by
    row toggles on a single assembled system.  ``stats``, when supplied,
    is filled with the call's work counters.

    >>> from repro.workloads.examples import teachers_dtd_d1, sigma1_constraints
    >>> stats = DiagnosticsStats()
    >>> mus = minimal_inconsistent_subset(
    ...     teachers_dtd_d1(), sigma1_constraints(), stats=stats)
    >>> sorted(str(phi) for phi in mus)
    ['subject.taught_by -> subject', 'subject.taught_by => teacher.name']
    >>> stats.assemblies            # probes patch one persistent system
    1
    """
    config = config or DEFAULT_CONFIG
    stats = stats if stats is not None else DiagnosticsStats()
    current = list(constraints)
    if _use_toggles(toggled, current, config):
        try:
            probe = _ToggleProbe(
                dtd, current, config, with_negations=False, stats=stats
            )
        except ComplexityLimitError:
            probe = None  # union setrep block over cap: rebuild instead
        if probe is not None:
            if probe.consistent(probe.active_parts(current)):
                raise InvalidConstraintError(
                    "the specification is consistent; there is no inconsistent subset"
                )
            if not dtd_has_valid_tree(dtd):
                return []
            return _mus_filter(probe, current)
    return _minimal_inconsistent_subset_rebuild(dtd, current, config, stats)


def _minimal_inconsistent_subset_rebuild(
    dtd: DTD,
    current: list[Constraint],
    config: CheckerConfig,
    stats: DiagnosticsStats,
) -> list[Constraint]:
    """Reference path: one full consistency check per probed subset."""
    stats.method = "rebuild"
    probe = replace(config, want_witness=False)
    result = check_consistency(dtd, current, probe)
    stats.merge_checker(result.stats)
    if result.consistent:
        raise InvalidConstraintError(
            "the specification is consistent; there is no inconsistent subset"
        )
    if not dtd_has_valid_tree(dtd):
        return []
    index = 0
    while index < len(current):
        candidate = current[:index] + current[index + 1:]
        result = check_consistency(dtd, candidate, probe)
        stats.merge_checker(result.stats)
        if result.consistent:
            index += 1  # constraint is necessary for the conflict
        else:
            current = candidate  # still inconsistent without it: drop
    return current


def redundant_constraints(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    toggled: bool = True,
    stats: DiagnosticsStats | None = None,
) -> list[Constraint]:
    """Constraints implied by the remaining ones over the DTD.

    Note the subtlety: redundancy here is *relative to the whole rest*, so
    two mutually-implied constraints can both be reported (either one may
    be dropped, not both).  The toggled default decides each implication
    by activating the rest's rows plus the query's negated rows on the one
    assembled union system; ``toggled=False`` re-encodes per query.
    """
    config = config or DEFAULT_CONFIG
    stats = stats if stats is not None else DiagnosticsStats()
    sigma = list(constraints)
    if _use_toggles(toggled, sigma, config):
        try:
            probe = _ToggleProbe(
                dtd, sigma, config, with_negations=True, stats=stats
            )
        except ComplexityLimitError:
            probe = None  # union setrep block over cap: rebuild instead
        if probe is not None:
            return _redundancy_filter(probe, sigma)
    return _redundant_constraints_rebuild(dtd, sigma, config, stats)


def _redundant_constraints_rebuild(
    dtd: DTD,
    sigma: list[Constraint],
    config: CheckerConfig,
    stats: DiagnosticsStats,
) -> list[Constraint]:
    """Reference path: one full implication call per constraint."""
    stats.method = "rebuild"
    probe = replace(config, want_witness=False)
    redundant: list[Constraint] = []
    for index, phi in enumerate(sigma):
        rest = sigma[:index] + sigma[index + 1:]
        result = implies(dtd, rest, phi, probe)
        stats.merge_checker(result.stats)
        if result.implied:
            redundant.append(phi)
    return redundant


@dataclass
class DiagnosticsReport:
    """Combined specification health report."""

    consistent: bool
    mus: list[Constraint] = field(default_factory=list)
    redundant: list[Constraint] = field(default_factory=list)
    dtd_satisfiable: bool = True
    stats: DiagnosticsStats = field(default_factory=DiagnosticsStats)

    def summary(self) -> str:
        """Human-readable multi-line rendering."""
        lines = []
        if not self.dtd_satisfiable:
            lines.append("the DTD alone admits no finite document")
        elif self.consistent:
            lines.append("specification is CONSISTENT")
        else:
            lines.append("specification is INCONSISTENT; minimal conflict:")
            for phi in self.mus:
                lines.append(f"  - {phi}")
        if self.redundant:
            lines.append("redundant constraints (implied by the rest):")
            for phi in self.redundant:
                lines.append(f"  - {phi}")
        return "\n".join(lines)


def diagnose(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    toggled: bool = True,
) -> DiagnosticsReport:
    """Full specification health check.

    For consistent specifications, reports redundancies; for inconsistent
    ones, a minimal conflicting subset.  The whole report — the initial
    consistency verdict plus every MUS/redundancy probe — is served from
    one assembled system (``report.stats.assemblies == 1`` on the toggled
    path); ``toggled=False`` is the re-encode-per-subset reference.
    """
    config = config or DEFAULT_CONFIG
    sigma = list(constraints)
    stats = DiagnosticsStats()
    if not dtd_has_valid_tree(dtd):
        return DiagnosticsReport(
            consistent=False, dtd_satisfiable=False, stats=stats
        )
    if _use_toggles(toggled, sigma, config):
        try:
            probe = _ToggleProbe(
                dtd, sigma, config, with_negations=True, stats=stats
            )
        except ComplexityLimitError:
            probe = None  # union setrep block over cap: rebuild instead
        if probe is not None:
            if probe.consistent(probe.active_parts(sigma)):
                return DiagnosticsReport(
                    consistent=True,
                    redundant=_redundancy_filter(probe, sigma),
                    stats=stats,
                )
            return DiagnosticsReport(
                consistent=False, mus=_mus_filter(probe, sigma), stats=stats
            )
    return _diagnose_rebuild(dtd, sigma, config, stats)


def _diagnose_rebuild(
    dtd: DTD,
    sigma: list[Constraint],
    config: CheckerConfig,
    stats: DiagnosticsStats,
) -> DiagnosticsReport:
    """Reference path: full checker calls per subset."""
    stats.method = "rebuild"
    probe = replace(config, want_witness=False)
    result = check_consistency(dtd, sigma, probe)
    stats.merge_checker(result.stats)
    if result.consistent:
        return DiagnosticsReport(
            consistent=True,
            redundant=_redundant_constraints_rebuild(dtd, sigma, config, stats),
            stats=stats,
        )
    return DiagnosticsReport(
        consistent=False,
        mus=_minimal_inconsistent_subset_rebuild(
            dtd, list(sigma), config, stats
        ),
        stats=stats,
    )
