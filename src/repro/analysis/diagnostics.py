"""Specification diagnostics: *why* is a spec broken, *what* is redundant.

The paper motivates static validation with "repeated failures are due to a
bad specification" (Section 1) and closes proposing a design theory for
XML specifications (Section 6). Two concrete tools toward that:

* :func:`mus` — a minimal subset of Sigma that is already
  inconsistent with the DTD (a MUS): the smallest story to tell the
  schema author.  The default ``method="quickxplain"`` finds it by
  QuickXplain divide-and-conquer (DESIGN.md section 7) — probe counts
  scale with the *core* size rather than ``|Sigma|``;
  ``method="deletion"`` is the classic linear filter, exactly
  ``|Sigma|`` probes, kept as the reference.  The historical
  ``minimal_unsat_core`` / ``minimal_inconsistent_subset`` pair remains
  as deprecation shims over this single entry point.
* :func:`redundant_constraints` — constraints implied by the rest of the
  specification (over the DTD): safe to drop, or a hint that the author
  expected them to add strength they do not add. One implication probe per
  expanded constraint; the per-constraint probes are independent, so
  ``CheckerConfig(jobs=N)`` fans them across a worker pool, each worker
  probing on its own assembled system.

Both are **subset-probing** workloads: every probe decides consistency of
the *same* specification with some constraints removed (and, for
implication, one negation added).  The default engine therefore assembles
``Psi(D, Sigma ∪ ¬Sigma)`` exactly once, with every constraint's rows
registered as toggleable (DESIGN.md section 6), and serves each probe by
row-bound flips on the persistent solver state — one base assembly per
call (per worker, when parallel) instead of one per subset.
``toggled=False`` selects the re-encode-per-subset reference path, kept
as the differential oracle (:mod:`tests.test_diagnostics_differential`)
and the benchmark baseline (``benchmarks/bench_diagnostics.py``).

Both operate on the decidable unary classes; specifications outside them
(multi-attribute constraints) automatically fall back to the rebuild path,
which dispatches through the checkers' own fragment logic.

>>> from repro.dtd.model import DTD
>>> from repro.constraints.parser import parse_constraints
>>> d = DTD.build("r", {"r": "(a*, b*, c*)", "a": "EMPTY", "b": "EMPTY",
...                     "c": "EMPTY"}, attrs={t: ["x"] for t in "abc"})
>>> sigma = parse_constraints("a.x <= b.x\\nb.x <= c.x\\na.x <= c.x")
>>> report = diagnose(d, sigma)
>>> (report.consistent, [str(phi) for phi in report.redundant])
(True, ['a.x <= c.x'])
>>> report.stats.assemblies                   # one assembly, many probes
1
>>> report.stats.probes >= 4
True
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, replace
from collections.abc import Callable, Iterable

from repro.constraints.ast import Constraint
from repro.constraints.classes import expand_foreign_keys
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.checkers.consistency import check_consistency, dtd_has_valid_tree
from repro.checkers.implication import _negate, implies
from repro.dtd.model import DTD
from repro.encoding.combined import build_encoding
from repro.errors import (
    ComplexityLimitError,
    InvalidConstraintError,
    WorkerCrashError,
)
from repro.ilp.condsys import (
    CondSolveStats,
    SolveWorkspace,
    WorkerPool,
    fanout_map,
    solve_conditional_system,
)


@dataclass
class DiagnosticsStats:
    """Work counters for one diagnostics call.

    ``assemblies`` counts full base-matrix assemblies — exactly 1 on the
    sequential toggled path no matter how many subsets are probed (the
    acceptance invariant of DESIGN.md section 6; with ``jobs > 1`` each
    worker pays one assembly for its own probe, so the count is at most
    ``1 + workers_spawned``); the rebuild path pays one per
    consistency/implication call.  ``probes`` counts subset solves;
    ``mus_probes`` the subset probes spent inside the MUS filter alone,
    the counter the QuickXplain-vs-deletion benchmark gates on
    (``mus_method`` names the filter that ran).
    """

    method: str = "toggled"
    mus_method: str = ""
    assemblies: int = 0
    probes: int = 0
    mus_probes: int = 0
    dfs_nodes: int = 0
    leaves_solved: int = 0
    bound_patch_solves: int = 0
    cuts_added: int = 0
    cut_pool_hits: int = 0
    lp_prunes: int = 0
    lp_probe_decided: int = 0
    exact_nodes: int = 0
    exact_pivots: int = 0
    workers_spawned: int = 0

    def merge_solve(self, solve: CondSolveStats) -> None:
        """Fold one :class:`CondSolveStats` into the running totals."""
        self.probes += 1
        self.assemblies += solve.assemblies
        self.dfs_nodes += solve.dfs_nodes
        self.leaves_solved += solve.leaves_solved
        self.bound_patch_solves += solve.bound_patch_solves
        self.cuts_added += solve.cuts_added
        self.cut_pool_hits += solve.cut_pool_hits
        self.lp_prunes += solve.lp_prunes
        self.lp_probe_decided += int(solve.lp_probe_decided)
        self.exact_nodes += solve.exact_nodes
        self.exact_pivots += solve.exact_pivots

    def merge_checker(self, stats: dict | None) -> None:
        """Fold a checker result's stats dict (rebuild path) in."""
        self.probes += 1
        if not stats:
            return
        self.assemblies += stats.get("assemblies", 0)
        self.dfs_nodes += stats.get("dfs_nodes", 0)
        self.leaves_solved += stats.get("leaves", 0)
        self.bound_patch_solves += stats.get("bound_patch_solves", 0)
        self.cuts_added += stats.get("cuts", 0)
        self.cut_pool_hits += stats.get("cut_pool_hits", 0)
        self.lp_prunes += stats.get("lp_prunes", 0)
        self.lp_probe_decided += int(stats.get("lp_probe_decided", False))
        self.exact_nodes += stats.get("exact_nodes", 0)
        self.exact_pivots += stats.get("exact_pivots", 0)

    def absorb(self, worker: "DiagnosticsStats | dict") -> None:
        """Fold a worker's counters in (parallel audit reconciliation).

        Integer counters add; the ``method``/``mus_method`` labels are the
        parent's business and are left untouched.  Keys this class does
        not declare (e.g. namespaced ``repair.*`` counters riding along
        in a wire payload) are skipped rather than flat-merged — folding
        an unknown counter into a same-named field would silently shadow
        the caller's own numbers.
        """
        values = worker if isinstance(worker, dict) else asdict(worker)
        for name, value in values.items():
            if isinstance(value, str) or not hasattr(self, name):
                continue
            setattr(self, name, getattr(self, name) + int(value))

    def as_dict(self) -> dict[str, int | str]:
        """Flat rendering for ``--stats`` output and benchmarks."""
        return {
            "method": self.method,
            "mus_method": self.mus_method or "-",
            "assemblies": self.assemblies,
            "probes": self.probes,
            "mus_probes": self.mus_probes,
            "dfs_nodes": self.dfs_nodes,
            "leaves_solved": self.leaves_solved,
            "bound_patch_solves": self.bound_patch_solves,
            "cuts_added": self.cuts_added,
            "cut_pool_hits": self.cut_pool_hits,
            "lp_prunes": self.lp_prunes,
            "lp_probe_decided": self.lp_probe_decided,
            "exact_nodes": self.exact_nodes,
            "exact_pivots": self.exact_pivots,
            "workers_spawned": self.workers_spawned,
        }


def _use_toggles(
    toggled: bool, sigma: list[Constraint], config: CheckerConfig
) -> bool:
    """Route to the toggled engine?  Requires unary constraints (the only
    encodable fragment) and the incremental solver core — a workspace is
    persistent bound-patched state, so ``config.incremental=False`` (the
    from-scratch ablation) selects the rebuild path, whose checker calls
    honor the flag."""
    return (
        toggled
        and config.incremental
        and all(phi.is_unary() for phi in sigma)
    )


class _ToggleProbe:
    """One assembled ``Psi(D, Sigma ∪ ¬Sigma)``, probed under row toggles.

    Built once per diagnostics call: the union system carries rows for
    every constraint of ``sigma`` (foreign keys through their expanded
    inclusion + key parts) and — when ``with_negations`` — for the
    negation of every part, each registered as a toggle group.  A probe
    activates a subset of those groups and re-solves through a shared
    :class:`~repro.ilp.condsys.SolveWorkspace`; support clauses and forced
    supports contributed by deactivated constraints are filtered out of
    the :class:`ConditionalSystem` view, since they are only sound while
    their constraint is active.
    """

    def __init__(
        self,
        dtd: DTD,
        sigma: list[Constraint],
        config: CheckerConfig,
        with_negations: bool,
        stats: DiagnosticsStats,
    ):
        self._config = config
        self.stats = stats
        self.parts: dict[Constraint, tuple[Constraint, ...]] = {
            phi: tuple(expand_foreign_keys([phi])) for phi in sigma
        }
        self.negations: dict[Constraint, tuple[Constraint, ...]] = {}
        union: list[Constraint] = []
        seen: set[Constraint] = set()

        def push(phi: Constraint) -> None:
            if phi not in seen:
                seen.add(phi)
                union.append(phi)

        for phi in sigma:
            for part in self.parts[phi]:
                push(part)
        if with_negations:
            for phi in sigma:
                negs = tuple(_negate(part) for part in self.parts[phi])
                self.negations[phi] = negs
                for neg in negs:
                    push(neg)
        self.encoding = build_encoding(
            dtd, union, max_setrep_attrs=config.max_setrep_attrs
        )
        self._toggleable_clauses = frozenset(
            clause_id
            for toggle in self.encoding.toggles.values()
            for clause_id in toggle.clause_ids
        )
        self.workspace = SolveWorkspace(self.encoding.condsys.base)

    def active_parts(self, constraints: Iterable[Constraint]) -> frozenset[Constraint]:
        """The expanded toggle groups of a subset of the original Sigma."""
        return frozenset(
            part for phi in constraints for part in self.parts[phi]
        )

    def consistent(self, active: frozenset[Constraint]) -> bool:
        """One subset probe: is the DTD plus the active constraints SAT?"""
        condsys = self.encoding.condsys
        toggles = [self.encoding.toggles[phi] for phi in active]
        active_rows = frozenset(
            row for toggle in toggles for row in toggle.rows
        )
        active_clauses = {
            clause_id for toggle in toggles for clause_id in toggle.clause_ids
        }
        forced: frozenset[str] = frozenset().union(
            *(toggle.forced_true for toggle in toggles)
        ) if toggles else frozenset()
        result, solve_stats = solve_conditional_system(
            replace(condsys, forced_true=forced),
            backend=self._config.backend,
            max_support_nodes=self._config.max_support_nodes,
            lp_prune=self._config.lp_prune,
            exact_warm=self._config.exact_warm,
            active_rows=active_rows,
            workspace=self.workspace,
            inactive_clauses=frozenset(self._toggleable_clauses - active_clauses),
        )
        self.stats.merge_solve(solve_stats)
        return result.feasible


#: MUS filter names accepted by ``method=``.
_MUS_METHODS = ("quickxplain", "deletion")

#: A subset-consistency oracle: ``check(subset) -> True`` iff the DTD plus
#: exactly those constraints is satisfiable.  Both MUS filters are written
#: against this shape, so the toggled engine and the rebuild oracle drive
#: the *same* filter code.
_SubsetCheck = Callable[[list[Constraint]], bool]


def _require_mus_method(method: str) -> None:
    """Reject unknown filter names before any expensive work happens."""
    if method not in _MUS_METHODS:
        raise InvalidConstraintError(
            f"unknown MUS method {method!r}; expected one of {_MUS_METHODS}"
        )


def _mus_deletion(check: _SubsetCheck, sigma: list[Constraint]) -> list[Constraint]:
    """The linear deletion filter: exactly ``|Sigma|`` probes.

    Kept as the reference filter — its probe count is the baseline the
    QuickXplain gate (``benchmarks/bench_parallel.py``) compares against.
    """
    current = list(sigma)
    index = 0
    while index < len(current):
        candidate = current[:index] + current[index + 1:]
        if check(candidate):
            index += 1  # constraint is necessary for the conflict
        else:
            current = candidate  # still inconsistent without it: drop
    return current


def _mus_quickxplain(check: _SubsetCheck, sigma: list[Constraint]) -> list[Constraint]:
    """QuickXplain divide-and-conquer (Junker 2004; DESIGN.md section 7).

    Preconditions (the callers establish both): the full set is
    inconsistent, and the DTD alone is consistent.  Probes backgrounds —
    prefixes of the splitting tree — instead of every single-deletion
    subset, so the probe count scales as ``O(k + k·log(|Sigma|/k))`` for
    a core of size ``k``: far below the deletion filter's ``|Sigma|``
    whenever the conflict is small and the specification is large.  Like
    the deletion filter it returns a *minimal* inconsistent subset; when
    an instance has several MUSes the two filters may legitimately pick
    different (individually minimal) ones.
    """

    def qx(
        background: list[Constraint],
        just_added: bool,
        constraints: list[Constraint],
    ) -> list[Constraint]:
        if just_added and not check(background):
            return []  # background alone already inconsistent
        if len(constraints) == 1:
            return list(constraints)
        half = len(constraints) // 2
        first, second = constraints[:half], constraints[half:]
        part2 = qx(background + first, bool(first), second)
        part1 = qx(background + part2, bool(part2), first)
        return part1 + part2

    return qx([], False, list(sigma))


def _minimal_core(
    check: _SubsetCheck, sigma: list[Constraint], method: str
) -> list[Constraint]:
    """Dispatch to the selected MUS filter (full set known UNSAT)."""
    _require_mus_method(method)
    if method == "quickxplain":
        return _mus_quickxplain(check, sigma)
    return _mus_deletion(check, sigma)


def _probe_check(probe: _ToggleProbe) -> _SubsetCheck:
    """Subset oracle over toggle probes, counting MUS-phase probes."""

    def check(subset: list[Constraint]) -> bool:
        probe.stats.mus_probes += 1
        return probe.consistent(probe.active_parts(subset))

    return check


def _rebuild_check(
    dtd: DTD, config: CheckerConfig, stats: DiagnosticsStats
) -> _SubsetCheck:
    """Subset oracle over full checker calls (the rebuild reference).

    Probes run with ``jobs=1``: the subset probe is the intended unit of
    parallelism, and a worker pool per probe would cost more than it
    saves."""
    probe_config = replace(config, want_witness=False, jobs=1)

    def check(subset: list[Constraint]) -> bool:
        stats.mus_probes += 1
        result = check_consistency(dtd, subset, probe_config)
        stats.merge_checker(result.stats)
        return result.consistent

    return check


def _is_redundant(probe: _ToggleProbe, sigma: list[Constraint], index: int) -> bool:
    """Is ``sigma[index]`` implied by the rest? (one probe per component's
    negation: implied iff every negation is inconsistent with the rest)."""
    phi = sigma[index]
    rest = sigma[:index] + sigma[index + 1:]
    rest_parts = probe.active_parts(rest)
    return all(
        not probe.consistent(rest_parts | {negated})
        for negated in probe.negations[phi]
    )


def _redundancy_filter(
    probe: _ToggleProbe, sigma: list[Constraint]
) -> list[Constraint]:
    """Implication audit via probes: ``phi`` is implied by the rest iff
    every component's negation is inconsistent with the rest's rows."""
    return [
        phi
        for index, phi in enumerate(sigma)
        if _is_redundant(probe, sigma, index)
    ]


#: Per-process state of a diagnostics worker: its own union probe over the
#: full specification, built once by :func:`_init_diagnostics_worker`.
_DIAGNOSTICS_WORKER: dict = {}


def _init_diagnostics_worker(payload: tuple) -> None:
    """Build this worker's own ``Psi(D, Sigma ∪ ¬Sigma)`` probe.

    The parent constructed the identical probe before fanning out, so
    this cannot fail in the worker only (same deterministic inputs).
    """
    dtd, sigma, config = payload
    _DIAGNOSTICS_WORKER["sigma"] = sigma
    _DIAGNOSTICS_WORKER["probe"] = _ToggleProbe(
        dtd, sigma, config, with_negations=True, stats=DiagnosticsStats()
    )


def _diagnostics_task(indices: tuple[int, ...]) -> tuple[list[bool], dict]:
    """Audit a chunk of constraint indices on this worker's probe."""
    probe = _DIAGNOSTICS_WORKER["probe"]
    sigma = _DIAGNOSTICS_WORKER["sigma"]
    stats = DiagnosticsStats()
    stats.assemblies = probe.workspace.take_assembly_charge()
    probe.stats = stats
    flags = [_is_redundant(probe, sigma, index) for index in indices]
    return flags, asdict(stats)


def _redundancy_filter_parallel(
    dtd: DTD,
    probe: _ToggleProbe,
    sigma: list[Constraint],
    config: CheckerConfig,
    stats: DiagnosticsStats,
) -> list[Constraint]:
    """Fan the per-constraint audit probes across a worker pool.

    Each worker owns a full probe (its own assembly and workspace — the
    single-owner rule of DESIGN.md section 7), so ``stats.assemblies``
    grows to at most ``1 + workers``; the verdicts are the sequential
    ones exactly, since every probe is independent and each worker runs
    the identical sequential probe code.  The parent's ``probe`` is only
    consulted as the fallback when the pool cannot be built.
    """
    jobs = min(config.jobs, len(sigma))
    if jobs < 2 or not WorkerPool.available():
        return _redundancy_filter(probe, sigma)
    chunks = [tuple(range(start, len(sigma), jobs)) for start in range(jobs)]
    worker_config = replace(config, jobs=1)
    stats.workers_spawned += jobs
    try:
        results = fanout_map(
            _diagnostics_task,
            chunks,
            jobs,
            _init_diagnostics_worker,
            (dtd, sigma, worker_config),
        )
    except WorkerCrashError:
        # Pool lost beyond recovery: the parent's probe answers the
        # whole audit sequentially (identical verdicts by construction).
        return _redundancy_filter(probe, sigma)
    redundant_indices: set[int] = set()
    for chunk, (flags, worker_stats) in zip(chunks, results):
        stats.absorb(worker_stats)
        redundant_indices.update(
            index for index, flag in zip(chunk, flags) if flag
        )
    return [phi for index, phi in enumerate(sigma) if index in redundant_indices]


def mus(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    method: str = "quickxplain",
    toggled: bool = True,
    stats: DiagnosticsStats | None = None,
) -> list[Constraint]:
    """A minimal inconsistent subset of ``Sigma`` (a MUS).

    The single MUS entry point: the historical
    :func:`minimal_unsat_core` / :func:`minimal_inconsistent_subset`
    pair (and the internal rebuild variant) are thin deprecation shims
    over this call — same computation, ``method`` and ``toggled`` select
    the filter and the engine.

    Requires the full set to be inconsistent with the DTD (raises
    :class:`InvalidConstraintError` otherwise). The result may be empty
    when the DTD alone has no valid tree — then no constraints are to
    blame at all.

    ``method`` selects the filter: ``"quickxplain"`` (default) probes
    divide-and-conquer backgrounds — ``O(k + k·log(|Sigma|/k))`` probes
    for a core of size ``k`` — while ``"deletion"`` is the classic linear
    filter, exactly ``|Sigma|`` probes.  Both return minimal cores; on
    specifications with several distinct MUSes they may return different
    (individually minimal) ones.  ``toggled=False`` selects the
    rebuild-per-subset reference path (one full checker call per probe);
    the default probes constraint subsets by row toggles on a single
    assembled system.  ``stats``, when supplied, is filled with the
    call's work counters — ``mus_probes`` isolates the filter's probe
    count, the number the QuickXplain benchmark gate compares.

    >>> from repro.workloads.examples import teachers_dtd_d1, sigma1_constraints
    >>> stats = DiagnosticsStats()
    >>> core = mus(teachers_dtd_d1(), sigma1_constraints(), stats=stats)
    >>> sorted(str(phi) for phi in core)
    ['subject.taught_by -> subject', 'subject.taught_by => teacher.name']
    >>> (stats.mus_method, stats.assemblies)  # one persistent system
    ('quickxplain', 1)
    """
    _require_mus_method(method)
    config = config or DEFAULT_CONFIG
    stats = stats if stats is not None else DiagnosticsStats()
    stats.mus_method = method
    current = list(constraints)
    if _use_toggles(toggled, current, config):
        try:
            probe = _ToggleProbe(
                dtd, current, config, with_negations=False, stats=stats
            )
        except ComplexityLimitError:
            probe = None  # union setrep block over cap: rebuild instead
        if probe is not None:
            if probe.consistent(probe.active_parts(current)):
                raise InvalidConstraintError(
                    "the specification is consistent; there is no inconsistent subset"
                )
            if not dtd_has_valid_tree(dtd):
                return []
            return _minimal_core(_probe_check(probe), current, method)
    return _minimal_unsat_core_rebuild(dtd, current, config, stats, method)


def minimal_unsat_core(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    method: str = "quickxplain",
    toggled: bool = True,
    stats: DiagnosticsStats | None = None,
) -> list[Constraint]:
    """Deprecated alias for :func:`mus` (QuickXplain-default "quickxplain"
    filter).  Same computation, same results; new code calls
    ``mus(dtd, sigma, method=...)`` directly."""
    warnings.warn(
        "minimal_unsat_core is deprecated; use mus(dtd, constraints, "
        "method='quickxplain') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return mus(
        dtd, constraints, config, method=method, toggled=toggled, stats=stats
    )


def minimal_inconsistent_subset(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    method: str = "deletion",
    toggled: bool = True,
    stats: DiagnosticsStats | None = None,
) -> list[Constraint]:
    """Deprecated alias for :func:`mus` with the linear deletion filter as
    the default ``method`` — the historical behaviour of this entry point.
    New code calls ``mus(dtd, sigma, method='deletion')`` directly."""
    warnings.warn(
        "minimal_inconsistent_subset is deprecated; use mus(dtd, "
        "constraints, method='deletion') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return mus(
        dtd, constraints, config, method=method, toggled=toggled, stats=stats
    )


def _minimal_unsat_core_rebuild(
    dtd: DTD,
    current: list[Constraint],
    config: CheckerConfig,
    stats: DiagnosticsStats,
    method: str = "deletion",
) -> list[Constraint]:
    """Reference path: one full consistency check per probed subset."""
    stats.method = "rebuild"
    stats.mus_method = method
    probe = replace(config, want_witness=False, jobs=1)
    result = check_consistency(dtd, current, probe)
    stats.merge_checker(result.stats)
    if result.consistent:
        raise InvalidConstraintError(
            "the specification is consistent; there is no inconsistent subset"
        )
    if not dtd_has_valid_tree(dtd):
        return []
    check = _rebuild_check(dtd, config, stats)
    return _minimal_core(check, current, method)


def redundant_constraints(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    toggled: bool = True,
    stats: DiagnosticsStats | None = None,
) -> list[Constraint]:
    """Constraints implied by the remaining ones over the DTD.

    Note the subtlety: redundancy here is *relative to the whole rest*, so
    two mutually-implied constraints can both be reported (either one may
    be dropped, not both).  The toggled default decides each implication
    by activating the rest's rows plus the query's negated rows on the one
    assembled union system; ``toggled=False`` re-encodes per query.  The
    per-constraint probes are independent, so ``config.jobs > 1`` fans
    them across a worker pool (each worker on its own assembly) with
    identical verdicts.
    """
    config = config or DEFAULT_CONFIG
    stats = stats if stats is not None else DiagnosticsStats()
    sigma = list(constraints)
    if _use_toggles(toggled, sigma, config):
        try:
            probe = _ToggleProbe(
                dtd, sigma, config, with_negations=True, stats=stats
            )
        except ComplexityLimitError:
            probe = None  # union setrep block over cap: rebuild instead
        if probe is not None:
            if config.jobs > 1:
                return _redundancy_filter_parallel(
                    dtd, probe, sigma, config, stats
                )
            return _redundancy_filter(probe, sigma)
    return _redundant_constraints_rebuild(dtd, sigma, config, stats)


def _redundant_constraints_rebuild(
    dtd: DTD,
    sigma: list[Constraint],
    config: CheckerConfig,
    stats: DiagnosticsStats,
) -> list[Constraint]:
    """Reference path: one full implication call per constraint (each
    probe at ``jobs=1`` — a pool per probe would invert the speedup)."""
    stats.method = "rebuild"
    probe = replace(config, want_witness=False, jobs=1)
    redundant: list[Constraint] = []
    for index, phi in enumerate(sigma):
        rest = sigma[:index] + sigma[index + 1:]
        result = implies(dtd, rest, phi, probe)
        stats.merge_checker(result.stats)
        if result.implied:
            redundant.append(phi)
    return redundant


@dataclass
class DiagnosticsReport:
    """Combined specification health report."""

    consistent: bool
    mus: list[Constraint] = field(default_factory=list)
    redundant: list[Constraint] = field(default_factory=list)
    dtd_satisfiable: bool = True
    stats: DiagnosticsStats = field(default_factory=DiagnosticsStats)

    def summary(self) -> str:
        """Human-readable multi-line rendering."""
        lines = []
        if not self.dtd_satisfiable:
            lines.append("the DTD alone admits no finite document")
        elif self.consistent:
            lines.append("specification is CONSISTENT")
        else:
            lines.append("specification is INCONSISTENT; minimal conflict:")
            for phi in self.mus:
                lines.append(f"  - {phi}")
        if self.redundant:
            lines.append("redundant constraints (implied by the rest):")
            for phi in self.redundant:
                lines.append(f"  - {phi}")
        return "\n".join(lines)


def diagnose(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    toggled: bool = True,
    mus_method: str = "quickxplain",
) -> DiagnosticsReport:
    """Full specification health check.

    For consistent specifications, reports redundancies; for inconsistent
    ones, a minimal conflicting subset — found by the ``mus_method``
    filter (QuickXplain by default; ``"deletion"`` for the linear
    reference filter).  The whole report — the initial consistency
    verdict plus every MUS/redundancy probe — is served from one
    assembled system (``report.stats.assemblies == 1`` on the sequential
    toggled path); ``toggled=False`` is the re-encode-per-subset
    reference, which drives the *same* filters through full checker
    calls.  ``config.jobs > 1`` fans the redundancy audit's independent
    probes across a worker pool (one assembly per worker); the MUS
    filter stays sequential — each of its probes depends on the answers
    before it.
    """
    _require_mus_method(mus_method)
    config = config or DEFAULT_CONFIG
    sigma = list(constraints)
    stats = DiagnosticsStats()
    if not dtd_has_valid_tree(dtd):
        return DiagnosticsReport(
            consistent=False, dtd_satisfiable=False, stats=stats
        )
    if _use_toggles(toggled, sigma, config):
        try:
            probe = _ToggleProbe(
                dtd, sigma, config, with_negations=True, stats=stats
            )
        except ComplexityLimitError:
            probe = None  # union setrep block over cap: rebuild instead
        if probe is not None:
            if probe.consistent(probe.active_parts(sigma)):
                redundant = (
                    _redundancy_filter_parallel(dtd, probe, sigma, config, stats)
                    if config.jobs > 1
                    else _redundancy_filter(probe, sigma)
                )
                return DiagnosticsReport(
                    consistent=True, redundant=redundant, stats=stats
                )
            stats.mus_method = mus_method
            return DiagnosticsReport(
                consistent=False,
                mus=_minimal_core(_probe_check(probe), sigma, mus_method),
                stats=stats,
            )
    return _diagnose_rebuild(dtd, sigma, config, stats, mus_method)


def _diagnose_rebuild(
    dtd: DTD,
    sigma: list[Constraint],
    config: CheckerConfig,
    stats: DiagnosticsStats,
    mus_method: str = "quickxplain",
) -> DiagnosticsReport:
    """Reference path: full checker calls per subset (each at ``jobs=1``)."""
    stats.method = "rebuild"
    probe = replace(config, want_witness=False, jobs=1)
    result = check_consistency(dtd, sigma, probe)
    stats.merge_checker(result.stats)
    if result.consistent:
        return DiagnosticsReport(
            consistent=True,
            redundant=_redundant_constraints_rebuild(dtd, sigma, config, stats),
            stats=stats,
        )
    return DiagnosticsReport(
        consistent=False,
        mus=_minimal_unsat_core_rebuild(
            dtd, list(sigma), config, stats, mus_method
        ),
        stats=stats,
    )
