"""Specification diagnostics: *why* is a spec broken, *what* is redundant.

The paper motivates static validation with "repeated failures are due to a
bad specification" (Section 1) and closes proposing a design theory for
XML specifications (Section 6). Two concrete tools toward that:

* :func:`minimal_inconsistent_subset` — a deletion-minimal subset of
  Sigma that is already inconsistent with the DTD (a MUS): the smallest
  story to tell the schema author. Found by the standard deletion filter:
  O(|Sigma|) consistency calls.
* :func:`redundant_constraints` — constraints implied by the rest of the
  specification (over the DTD): safe to drop, or a hint that the author
  expected them to add strength they do not add. One implication call per
  constraint.

Both operate on the decidable unary classes, like the procedures they are
built from; multi-attribute foreign keys raise
:class:`UndecidableProblemError` upstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterable

from repro.constraints.ast import Constraint
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.checkers.consistency import check_consistency, dtd_has_valid_tree
from repro.checkers.implication import implies
from repro.dtd.model import DTD
from repro.errors import InvalidConstraintError


def minimal_inconsistent_subset(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
) -> list[Constraint]:
    """A deletion-minimal inconsistent subset of ``Sigma`` (a MUS).

    Requires the full set to be inconsistent with the DTD (raises
    :class:`InvalidConstraintError` otherwise). The result may be empty
    when the DTD alone has no valid tree — then no constraints are to
    blame at all.

    >>> from repro.workloads.examples import teachers_dtd_d1, sigma1_constraints
    >>> mus = minimal_inconsistent_subset(teachers_dtd_d1(), sigma1_constraints())
    >>> sorted(str(phi) for phi in mus)
    ['subject.taught_by -> subject', 'subject.taught_by => teacher.name']
    """
    config = config or DEFAULT_CONFIG
    probe = replace(config, want_witness=False)
    current = list(constraints)
    if check_consistency(dtd, current, probe).consistent:
        raise InvalidConstraintError(
            "the specification is consistent; there is no inconsistent subset"
        )
    if not dtd_has_valid_tree(dtd):
        return []
    index = 0
    while index < len(current):
        candidate = current[:index] + current[index + 1:]
        if check_consistency(dtd, candidate, probe).consistent:
            index += 1  # constraint is necessary for the conflict
        else:
            current = candidate  # still inconsistent without it: drop
    return current


def redundant_constraints(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
) -> list[Constraint]:
    """Constraints implied by the remaining ones over the DTD.

    Note the subtlety: redundancy here is *relative to the whole rest*, so
    two mutually-implied constraints can both be reported (either one may
    be dropped, not both).
    """
    config = config or DEFAULT_CONFIG
    probe = replace(config, want_witness=False)
    sigma = list(constraints)
    redundant: list[Constraint] = []
    for index, phi in enumerate(sigma):
        rest = sigma[:index] + sigma[index + 1:]
        if implies(dtd, rest, phi, probe).implied:
            redundant.append(phi)
    return redundant


@dataclass
class DiagnosticsReport:
    """Combined specification health report."""

    consistent: bool
    mus: list[Constraint] = field(default_factory=list)
    redundant: list[Constraint] = field(default_factory=list)
    dtd_satisfiable: bool = True

    def summary(self) -> str:
        """Human-readable multi-line rendering."""
        lines = []
        if not self.dtd_satisfiable:
            lines.append("the DTD alone admits no finite document")
        elif self.consistent:
            lines.append("specification is CONSISTENT")
        else:
            lines.append("specification is INCONSISTENT; minimal conflict:")
            for phi in self.mus:
                lines.append(f"  - {phi}")
        if self.redundant:
            lines.append("redundant constraints (implied by the rest):")
            for phi in self.redundant:
                lines.append(f"  - {phi}")
        return "\n".join(lines)


def diagnose(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
) -> DiagnosticsReport:
    """Full specification health check.

    For consistent specifications, reports redundancies; for inconsistent
    ones, a minimal conflicting subset.
    """
    config = config or DEFAULT_CONFIG
    sigma = list(constraints)
    if not dtd_has_valid_tree(dtd):
        return DiagnosticsReport(
            consistent=False, dtd_satisfiable=False
        )
    probe = replace(config, want_witness=False)
    if check_consistency(dtd, sigma, probe).consistent:
        return DiagnosticsReport(
            consistent=True,
            redundant=redundant_constraints(dtd, sigma, config),
        )
    return DiagnosticsReport(
        consistent=False,
        mus=minimal_inconsistent_subset(dtd, sigma, config),
    )
