"""Minimal repairs: *how to fix* an inconsistent specification.

The diagnostics layer (:mod:`repro.analysis.diagnostics`) tells the schema
author *which* constraints conflict; this module computes minimal
**repairs** in the spirit of Bravo–Cheney–Fundulaki: a smallest (or
minimum-weight) set of edits that restores consistency, drawn from three
edit families:

* :class:`DeleteConstraint` — drop one constraint of Sigma;
* :class:`LoosenChild` — make a required child optional in one content
  model (``(a, b)`` becomes ``(a?, b)``), the cardinality loosening;
* :class:`DropAttribute` — remove one attribute requirement ``tau.l``
  (constraints naming it go with it).

Every candidate edit is probed on **one** shared assembly: constraint
deletions reuse the :class:`~repro.encoding.combined.ConsistencyEncoding`
toggle registry exactly as the MUS filters do, and DTD edits ride the
``repair_sites=True`` shadow rows — deactivating a rule-equation row
leaves its one-sided shadow, which *is* the loosened DTD's projection —
plus a per-probe recomputation of the unusable-type closure.  A probe is
therefore one re-solve on the persistent workspace
(``stats.assemblies == 1`` for the whole search, the invariant
``benchmarks/bench_repair.py`` gates).

The search is the implicit-hitting-set loop, MUS-guided: whenever a
candidate edit set probes infeasible, the engine shrinks a constraint-MUS
of the edited spec with the **same** QuickXplain/deletion filters that
power :func:`~repro.analysis.diagnostics.minimal_unsat_core` (deleting a
constraint *is* one of the edits, so the filters run unchanged over the
edit oracle — the divide-and-conquer is exactly dual), then widens it to
a *core*: the edits that could neutralize that MUS.  A repair must hit
every discovered core — missing one would leave the MUS intact over a
DTD at least as strict, hence inconsistent by monotonicity — so the
engine alternates exact min-weight hitting sets with core extraction
until a hitting set probes consistent; positive weights make that set
both minimum-weight and inclusion-minimal.  The result is applied and
re-checked end to end before being returned (``verified``).

>>> from repro.dtd.model import DTD
>>> from repro.constraints.parser import parse_constraints
>>> d = DTD.build("r", {"r": "(a, a)", "a": "EMPTY"},
...               attrs={"r": ["k"], "a": ["k"]})
>>> sigma = parse_constraints("a.k -> a\\na.k <= r.k")
>>> rep = minimal_repair(d, sigma)
>>> (rep.found, rep.cost, [act.describe() for act in rep.actions])
(True, 1, ['delete constraint a.k -> a'])
>>> rep.verified and rep.stats.assemblies == 1
True
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from collections.abc import Iterable, Mapping

from repro.analysis.diagnostics import _minimal_core, _require_mus_method, _use_toggles
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.constraints.classes import expand_foreign_keys, validate_constraints
from repro.dtd.analysis import required_children
from repro.dtd.model import DTD
from repro.dtd.serializer import dtd_to_string
from repro.dtd.simplify import AltRule, EpsRule, OneRule, SeqRule
from repro.encoding.cardinality import attr_var
from repro.encoding.combined import build_encoding
from repro.errors import ComplexityLimitError, SolverError
from repro.ilp.condsys import CondSolveStats, SolveWorkspace, solve_conditional_system
from repro.regex.ast import (
    TEXT_SYMBOL,
    Concat,
    Epsilon,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Text,
    Union,
)


# ---------------------------------------------------------------------------
# Edit actions
# ---------------------------------------------------------------------------


class RepairAction:
    """Base class of the three edit families.  Frozen and hashable, so
    actions can key weight mappings and probe memo tables."""

    __slots__ = ()

    #: Short family name; also a valid key in ``minimal_repair(weights=...)``
    #: to weight a whole family at once.
    kind: str = ""

    def describe(self) -> str:
        """One-line human rendering, used in summaries and wire payloads."""
        raise NotImplementedError

    def as_dict(self) -> dict[str, str]:
        """JSON-able rendering for the service wire format."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class DeleteConstraint(RepairAction):
    """Remove one constraint of Sigma (foreign keys as a whole)."""

    constraint: Constraint

    kind = "delete"

    def describe(self) -> str:
        return f"delete constraint {self.constraint}"

    def as_dict(self) -> dict[str, str]:
        return {"kind": "delete", "constraint": str(self.constraint)}


@dataclass(frozen=True, slots=True)
class LoosenChild(RepairAction):
    """Make every occurrence of ``child`` optional in ``P(element_type)``."""

    element_type: str
    child: str

    kind = "loosen"

    def describe(self) -> str:
        return f"make child {self.child} optional in content of {self.element_type}"

    def as_dict(self) -> dict[str, str]:
        return {
            "kind": "loosen",
            "element_type": self.element_type,
            "child": self.child,
        }


@dataclass(frozen=True, slots=True)
class DropAttribute(RepairAction):
    """Remove attribute ``attr`` from ``R(element_type)``; constraints
    naming ``element_type.attr`` are removed with it."""

    element_type: str
    attr: str

    kind = "drop"

    def describe(self) -> str:
        return f"drop attribute {self.element_type}.{self.attr}"

    def as_dict(self) -> dict[str, str]:
        return {
            "kind": "drop",
            "element_type": self.element_type,
            "attr": self.attr,
        }


def _attr_refs(phi: Constraint) -> frozenset[tuple[str, str]]:
    """Every ``(element_type, attribute)`` pair a constraint names."""
    if isinstance(phi, Key):
        return frozenset((phi.element_type, attr) for attr in phi.attrs)
    if isinstance(phi, ForeignKey):
        return _attr_refs(phi.inclusion)
    if isinstance(phi, InclusionConstraint):
        return frozenset(
            [(phi.child_type, attr) for attr in phi.child_attrs]
            + [(phi.parent_type, attr) for attr in phi.parent_attrs]
        )
    if isinstance(phi, NegKey):
        return frozenset([(phi.element_type, phi.attr)])
    if isinstance(phi, NegInclusion):
        return frozenset(
            [
                (phi.child_type, phi.child_attr),
                (phi.parent_type, phi.parent_attr),
            ]
        )
    raise TypeError(f"unknown constraint {phi!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Stats and result types
# ---------------------------------------------------------------------------


@dataclass
class RepairStats:
    """Work counters for one repair call.

    ``assemblies`` counts base-matrix assemblies charged by *search
    probes* — exactly 1 on the toggled path no matter how many edit
    subsets are probed (the ``bench_repair.py`` gate); the final
    apply-and-re-check verification is a deliberate fresh checker call
    and is tracked separately as ``verify_checks``, never as a probe
    assembly.  ``probes`` counts distinct subset solves (memo hits are
    ``probe_cache_hits``), ``core_probes`` the probes spent inside the
    core-shrinking filter (the dual-MUS phase), ``cores`` and
    ``hitting_sets`` the iterations of the implicit-hitting-set loop.
    """

    method: str = "toggled"
    core_method: str = ""
    candidates: int = 0
    assemblies: int = 0
    probes: int = 0
    probe_cache_hits: int = 0
    core_probes: int = 0
    cores: int = 0
    hitting_sets: int = 0
    verify_checks: int = 0
    dfs_nodes: int = 0
    leaves_solved: int = 0
    bound_patch_solves: int = 0
    cuts_added: int = 0
    cut_pool_hits: int = 0
    lp_prunes: int = 0
    lp_probe_decided: int = 0
    exact_nodes: int = 0
    exact_pivots: int = 0

    def merge_solve(self, solve: CondSolveStats) -> None:
        """Fold one probe's :class:`CondSolveStats` into the totals."""
        self.probes += 1
        self.assemblies += solve.assemblies
        self.dfs_nodes += solve.dfs_nodes
        self.leaves_solved += solve.leaves_solved
        self.bound_patch_solves += solve.bound_patch_solves
        self.cuts_added += solve.cuts_added
        self.cut_pool_hits += solve.cut_pool_hits
        self.lp_prunes += solve.lp_prunes
        self.lp_probe_decided += int(solve.lp_probe_decided)
        self.exact_nodes += solve.exact_nodes
        self.exact_pivots += solve.exact_pivots

    def merge_checker(self, stats: dict | None) -> None:
        """Fold a rebuild-path checker result's stats dict in."""
        self.probes += 1
        if not stats:
            return
        self.assemblies += stats.get("assemblies", 0)
        self.dfs_nodes += stats.get("dfs_nodes", 0)
        self.leaves_solved += stats.get("leaves", 0)
        self.bound_patch_solves += stats.get("bound_patch_solves", 0)
        self.cuts_added += stats.get("cuts", 0)
        self.cut_pool_hits += stats.get("cut_pool_hits", 0)
        self.lp_prunes += stats.get("lp_prunes", 0)
        self.lp_probe_decided += int(stats.get("lp_probe_decided", False))
        self.exact_nodes += stats.get("exact_nodes", 0)
        self.exact_pivots += stats.get("exact_pivots", 0)

    def absorb(self, other: "RepairStats | dict") -> None:
        """Fold another stats object's integer counters in.

        Unknown keys are skipped (a newer worker may report counters this
        process does not know) and string labels stay the parent's.
        """
        values = other if isinstance(other, dict) else asdict(other)
        for name, value in values.items():
            if isinstance(value, str) or not hasattr(self, name):
                continue
            setattr(self, name, getattr(self, name) + int(value))

    def as_dict(self) -> dict[str, int | str]:
        """Flat rendering for ``--stats`` output and benchmarks."""
        return {
            "method": self.method,
            "core_method": self.core_method or "-",
            "candidates": self.candidates,
            "assemblies": self.assemblies,
            "probes": self.probes,
            "probe_cache_hits": self.probe_cache_hits,
            "core_probes": self.core_probes,
            "cores": self.cores,
            "hitting_sets": self.hitting_sets,
            "verify_checks": self.verify_checks,
            "dfs_nodes": self.dfs_nodes,
            "leaves_solved": self.leaves_solved,
            "bound_patch_solves": self.bound_patch_solves,
            "cuts_added": self.cuts_added,
            "cut_pool_hits": self.cut_pool_hits,
            "lp_prunes": self.lp_prunes,
            "lp_probe_decided": self.lp_probe_decided,
            "exact_nodes": self.exact_nodes,
            "exact_pivots": self.exact_pivots,
        }


@dataclass
class Repair:
    """The result of :func:`minimal_repair`.

    ``found`` is the headline verdict (``bool(repair)``); when true,
    ``actions`` is a minimum-weight edit set, ``dtd``/``constraints``
    are the repaired specification, ``diff`` a human-readable edit diff
    and ``verified`` records that re-running the full consistency
    checker on the repaired specification returned consistent.
    ``consistent_before`` short-circuits everything: the input needed no
    repair and the edit set is empty.
    """

    consistent_before: bool
    found: bool
    actions: tuple[RepairAction, ...]
    cost: int
    dtd: DTD
    constraints: list[Constraint]
    diff: str
    verified: bool
    stats: RepairStats = field(default_factory=RepairStats)

    def __bool__(self) -> bool:
        return self.found

    def summary(self) -> str:
        """Human-readable multi-line rendering (CLI / spec_doctor)."""
        if self.consistent_before:
            return "specification is already consistent; nothing to repair"
        if not self.found:
            return "no repair exists within the edit space"
        lines = [f"minimal repair (cost {self.cost}):"]
        for action in self.actions:
            lines.append(f"  - {action.describe()}")
        if self.diff:
            lines.append("edit diff:")
            lines.extend(f"  {line}" for line in self.diff.splitlines())
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-able rendering — the service wire payload body."""
        return {
            "consistent_before": self.consistent_before,
            "found": self.found,
            "cost": self.cost,
            "verified": self.verified,
            "actions": [action.as_dict() for action in self.actions],
            "diff": self.diff,
            "dtd": dtd_to_string(self.dtd),
            "constraints": [str(phi) for phi in self.constraints],
            "stats": self.stats.as_dict(),
        }


# ---------------------------------------------------------------------------
# Applying repairs
# ---------------------------------------------------------------------------


def _wrap_optional(expr: Regex, symbol: str) -> Regex:
    """Wrap every ``Name(symbol)`` occurrence of ``expr`` in ``?``."""
    if isinstance(expr, Name):
        return Optional(expr) if expr.symbol == symbol else expr
    if isinstance(expr, (Epsilon, Text)):
        return expr
    if isinstance(expr, Concat):
        return Concat(tuple(_wrap_optional(item, symbol) for item in expr.items))
    if isinstance(expr, Union):
        return Union(tuple(_wrap_optional(item, symbol) for item in expr.items))
    if isinstance(expr, Star):
        return Star(_wrap_optional(expr.item, symbol))
    if isinstance(expr, Plus):
        return Plus(_wrap_optional(expr.item, symbol))
    if isinstance(expr, Optional):
        return Optional(_wrap_optional(expr.item, symbol))
    raise TypeError(f"unknown regex node {expr!r}")  # pragma: no cover


def apply_repair(
    dtd: DTD,
    constraints: Iterable[Constraint],
    actions: Iterable[RepairAction],
) -> tuple[DTD, list[Constraint]]:
    """Apply an edit set to ``(dtd, Sigma)``, returning the new spec.

    Deterministic and purely structural: deletions filter Sigma,
    loosenings rewrite the content-model AST (every occurrence of the
    child gains ``?``), attribute drops shrink ``R(tau)`` and remove the
    constraints that name the dropped attribute.

    >>> from repro.dtd.model import DTD
    >>> from repro.constraints.parser import parse_constraints
    >>> d = DTD.build("r", {"r": "(a, b)", "a": "EMPTY", "b": "EMPTY"},
    ...               attrs={"a": ["k"]})
    >>> d2, s2 = apply_repair(d, parse_constraints("a.k -> a"),
    ...                       [LoosenChild("r", "a"), DropAttribute("a", "k")])
    >>> (str(d2.content["r"]), sorted(d2.attrs("a")), s2)
    ('a?, b', [], [])
    """
    content = dict(dtd.content)
    attrs_of = {tau: set(attrs) for tau, attrs in dtd.attrs_of.items()}
    deleted: set[Constraint] = set()
    dropped: set[tuple[str, str]] = set()
    for action in actions:
        if isinstance(action, DeleteConstraint):
            deleted.add(action.constraint)
        elif isinstance(action, LoosenChild):
            content[action.element_type] = _wrap_optional(
                content[action.element_type], action.child
            )
        elif isinstance(action, DropAttribute):
            attrs_of.setdefault(action.element_type, set()).discard(action.attr)
            dropped.add((action.element_type, action.attr))
        else:
            raise TypeError(f"unknown repair action {action!r}")
    new_sigma = [
        phi
        for phi in constraints
        if phi not in deleted and not (_attr_refs(phi) & dropped)
    ]
    attribute_names = sorted({attr for attrs in attrs_of.values() for attr in attrs})
    new_dtd = DTD(
        element_types=dtd.element_types,
        attributes=tuple(attribute_names),
        content=content,
        attrs_of={tau: frozenset(attrs) for tau, attrs in attrs_of.items()},
        root=dtd.root,
    )
    return new_dtd, new_sigma


def _edit_diff(
    dtd: DTD,
    sigma: list[Constraint],
    new_dtd: DTD,
    new_sigma: list[Constraint],
) -> str:
    """Line-level before/after diff of the declarations and Sigma."""
    old_lines = dtd_to_string(dtd).splitlines()
    new_lines = dtd_to_string(new_dtd).splitlines()
    lines = [f"- {line}" for line in old_lines if line not in new_lines]
    lines.extend(f"+ {line}" for line in new_lines if line not in old_lines)
    remaining = list(new_sigma)
    for phi in sigma:
        if phi in remaining:
            remaining.remove(phi)
        else:
            lines.append(f"- constraint: {phi}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The toggled probe engine: one assembly, every edit a row flip
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Candidate:
    """One universe entry: the action plus its precompiled probe effect."""

    action: RepairAction
    #: Original constraints this action removes from Sigma.
    removes: frozenset[Constraint] = frozenset()
    #: Rule-site indices this action deactivates (loosenings).
    sites: frozenset[int] = frozenset()
    #: ``(tau, attr)`` requirements this action drops.
    drops: frozenset[tuple[str, str]] = frozenset()


class _RepairProbe:
    """One assembled ``Psi(D, Sigma)`` with every constraint row *and*
    every rule row toggleable (``repair_sites=True``), probed through a
    single persistent :class:`SolveWorkspace`.

    A probe applies a set of edits: deleted constraints' rows, clauses
    and forced supports are filtered exactly as in the diagnostics
    engine; loosened rule rows are deactivated (their one-sided shadow
    row keeps the upper bound — the loosened DTD's projection) together
    with their support clauses, and the unusable-type closure is
    recomputed for the loosened grammar (a type whose children became
    optional may become productive); dropped attribute requirements are
    filtered out of ``requires_if_present``.  Probe results are memoized
    — the hitting-set loop re-probes the same edit sets freely.
    """

    def __init__(
        self,
        dtd: DTD,
        sigma: list[Constraint],
        config: CheckerConfig,
        stats: RepairStats,
    ):
        self._config = config
        self.stats = stats
        self.sigma = list(sigma)
        self.parts: dict[Constraint, tuple[Constraint, ...]] = {
            phi: tuple(expand_foreign_keys([phi])) for phi in sigma
        }
        union: list[Constraint] = []
        seen: set[Constraint] = set()
        for phi in sigma:
            for part in self.parts[phi]:
                if part not in seen:
                    seen.add(part)
                    union.append(part)
        self.encoding = build_encoding(
            dtd,
            union,
            max_setrep_attrs=config.max_setrep_attrs,
            repair_sites=True,
        )
        self._toggleable_clauses = frozenset(
            clause_id
            for toggle in self.encoding.toggles.values()
            for clause_id in toggle.clause_ids
        ) | frozenset(
            clause_id
            for toggle in self.encoding.site_toggles.values()
            for clause_id in toggle.clause_ids
        )
        self.workspace = SolveWorkspace(self.encoding.condsys.base)
        self._sites_of: dict[str, list[int]] = {}
        for index, site in enumerate(self.encoding.sites):
            self._sites_of.setdefault(site.parent, []).append(index)
        self._forced_false_cache: dict[frozenset[int], frozenset[str]] = {}
        self._probe_cache: dict[
            tuple[frozenset[Constraint], frozenset[int], frozenset[tuple[str, str]]],
            bool,
        ] = {}

    # -- candidate compilation ------------------------------------------

    def _owners(self, tau: str) -> frozenset[str]:
        """``tau`` plus the generated types its content model expanded
        into — the rule scope of one original content model."""
        simple = self.encoding.simple
        owners = {tau}
        frontier = [tau]
        while frontier:
            current = frontier.pop()
            for symbol in simple.rules[current].symbols():
                if (
                    symbol == TEXT_SYMBOL
                    or symbol in owners
                    or simple.is_original(symbol)
                ):
                    continue
                owners.add(symbol)
                frontier.append(symbol)
        return frozenset(owners)

    def site_indices(self, tau: str, child: str) -> frozenset[int]:
        """The rule sites a ``LoosenChild(tau, child)`` edit deactivates:
        every site in ``tau``'s rule scope that constrains ``child``."""
        owners = self._owners(tau)
        return frozenset(
            index
            for index, site in enumerate(self.encoding.sites)
            if site.parent in owners
            and any(symbol == child for _, symbol in site.children)
        )

    # -- per-probe unusable-type closure --------------------------------

    def _forced_false(self, loosened: frozenset[int]) -> frozenset[str]:
        """Unusable types of the loosened grammar (memoized).

        Support clauses only exclude a type from being its *own* child
        requirement, so mutually-recursive unproductive types are caught
        exclusively by this closure — recomputing it per loosening set
        is a correctness requirement, not an optimization.
        """
        if not loosened:
            return self.encoding.condsys.forced_false
        cached = self._forced_false_cache.get(loosened)
        if cached is not None:
            return cached
        simple = self.encoding.simple

        def symbol_ok(symbol: str, productive: set[str]) -> bool:
            return symbol == TEXT_SYMBOL or symbol in productive

        productive: set[str] = set()
        changed = True
        while changed:
            changed = False
            for tau in simple.types:
                if tau in productive:
                    continue
                rule = simple.rules[tau]
                if isinstance(rule, EpsRule):
                    ok = True
                elif isinstance(rule, OneRule):
                    (index,) = self._sites_of[tau]
                    ok = index in loosened or symbol_ok(rule.symbol, productive)
                elif isinstance(rule, SeqRule):
                    first, second = self._sites_of[tau]
                    ok = (
                        first in loosened or symbol_ok(rule.first, productive)
                    ) and (
                        second in loosened or symbol_ok(rule.second, productive)
                    )
                elif isinstance(rule, AltRule):
                    (index,) = self._sites_of[tau]
                    ok = (
                        index in loosened
                        or symbol_ok(rule.left, productive)
                        or symbol_ok(rule.right, productive)
                    )
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown rule {rule!r}")
                if ok:
                    productive.add(tau)
                    changed = True
        if simple.root not in productive:
            usable: set[str] = set()
        else:
            usable = {simple.root}
            frontier = [simple.root]
            while frontier:
                tau = frontier.pop()
                for symbol in simple.rules[tau].symbols():
                    if (
                        symbol != TEXT_SYMBOL
                        and symbol in productive
                        and symbol not in usable
                    ):
                        usable.add(symbol)
                        frontier.append(symbol)
        result = frozenset(set(simple.types) - usable)
        self._forced_false_cache[loosened] = result
        return result

    # -- the probe ------------------------------------------------------

    def feasible(
        self,
        removed: frozenset[Constraint],
        loosened: frozenset[int],
        dropped: frozenset[tuple[str, str]],
    ) -> bool:
        """Is the edited specification consistent?  One re-solve on the
        shared workspace (memoized by the edit's normalized effect)."""
        key = (removed, loosened, dropped)
        cached = self._probe_cache.get(key)
        if cached is not None:
            self.stats.probe_cache_hits += 1
            return cached
        condsys = self.encoding.condsys
        active_parts = frozenset(
            part
            for phi in self.sigma
            if phi not in removed
            for part in self.parts[phi]
        )
        toggles = [self.encoding.toggles[part] for part in active_parts]
        site_toggles = [
            toggle
            for index, toggle in self.encoding.site_toggles.items()
            if index not in loosened
        ]
        active_rows = frozenset(
            row for toggle in toggles for row in toggle.rows
        ) | frozenset(row for toggle in site_toggles for row in toggle.rows)
        active_clauses = {
            clause_id for toggle in toggles for clause_id in toggle.clause_ids
        } | {
            clause_id
            for toggle in site_toggles
            for clause_id in toggle.clause_ids
        }
        forced: frozenset[str] = (
            frozenset().union(*(toggle.forced_true for toggle in toggles))
            if toggles
            else frozenset()
        )
        overrides: dict = {
            "forced_true": forced,
            "forced_false": self._forced_false(loosened),
        }
        if dropped:
            dropped_vars = {attr_var(tau, attr) for tau, attr in dropped}
            overrides["requires_if_present"] = {
                tau: tuple(var for var in vars_ if var not in dropped_vars)
                for tau, vars_ in condsys.requires_if_present.items()
            }
        result, solve_stats = solve_conditional_system(
            replace(condsys, **overrides),
            backend=self._config.backend,
            max_support_nodes=self._config.max_support_nodes,
            lp_prune=self._config.lp_prune,
            exact_warm=self._config.exact_warm,
            active_rows=active_rows,
            workspace=self.workspace,
            inactive_clauses=frozenset(self._toggleable_clauses - active_clauses),
        )
        self.stats.merge_solve(solve_stats)
        self._probe_cache[key] = result.feasible
        return result.feasible


# ---------------------------------------------------------------------------
# The implicit-hitting-set search
# ---------------------------------------------------------------------------


def _min_hitting_set(
    cores: list[frozenset[int]], weights: list[int]
) -> frozenset[int]:
    """Exact minimum-weight hitting set over the discovered cores.

    Deterministic branch-and-bound: branch on the first unhit core (in
    discovery order), elements in index order; among equal-weight optima
    the lexicographically smallest index tuple wins, so repeated calls —
    and therefore whole repair runs — are reproducible byte for byte.
    Core counts are small (one per loop iteration), so the exact search
    is far cheaper than a single solver probe.
    """
    best_cost: int | None = None
    best_key: tuple[int, ...] | None = None

    def search(chosen: tuple[int, ...], cost: int, remaining: list[frozenset[int]]) -> None:
        nonlocal best_cost, best_key
        if best_cost is not None and (
            cost > best_cost or (cost == best_cost and remaining)
        ):
            return
        if not remaining:
            key = tuple(sorted(chosen))
            if (
                best_cost is None
                or cost < best_cost
                or (cost == best_cost and best_key is not None and key < best_key)
            ):
                best_cost, best_key = cost, key
            return
        core = remaining[0]
        for element in sorted(core):
            search(
                chosen + (element,),
                cost + weights[element],
                [c for c in remaining[1:] if element not in c],
            )

    search((), 0, list(cores))
    return frozenset(best_key or ())


def _search(
    feasible,
    universe_size: int,
    weights: list[int],
    extract_core,
    stats: RepairStats,
) -> tuple[str, tuple[int, ...]]:
    """The implicit-hitting-set loop over edit indices.

    ``feasible(applied)`` decides consistency with an edit index set
    applied; it must be monotone increasing (more edits never hurt) and
    memoized (the loop legitimately re-asks).  Returns
    ``("consistent", ())``, ``("none", ())`` or ``("found", indices)``.

    A *core* is a set of edits every repair must intersect — here
    MUS-guided: when a candidate hitting set probes infeasible,
    ``extract_core`` shrinks a constraint-MUS of the edited spec and
    widens it to the edits that could neutralize it.  Missing a core
    entirely would, by monotonicity, leave that MUS intact over a DTD at
    least as strict — still broken — so cores are sound pruning.  Each
    new core is disjoint from the current hitting set, so the loop
    strictly progresses, and the first feasible hitting set is a
    minimum-weight, inclusion-minimal repair (with positive weights, a
    cheaper strict subset would contradict optimality).
    """
    everything = frozenset(range(universe_size))
    if feasible(frozenset()):
        return ("consistent", ())
    if not feasible(everything):
        return ("none", ())
    cores: list[frozenset[int]] = []
    while True:
        stats.hitting_sets += 1
        hit = _min_hitting_set(cores, weights)
        if feasible(hit):
            return ("found", tuple(sorted(hit)))
        core = extract_core(hit)
        if not core or core & hit or core in cores:  # pragma: no cover
            raise SolverError("repair search failed to make progress")
        cores.append(core)
        stats.cores += 1


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _candidate_universe(
    dtd: DTD, sigma: list[Constraint]
) -> list[_Candidate]:
    """The edit universe, in deterministic order: constraint deletions
    (Sigma order), cardinality loosenings (type-sorted, child-sorted —
    only *required* children, optional ones have nothing to loosen),
    attribute drops (declaration order, only attributes Sigma names —
    dropping an unreferenced attribute cannot affect consistency)."""
    universe: list[_Candidate] = []
    seen: set[Constraint] = set()
    for phi in sigma:
        if phi in seen:
            continue
        seen.add(phi)
        universe.append(
            _Candidate(action=DeleteConstraint(phi), removes=frozenset([phi]))
        )
    for tau in dtd.element_types:
        for child in sorted(required_children(dtd, tau)):
            universe.append(_Candidate(action=LoosenChild(tau, child)))
    referenced = frozenset(pair for phi in sigma for pair in _attr_refs(phi))
    for tau, attr in dtd.attribute_pairs():
        if (tau, attr) not in referenced:
            continue
        removes = frozenset(
            phi for phi in sigma if (tau, attr) in _attr_refs(phi)
        )
        universe.append(
            _Candidate(
                action=DropAttribute(tau, attr),
                removes=removes,
                drops=frozenset([(tau, attr)]),
            )
        )
    return universe


def _resolve_weights(
    universe: list[_Candidate],
    weights: Mapping[RepairAction | str, int] | None,
) -> list[int]:
    """Per-candidate positive weights: exact action match first, then the
    family name (``"delete"``/``"loosen"``/``"drop"``), default 1."""
    resolved: list[int] = []
    weights = weights or {}
    for candidate in universe:
        value = weights.get(candidate.action, weights.get(candidate.action.kind, 1))
        if not isinstance(value, int) or value < 1:
            raise ValueError(
                f"repair weights must be positive integers, got {value!r} "
                f"for {candidate.action.describe()!r}"
            )
        resolved.append(value)
    return resolved


def minimal_repair(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
    *,
    weights: Mapping[RepairAction | str, int] | None = None,
    core_method: str = "quickxplain",
    toggled: bool = True,
    stats: RepairStats | None = None,
) -> Repair:
    """A minimum-weight repair of ``(dtd, Sigma)``.

    Searches constraint deletions, cardinality loosenings and attribute
    drops for a smallest edit set restoring consistency; with the default
    unit weights the result is cardinality-minimal, and ``weights``
    (keyed by action instance or by family name) selects weighted-minimal
    repairs instead.  ``core_method`` picks the core-shrinking filter
    (``"quickxplain"`` default, ``"deletion"`` reference); ``toggled=False``
    selects the apply-and-recheck reference engine — one full checker
    call per probed edit set — kept as the differential oracle.  The
    returned repair is always applied and re-checked before this function
    returns; a verification failure raises :class:`SolverError` (it would
    be an internal probe-exactness bug, never a wrong answer).
    """
    _require_mus_method(core_method)
    config = config or DEFAULT_CONFIG
    stats = stats if stats is not None else RepairStats()
    stats.core_method = core_method
    sigma = list(constraints)
    validate_constraints(dtd, sigma)
    universe = _candidate_universe(dtd, sigma)
    stats.candidates = len(universe)
    weight_list = _resolve_weights(universe, weights)

    feasible = None
    if _use_toggles(toggled, sigma, config):
        try:
            probe = _RepairProbe(dtd, sigma, config, stats)
        except ComplexityLimitError:
            probe = None  # union setrep block over cap: rebuild instead
        if probe is not None:
            compiled = [
                _Candidate(
                    action=candidate.action,
                    removes=candidate.removes,
                    sites=(
                        probe.site_indices(
                            candidate.action.element_type, candidate.action.child
                        )
                        if isinstance(candidate.action, LoosenChild)
                        else frozenset()
                    ),
                    drops=candidate.drops,
                )
                for candidate in universe
            ]

            def feasible(applied: frozenset[int]) -> bool:
                removed: set[Constraint] = set()
                loosened: set[int] = set()
                dropped: set[tuple[str, str]] = set()
                for index in applied:
                    entry = compiled[index]
                    removed.update(entry.removes)
                    loosened.update(entry.sites)
                    dropped.update(entry.drops)
                return probe.feasible(
                    frozenset(removed), frozenset(loosened), frozenset(dropped)
                )

    if feasible is None:
        stats.method = "rebuild"
        probe_config = replace(config, want_witness=False, jobs=1)
        rebuild_cache: dict[frozenset[int], bool] = {}

        def feasible(applied: frozenset[int]) -> bool:
            cached = rebuild_cache.get(applied)
            if cached is not None:
                stats.probe_cache_hits += 1
                return cached
            edited_dtd, edited_sigma = apply_repair(
                dtd, sigma, [universe[index].action for index in sorted(applied)]
            )
            result = check_consistency(edited_dtd, edited_sigma, probe_config)
            stats.merge_checker(result.stats)
            rebuild_cache[applied] = result.consistent
            return result.consistent

    delete_index: dict[Constraint, int] = {}
    loosen_indices: list[int] = []
    drop_pairs: dict[int, tuple[str, str]] = {}
    for index, candidate in enumerate(universe):
        action = candidate.action
        if isinstance(action, DeleteConstraint):
            delete_index[action.constraint] = index
        elif isinstance(action, LoosenChild):
            loosen_indices.append(index)
        else:
            drop_pairs[index] = (action.element_type, action.attr)

    def extract_core(hit: frozenset[int]) -> frozenset[int]:
        """A MUS-guided core: shrink a constraint-MUS of the hit-edited
        spec (deleting a constraint = applying its delete edit, so the
        standard filters run unchanged over the index oracle), then
        widen to every edit that could neutralize the MUS — its members'
        deletions, attribute drops its members name, and all remaining
        loosenings (a repair avoiding all of these keeps the MUS intact
        over a DTD at least as strict, hence stays inconsistent)."""
        removed_h: set[Constraint] = set()
        for index in hit:
            removed_h.update(universe[index].removes)
        active = [phi for phi in delete_index if phi not in removed_h]

        def check(subset: list[Constraint]) -> bool:
            stats.core_probes += 1
            keep = frozenset(subset)
            extra = frozenset(
                delete_index[phi] for phi in active if phi not in keep
            )
            return feasible(hit | extra)

        mus: list[Constraint] = []
        if active and check([]):
            mus = _minimal_core(check, active, core_method)
        mus_refs: set[tuple[str, str]] = set()
        for phi in mus:
            mus_refs.update(_attr_refs(phi))
        core = {delete_index[phi] for phi in mus}
        core.update(
            index
            for index, pair in drop_pairs.items()
            if index not in hit and pair in mus_refs
        )
        core.update(index for index in loosen_indices if index not in hit)
        return frozenset(core - hit)

    status, chosen = _search(
        feasible, len(universe), weight_list, extract_core, stats
    )
    if status == "consistent":
        return Repair(
            consistent_before=True,
            found=True,
            actions=(),
            cost=0,
            dtd=dtd,
            constraints=sigma,
            diff="",
            verified=True,
            stats=stats,
        )
    if status == "none":
        return Repair(
            consistent_before=False,
            found=False,
            actions=(),
            cost=0,
            dtd=dtd,
            constraints=sigma,
            diff="",
            verified=False,
            stats=stats,
        )
    actions = tuple(universe[index].action for index in chosen)
    cost = sum(weight_list[index] for index in chosen)
    new_dtd, new_sigma = apply_repair(dtd, sigma, actions)
    stats.verify_checks += 1
    verify_config = replace(config, want_witness=False, jobs=1)
    verdict = check_consistency(new_dtd, new_sigma, verify_config)
    if not verdict.consistent:
        raise SolverError(
            "internal error: minimal repair failed verification — the "
            "probe engine and the checker disagree on the edited spec: "
            + "; ".join(action.describe() for action in actions)
        )
    return Repair(
        consistent_before=False,
        found=True,
        actions=actions,
        cost=cost,
        dtd=new_dtd,
        constraints=new_sigma,
        diff=_edit_diff(dtd, sigma, new_dtd, new_sigma),
        verified=True,
        stats=stats,
    )
