"""Feasible cardinality ranges: how many ``tau`` elements can exist?

The Section-1 inconsistency is a clash of cardinality ranges: D1 forces
``|ext(subject)| = 2|ext(teacher)| >= 2`` while Sigma1 forces
``|ext(subject)| <= |ext(teacher)|``. This module computes, for any
element type, the exact set of achievable ``|ext(tau)|`` values (an
integer interval, possibly unbounded above *within a probe limit*) over
all documents satisfying the specification — the interaction between DTD
and constraints, quantified.

Implementation: binary search over thresholds, each step an exact
consistency check of the encoding with one extra row (``ext(tau) <= k``
or ``>= k``). No changes to the solver are needed, and every step
inherits the solver's exactness.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.constraints.ast import Constraint
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.dtd.model import DTD
from repro.encoding.combined import build_encoding
from repro.encoding.dtd_system import ext_var
from repro.errors import InvalidConstraintError
from repro.ilp.condsys import solve_conditional_system
from repro.ilp.model import VarId


@dataclass(frozen=True)
class ExtentBounds:
    """The achievable range of ``|ext(tau)|``.

    ``minimum`` is exact. ``maximum`` is exact when not ``None``; ``None``
    means "at least ``probe_limit`` is achievable" — for DTDs with stars
    or recursion the extent is typically genuinely unbounded, but the
    probe cannot distinguish unbounded from astronomically large.
    """

    element_type: str
    minimum: int
    maximum: int | None
    probe_limit: int

    def __contains__(self, count: int) -> bool:
        if count < self.minimum:
            return False
        return self.maximum is None or count <= self.maximum

    def __str__(self) -> str:
        upper = "unbounded" if self.maximum is None else str(self.maximum)
        return f"|ext({self.element_type})| in [{self.minimum}, {upper}]"


def _feasible_with(
    dtd: DTD,
    constraints: list[Constraint],
    extra_row: tuple[dict[VarId, int], str, int],
    config: CheckerConfig,
) -> tuple[bool, dict[VarId, int] | None]:
    """Consistency of the spec with one extra linear row on the encoding."""
    encoding = build_encoding(dtd, constraints, config.max_setrep_attrs)
    coeffs, sense, rhs = extra_row
    if sense == "<=":
        encoding.condsys.base.add_le(coeffs, rhs, label="extent-probe")
    else:
        encoding.condsys.base.add_ge(coeffs, rhs, label="extent-probe")
    result, _stats = solve_conditional_system(
        encoding.condsys,
        backend=config.backend,
        max_support_nodes=config.max_support_nodes,
        lp_prune=config.lp_prune,
        incremental=config.incremental,
    )
    return result.feasible, (result.values if result.feasible else None)


def extent_bounds(
    dtd: DTD,
    constraints: Iterable[Constraint],
    element_type: str,
    probe_limit: int = 4096,
    config: CheckerConfig | None = None,
) -> ExtentBounds | None:
    """The feasible range of ``|ext(element_type)|`` under ``(D, Sigma)``.

    Returns ``None`` when the specification is inconsistent (no documents
    exist at all). Only unary constraint classes are supported (the same
    fragment as :func:`repro.checkers.check_consistency`).

    >>> from repro.workloads.examples import teachers_dtd_d1
    >>> bounds = extent_bounds(teachers_dtd_d1(), [], "subject")
    >>> bounds.minimum
    2
    >>> bounds.maximum is None   # teacher* makes it unbounded
    True
    """
    config = config or DEFAULT_CONFIG
    if element_type not in set(dtd.element_types):
        raise InvalidConstraintError(
            f"{element_type!r} is not an element type of the DTD"
        )
    constraints = list(constraints)
    var = ext_var(element_type)

    feasible, values = _feasible_with(
        dtd, constraints, ({var: 1}, ">=", 0), config
    )
    if not feasible:
        return None
    assert values is not None
    seed_count = values.get(var, 0)

    # Minimum: binary search on `ext <= k` over [0, seed_count].
    low, high = 0, seed_count
    while low < high:
        mid = (low + high) // 2
        ok, _ = _feasible_with(dtd, constraints, ({var: 1}, "<=", mid), config)
        if ok:
            high = mid
        else:
            low = mid + 1
    minimum = low

    # Maximum: probe the limit; if reachable, call it unbounded (within
    # the probe); otherwise binary search on `ext >= k`.
    ok, _ = _feasible_with(
        dtd, constraints, ({var: 1}, ">=", probe_limit), config
    )
    if ok:
        return ExtentBounds(element_type, minimum, None, probe_limit)
    low, high = max(minimum, seed_count), probe_limit - 1
    # Invariant: `ext >= low` feasible, `ext >= high + 1` infeasible.
    while low < high:
        mid = (low + high + 1) // 2
        ok, _ = _feasible_with(dtd, constraints, ({var: 1}, ">=", mid), config)
        if ok:
            low = mid
        else:
            high = mid - 1
    return ExtentBounds(element_type, minimum, low, probe_limit)
