"""Specification analysis: the paper's Section-6 programme, made concrete.

The paper closes by proposing to "use integrity constraints to distinguish
good XML design from bad design". This package builds that layer on top of
the decision procedures:

* :mod:`repro.analysis.extent_bounds` — the feasible range of
  ``|ext(tau)|`` across all documents satisfying a specification, i.e. the
  cardinality interaction between the DTD and the constraints made
  directly visible (the quantity driving the Section-1 inconsistency);
* :mod:`repro.analysis.diagnostics` — why is a specification
  inconsistent (minimal inconsistent subsets of Sigma) and which
  constraints are redundant (implied by the rest)?
"""

from repro.analysis.diagnostics import (
    DiagnosticsReport,
    DiagnosticsStats,
    diagnose,
    minimal_inconsistent_subset,
    minimal_unsat_core,
    redundant_constraints,
)
from repro.analysis.extent_bounds import ExtentBounds, extent_bounds

__all__ = [
    "ExtentBounds",
    "extent_bounds",
    "minimal_inconsistent_subset",
    "minimal_unsat_core",
    "redundant_constraints",
    "DiagnosticsReport",
    "DiagnosticsStats",
    "diagnose",
]
