"""Specification analysis: the paper's Section-6 programme, made concrete.

The paper closes by proposing to "use integrity constraints to distinguish
good XML design from bad design". This package builds that layer on top of
the decision procedures:

* :mod:`repro.analysis.extent_bounds` — the feasible range of
  ``|ext(tau)|`` across all documents satisfying a specification, i.e. the
  cardinality interaction between the DTD and the constraints made
  directly visible (the quantity driving the Section-1 inconsistency);
* :mod:`repro.analysis.diagnostics` — why is a specification
  inconsistent (minimal inconsistent subsets of Sigma, :func:`mus`) and
  which constraints are redundant (implied by the rest)?
* :mod:`repro.analysis.repair` — how to *fix* an inconsistent
  specification: a minimum-weight set of constraint deletions and DTD
  edits after which the specification is consistent.
"""

from repro.analysis.diagnostics import (
    DiagnosticsReport,
    DiagnosticsStats,
    diagnose,
    minimal_inconsistent_subset,
    minimal_unsat_core,
    mus,
    redundant_constraints,
)
from repro.analysis.extent_bounds import ExtentBounds, extent_bounds
from repro.analysis.repair import (
    DeleteConstraint,
    DropAttribute,
    LoosenChild,
    Repair,
    RepairAction,
    RepairStats,
    apply_repair,
    minimal_repair,
)

__all__ = [
    "ExtentBounds",
    "extent_bounds",
    "mus",
    "minimal_inconsistent_subset",
    "minimal_unsat_core",
    "redundant_constraints",
    "DiagnosticsReport",
    "DiagnosticsStats",
    "diagnose",
    "Repair",
    "RepairAction",
    "RepairStats",
    "DeleteConstraint",
    "LoosenChild",
    "DropAttribute",
    "apply_repair",
    "minimal_repair",
]
