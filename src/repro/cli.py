"""Command-line interface: static and dynamic XML specification checking.

Subcommands (also available as ``python -m repro``):

* ``check DTD [CONSTRAINTS]`` — consistency of the specification; with
  ``--witness FILE`` writes a synthesized satisfying document;
* ``validate DTD DOCUMENT [CONSTRAINTS]`` — does a concrete document
  conform to the DTD and satisfy the constraints?
* ``implies DTD CONSTRAINTS PHI`` — is the constraint ``PHI`` implied?
  With ``--counterexample FILE`` writes a refuting document;
* ``diagnose DTD CONSTRAINTS`` — minimal inconsistent subset (QuickXplain
  divide-and-conquer) or redundancy report, probed by row toggles on one
  assembled system (``--stats`` prints the work counters, ``--rebuild``
  the ablation, ``--jobs N`` fans the audit across worker processes);
* ``bounds DTD [CONSTRAINTS] --type TAU`` — feasible range of
  ``|ext(TAU)|``.

DTD files use ``<!ELEMENT>``/``<!ATTLIST>`` syntax; constraint files use
the library's text syntax (one constraint per line, ``#`` comments).
Exit codes: 0 = positive answer (consistent / valid / implied),
1 = negative answer, 2 = usage or input error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.diagnostics import diagnose
from repro.analysis.extent_bounds import extent_bounds
from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies as check_implies
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.satisfaction import violations
from repro.dtd.parser import parse_dtd
from repro.errors import ReproError
from repro.xmltree.parse import parse_xml
from repro.xmltree.serialize import tree_to_string
from repro.xmltree.validate import conforms


def _load_dtd(path: str, root: str | None):
    return parse_dtd(Path(path).read_text(), root=root)


def _load_constraints(path: str | None):
    if path is None:
        return []
    return parse_constraints(Path(path).read_text())


def _print_stats(stats: dict) -> None:
    """Render the solver counters carried by a checker result."""
    if not stats:
        print("solver stats: (none; decided without the ILP solver)")
        return
    rendered = "  ".join(f"{key}={value}" for key, value in sorted(stats.items()))
    print(f"solver stats: {rendered}")


def _solver_config(args: argparse.Namespace) -> CheckerConfig:
    """The checker configuration selected by the solver flags."""
    return CheckerConfig(
        backend=getattr(args, "backend", "scipy"),
        exact_warm=not getattr(args, "cold", False),
        jobs=getattr(args, "jobs", 1),
    )


def _cmd_check(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    sigma = _load_constraints(args.constraints)
    result = check_consistency(dtd, sigma, _solver_config(args))
    print(f"consistent: {result.consistent}   [{result.method}]")
    if result.message:
        print(f"note: {result.message}")
    if args.stats:
        _print_stats(result.stats)
    if result.consistent and args.witness:
        assert result.witness is not None
        Path(args.witness).write_text(tree_to_string(result.witness) + "\n")
        print(f"witness written to {args.witness}")
    return 0 if result.consistent else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    sigma = _load_constraints(args.constraints)
    tree = parse_xml(Path(args.document).read_text())
    report = conforms(tree, dtd)
    print(f"conforms to DTD: {bool(report)}")
    for error in report.errors:
        print(f"  - {error}")
    violated = violations(tree, sigma)
    if sigma:
        print(f"satisfies constraints: {not violated}")
        for phi in violated:
            print(f"  - violated: {phi}")
    return 0 if report and not violated else 1


def _cmd_implies(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    sigma = _load_constraints(args.constraints)
    phi = parse_constraint(args.phi)
    result = check_implies(dtd, sigma, phi, _solver_config(args))
    print(f"implied: {result.implied}   [{result.method}]")
    if result.message:
        print(f"note: {result.message}")
    if args.stats:
        _print_stats(result.stats)
    if not result.implied and result.counterexample is not None:
        if args.counterexample:
            Path(args.counterexample).write_text(
                tree_to_string(result.counterexample) + "\n"
            )
            print(f"counterexample written to {args.counterexample}")
        else:
            print("counterexample document:")
            print(tree_to_string(result.counterexample))
    return 0 if result.implied else 1


def _cmd_diagnose(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    sigma = _load_constraints(args.constraints)
    report = diagnose(dtd, sigma, _solver_config(args), toggled=not args.rebuild)
    print(report.summary())
    if args.stats:
        _print_stats(report.stats.as_dict())
    return 0 if report.consistent else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    sigma = _load_constraints(args.constraints)
    bounds = extent_bounds(dtd, sigma, args.type, probe_limit=args.probe_limit)
    if bounds is None:
        print("the specification is inconsistent: no documents exist")
        return 1
    print(bounds)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML integrity constraints in the presence of DTDs "
        "(Fan & Libkin, PODS 2001).",
    )
    parser.add_argument(
        "--root", default=None, help="root element type (default: first declared)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_solver_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--backend",
            choices=["scipy", "exact"],
            default="scipy",
            help="ILP backend: HiGHS floats with exact re-verification "
            "(default) or the certified rational simplex",
        )
        command.add_argument(
            "--cold",
            action="store_true",
            help="disable warm starts in the certified simplex (cold "
            "per-node refactorization; the differential-testing ablation)",
        )
        command.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for the parallel executor (independent "
            "support branches and diagnostics probes fan across N "
            "fork-based workers; verdicts are identical to --jobs 1)",
        )

    p_check = sub.add_parser("check", help="consistency of (DTD, constraints)")
    p_check.add_argument("dtd")
    p_check.add_argument("constraints", nargs="?", default=None)
    p_check.add_argument("--witness", help="write a satisfying document here")
    p_check.add_argument(
        "--stats",
        "--profile",
        action="store_true",
        dest="stats",
        help="print solver statistics (dfs_nodes, leaves, cuts, lp_prunes, "
        "assembly/cut-pool/propagation and exact node/pivot counters)",
    )
    add_solver_flags(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_validate = sub.add_parser("validate", help="validate a document")
    p_validate.add_argument("dtd")
    p_validate.add_argument("document")
    p_validate.add_argument("constraints", nargs="?", default=None)
    p_validate.set_defaults(func=_cmd_validate)

    p_implies = sub.add_parser("implies", help="constraint implication")
    p_implies.add_argument("dtd")
    p_implies.add_argument("constraints")
    p_implies.add_argument("phi", help="the constraint to test, in text syntax")
    p_implies.add_argument(
        "--counterexample", help="write a refuting document here"
    )
    p_implies.add_argument(
        "--stats",
        "--profile",
        action="store_true",
        dest="stats",
        help="print solver statistics for the underlying consistency solve",
    )
    add_solver_flags(p_implies)
    p_implies.set_defaults(func=_cmd_implies)

    p_diagnose = sub.add_parser("diagnose", help="specification health report")
    p_diagnose.add_argument("dtd")
    p_diagnose.add_argument("constraints")
    p_diagnose.add_argument(
        "--stats",
        "--profile",
        action="store_true",
        dest="stats",
        help="print diagnostics work counters (assemblies, subset probes, "
        "patched re-solves, cut-pool and exact node/pivot counters)",
    )
    p_diagnose.add_argument(
        "--rebuild",
        action="store_true",
        help="force the re-encode-per-subset reference path instead of "
        "toggling rows on one assembled system (the differential ablation)",
    )
    add_solver_flags(p_diagnose)
    p_diagnose.set_defaults(func=_cmd_diagnose)

    p_bounds = sub.add_parser("bounds", help="feasible |ext(tau)| range")
    p_bounds.add_argument("dtd")
    p_bounds.add_argument("constraints", nargs="?", default=None)
    p_bounds.add_argument("--type", required=True, help="element type tau")
    p_bounds.add_argument("--probe-limit", type=int, default=4096)
    p_bounds.set_defaults(func=_cmd_bounds)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
