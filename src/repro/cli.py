"""Command-line interface: static and dynamic XML specification checking.

Subcommands (also available as ``python -m repro``):

* ``check DTD [CONSTRAINTS]`` — consistency of the specification; with
  ``--witness FILE`` writes a synthesized satisfying document;
* ``validate DTD DOCUMENT [CONSTRAINTS]`` — does a concrete document
  conform to the DTD and satisfy the constraints?
* ``implies DTD CONSTRAINTS PHI`` — is the constraint ``PHI`` implied?
  With ``--counterexample FILE`` writes a refuting document;
* ``diagnose DTD CONSTRAINTS`` — minimal inconsistent subset (QuickXplain
  divide-and-conquer) or redundancy report, probed by row toggles on one
  assembled system (``--stats`` prints the work counters, ``--rebuild``
  the ablation, ``--jobs N`` fans the audit across worker processes);
* ``fix DTD [CONSTRAINTS]`` — minimum-weight repair of an inconsistent
  specification: constraint deletions plus DTD edits (cardinality
  loosenings, attribute-requirement drops), searched by toggle probes
  on one assembled system and re-verified with the full checker
  (``--output`` / ``--constraints-out`` write the repaired spec);
* ``bounds DTD [CONSTRAINTS] --type TAU`` — feasible range of
  ``|ext(TAU)|``;
* ``serve`` — the long-lived checking service: line-delimited JSON over
  stdio (default) or a localhost TCP socket (``--port``), with
  cross-request session caching and request batching (DESIGN.md
  section 8);
* ``fleet`` — a shard router over N ``repro serve`` backends
  (``--backends HOST:PORT,...`` and/or ``--spawn N``): the same line
  and HTTP protocols, sessions consistent-hashed by spec fingerprint,
  ``implies_all`` batches fanned across the fleet in waves (DESIGN.md
  section 11).

``check``/``implies``/``diagnose``/``fix``/``validate`` accept
``--via HOST:PORT`` to route through a running ``serve`` or ``fleet``
endpoint instead of solving in-process.

``check``/``implies``/``diagnose``/``fix``/``validate`` are thin clients of the
same session API the server runs on: each command resolves its
``(DTD, Sigma)`` through the process-wide
:func:`~repro.service.registry.default_registry`, so one-shot
invocations behave exactly as before while embedders calling
:func:`main` repeatedly get session reuse for free (``--session`` prints
the fingerprint and hit counters).

DTD files use ``<!ELEMENT>``/``<!ATTLIST>`` syntax; constraint files use
the library's text syntax (one constraint per line, ``#`` comments).
Exit codes: 0 = positive answer (consistent / valid / implied),
1 = negative answer, 2 = usage or input error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.extent_bounds import extent_bounds
from repro.checkers.config import CheckerConfig
from repro.constraints.parser import parse_constraints
from repro.dtd.parser import parse_dtd
from repro.errors import ReproError
from repro.service.registry import SessionRegistry, default_registry
from repro.service.session import SpecSession


def _load_dtd(path: str, root: str | None):
    return parse_dtd(Path(path).read_text(), root=root)


def _load_constraints(path: str | None):
    if path is None:
        return []
    return parse_constraints(Path(path).read_text())


def _print_stats(stats: dict) -> None:
    """Render the solver counters carried by a checker result."""
    if not stats:
        print("solver stats: (none; decided without the ILP solver)")
        return
    rendered = "  ".join(f"{key}={value}" for key, value in sorted(stats.items()))
    print(f"solver stats: {rendered}")


def _config_overrides(args: argparse.Namespace) -> dict | None:
    """The per-request config overrides selected by the solver flags.

    Only non-default selections are sent, so a plain invocation shares
    the session's (default-config) response-cache entries.
    """
    overrides: dict = {}
    if getattr(args, "backend", "scipy") != "scipy":
        overrides["backend"] = args.backend
    if getattr(args, "cold", False):
        overrides["exact_warm"] = False
    if getattr(args, "jobs", 1) != 1:
        # "auto" rides through as the adaptive marker; the session
        # resolves it to a concrete level per request.
        overrides["jobs"] = args.jobs
    return overrides or None


def _jobs_value(text: str) -> "int | str":
    """``--jobs`` accepts a worker count or the adaptive ``auto``."""
    if text == "auto":
        return "auto"
    return int(text)


def _session_for(args: argparse.Namespace) -> SpecSession:
    """Resolve the command's spec through the process-wide registry."""
    dtd = _load_dtd(args.dtd, args.root)
    sigma = _load_constraints(getattr(args, "constraints", None))
    return default_registry().session_for(dtd, sigma)


def _wire_spec(args: argparse.Namespace) -> dict:
    """The inline-spec fields of a wire request (``--via`` routing)."""
    request: dict = {"dtd": Path(args.dtd).read_text()}
    constraints = getattr(args, "constraints", None)
    if constraints is not None:
        request["constraints"] = Path(constraints).read_text()
    if args.root is not None:
        request["root"] = args.root
    return request


def _via_payload(args: argparse.Namespace, request: dict) -> tuple[dict, str]:
    """Run one wire request against the ``--via`` service.

    Returns ``(result, session_fingerprint)``; a structured error
    answer is surfaced as a :class:`ReproError` (exit code 2), the same
    contract as a local parse or solve failure.
    """
    from repro.service.client import ServiceClient

    host, _, port = args.via.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(f"--via must be HOST:PORT, got {args.via!r}")
    config = _config_overrides(args)
    if config:
        request["config"] = config
    try:
        with ServiceClient(host, int(port)) as client:
            response = client.call(request)
    except (ConnectionError, OSError) as exc:
        raise ReproError(f"cannot reach service at {args.via}: {exc}") from None
    if not response.get("ok", False):
        error = response.get("error", {})
        raise ReproError(
            f"service answered {error.get('type', 'error')}: "
            f"{error.get('message', 'remote call failed')}"
        )
    return response["result"], response.get("service", {}).get("session", "")


def _print_session(session: SpecSession) -> None:
    """The ``--session`` line: fingerprint plus cross-request counters."""
    stats = session.stats
    print(
        f"session: {session.fingerprint}  [mode={session.mode} "
        f"requests={stats.requests} cache_hits={stats.cache_hits}]"
    )


def _cmd_check(args: argparse.Namespace) -> int:
    if args.via:
        payload, fingerprint = _via_payload(args, {**_wire_spec(args), "op": "check"})
    else:
        session = _session_for(args)
        payload = session.check(_config_overrides(args))
    print(f"consistent: {payload['consistent']}   [{payload['method']}]")
    if payload["message"]:
        print(f"note: {payload['message']}")
    if args.stats:
        _print_stats(payload["stats"])
    if args.session_info:
        if args.via:
            print(f"session: {fingerprint}  [via={args.via}]")
        else:
            _print_session(session)
    if payload["consistent"] and args.witness:
        assert payload["witness"] is not None
        Path(args.witness).write_text(payload["witness"] + "\n")
        print(f"witness written to {args.witness}")
    return 0 if payload["consistent"] else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    document = Path(args.document).read_text()
    if args.via:
        payload, _ = _via_payload(
            args, {**_wire_spec(args), "op": "validate", "document": document}
        )
        has_sigma = args.constraints is not None
    else:
        session = _session_for(args)
        payload = session.validate(document)
        has_sigma = bool(session.sigma)
    print(f"conforms to DTD: {payload['conforms']}")
    for error in payload["errors"]:
        print(f"  - {error}")
    if has_sigma:
        print(f"satisfies constraints: {payload['satisfies']}")
        for phi in payload["violations"]:
            print(f"  - violated: {phi}")
    return 0 if payload["conforms"] and payload["satisfies"] else 1


def _cmd_implies(args: argparse.Namespace) -> int:
    if args.via:
        payload, fingerprint = _via_payload(
            args, {**_wire_spec(args), "op": "implies", "phi": args.phi}
        )
    else:
        session = _session_for(args)
        payload = session.implies(args.phi, _config_overrides(args))
    print(f"implied: {payload['implied']}   [{payload['method']}]")
    if payload["message"]:
        print(f"note: {payload['message']}")
    if args.stats:
        _print_stats(payload["stats"])
    if args.session_info:
        if args.via:
            print(f"session: {fingerprint}  [via={args.via}]")
        else:
            _print_session(session)
    if not payload["implied"] and payload["counterexample"] is not None:
        if args.counterexample:
            Path(args.counterexample).write_text(
                payload["counterexample"] + "\n"
            )
            print(f"counterexample written to {args.counterexample}")
        else:
            print("counterexample document:")
            print(payload["counterexample"])
    return 0 if payload["implied"] else 1


def _repair_payload(args: argparse.Namespace, session=None) -> tuple[dict, str]:
    """One repair answer, via the service or the local session."""
    if args.via:
        return _via_payload(
            args,
            {**_wire_spec(args), "op": "repair", "rebuild": args.rebuild},
        )
    session = session if session is not None else _session_for(args)
    payload = session.repair(_config_overrides(args), rebuild=args.rebuild)
    return payload, session.fingerprint


def _cmd_diagnose(args: argparse.Namespace) -> int:
    if args.via:
        payload, fingerprint = _via_payload(
            args,
            {**_wire_spec(args), "op": "diagnose", "rebuild": args.rebuild},
        )
        session = None
    else:
        session = _session_for(args)
        payload = session.diagnose(_config_overrides(args), rebuild=args.rebuild)
    print(payload["summary"])
    if args.repair and not payload["consistent"]:
        fix, _ = _repair_payload(args, session)
        print(fix["summary"])
    if args.stats:
        _print_stats(payload["stats"])
    if args.session_info:
        if args.via:
            print(f"session: {fingerprint}  [via={args.via}]")
        else:
            _print_session(session)
    return 0 if payload["consistent"] else 1


def _cmd_fix(args: argparse.Namespace) -> int:
    payload, fingerprint = _repair_payload(args)
    print(payload["summary"])
    if payload["found"] and not payload["verified"]:  # pragma: no cover
        print("warning: repaired specification failed re-verification")
    if args.stats:
        _print_stats(payload["stats"])
    if args.session_info:
        if args.via:
            print(f"session: {fingerprint}  [via={args.via}]")
        else:
            print(f"session: {fingerprint}")
    if payload["found"] and args.output:
        Path(args.output).write_text(payload["dtd"] + "\n")
        print(f"repaired DTD written to {args.output}")
    if payload["found"] and args.constraints_out:
        text = "\n".join(payload["constraints"])
        Path(args.constraints_out).write_text(text + ("\n" if text else ""))
        print(f"repaired constraints written to {args.constraints_out}")
    return 0 if payload["found"] or payload["consistent_before"] else 1


def _run_transports(
    server,
    host: str,
    port: int | None,
    http: int | None,
    metrics_port: int | None,
    stdio_fallback: bool = True,
) -> int:
    """Serve any mix of front ends on one loop, announcing bound ports.

    Shared by ``serve`` (a :class:`CheckingServer`) and ``fleet`` (a
    :class:`~repro.service.fleet.FleetRouter`): line TCP (``port``),
    HTTP/JSON (``http``), a scrape-only metrics listener
    (``metrics_port``), or stdio when no ports were requested and
    ``stdio_fallback`` allows it.  All transports share one stop event
    and one snapshot lifecycle.
    """
    import asyncio

    from repro.service.http import HTTPFrontend

    async def run() -> None:
        transports = []
        fronts: list = []
        if port is not None:
            transports.append(asyncio.ensure_future(server.serve_tcp(host, port)))
            fronts.append(("listening", server))
        if http is not None:
            front = HTTPFrontend(server)
            transports.append(asyncio.ensure_future(front.serve(host, http)))
            fronts.append(("http", front))
        if metrics_port is not None:
            front = HTTPFrontend(server, metrics_only=True)
            transports.append(
                asyncio.ensure_future(front.serve(host, metrics_port))
            )
            fronts.append(("metrics", front))
        if port is None and http is None and stdio_fallback:
            transports.append(asyncio.ensure_future(server.serve_stdio()))

        def pending() -> list:
            return [
                (kind, owner) for kind, owner in fronts if owner.address is None
            ]

        while pending() and not any(task.done() for task in transports):
            await asyncio.sleep(0.001)
        for kind, owner in fronts:
            if owner.address is not None:
                # Announce each bound port (0 binds ephemerally).
                print(
                    f"{kind} on {owner.address[0]}:{owner.address[1]}",
                    flush=True,
                )
        await asyncio.gather(*transports)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Deferred: only `serve` needs the asyncio server (and its thread
    # pool); the one-shot commands stay off that import cost.
    from repro.service.server import CheckingServer

    auto_jobs = args.jobs == "auto"
    config = CheckerConfig(
        backend=args.backend,
        exact_warm=not args.cold,
        jobs=1 if auto_jobs else args.jobs,
    )
    registry = SessionRegistry(
        max_sessions=args.max_sessions,
        max_bytes=args.max_bytes,
        mode=args.mode,
        config=config,
        auto_jobs=auto_jobs,
    )
    server = CheckingServer(
        registry,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        max_connections=args.max_connections,
        default_deadline=args.deadline,
        state_file=args.state_file,
        autosave_interval=args.autosave_interval,
    )

    return _run_transports(
        server, args.host, args.port, args.http, args.metrics_port
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.service.fleet import FleetRouter, spawn_backends

    backends = [
        spec.strip() for spec in (args.backends or "").split(",") if spec.strip()
    ]
    processes: list = []
    try:
        if args.spawn:
            extra: list[str] = []
            if args.jobs != 1:
                extra += ["--jobs", str(args.jobs)]
            processes, spawned = spawn_backends(
                args.spawn,
                host=args.host,
                mode=args.mode,
                extra_args=tuple(extra),
            )
            backends += spawned
        router = FleetRouter(
            backends,
            max_inflight=args.max_inflight,
            max_connections=args.max_connections,
            wave_chunk=args.wave_chunk,
            # Spawned backends are the fleet's own: the router's
            # shutdown drains them too.  Externally-owned backends
            # outlive their router.
            shutdown_backends=bool(args.spawn),
        )
        return _run_transports(
            router,
            args.host,
            args.port,
            args.http,
            args.metrics_port,
            stdio_fallback=False,
        )
    finally:
        for proc in processes:
            proc.terminate()
        for proc in processes:
            try:
                proc.wait(timeout=10.0)
            except Exception:  # noqa: BLE001 - last resort for a hung backend
                proc.kill()


def _cmd_bounds(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd, args.root)
    sigma = _load_constraints(args.constraints)
    bounds = extent_bounds(dtd, sigma, args.type, probe_limit=args.probe_limit)
    if bounds is None:
        print("the specification is inconsistent: no documents exist")
        return 1
    print(bounds)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML integrity constraints in the presence of DTDs "
        "(Fan & Libkin, PODS 2001).",
    )
    parser.add_argument(
        "--root", default=None, help="root element type (default: first declared)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_session_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--session",
            action="store_true",
            dest="session_info",
            help="print the spec's session fingerprint and cross-request "
            "cache counters (the command resolves through the same "
            "session API `repro serve` runs on)",
        )

    def add_via_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--via",
            default=None,
            metavar="HOST:PORT",
            help="route the command through a running `repro serve` or "
            "`repro fleet` line endpoint instead of solving in-process "
            "(the answer bytes come from the service's session cache)",
        )

    def add_solver_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--backend",
            choices=["scipy", "exact"],
            default="scipy",
            help="ILP backend: HiGHS floats with exact re-verification "
            "(default) or the certified rational simplex",
        )
        command.add_argument(
            "--cold",
            action="store_true",
            help="disable warm starts in the certified simplex (cold "
            "per-node refactorization; the differential-testing ablation)",
        )
        command.add_argument(
            "--jobs",
            type=_jobs_value,
            default=1,
            metavar="N",
            help="worker processes for the parallel executor (independent "
            "support branches and diagnostics probes fan across N "
            "fork-based workers; verdicts are identical to --jobs 1), "
            "or 'auto' to grow/shrink the level from observed solve "
            "and wave latency (never beyond the effective CPU count)",
        )

    p_check = sub.add_parser("check", help="consistency of (DTD, constraints)")
    p_check.add_argument("dtd")
    p_check.add_argument("constraints", nargs="?", default=None)
    p_check.add_argument("--witness", help="write a satisfying document here")
    p_check.add_argument(
        "--stats",
        "--profile",
        action="store_true",
        dest="stats",
        help="print solver statistics (dfs_nodes, leaves, cuts, lp_prunes, "
        "assembly/cut-pool/propagation and exact node/pivot counters)",
    )
    add_solver_flags(p_check)
    add_session_flag(p_check)
    add_via_flag(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_validate = sub.add_parser("validate", help="validate a document")
    p_validate.add_argument("dtd")
    p_validate.add_argument("document")
    p_validate.add_argument("constraints", nargs="?", default=None)
    add_via_flag(p_validate)
    p_validate.set_defaults(func=_cmd_validate)

    p_implies = sub.add_parser("implies", help="constraint implication")
    p_implies.add_argument("dtd")
    p_implies.add_argument("constraints")
    p_implies.add_argument("phi", help="the constraint to test, in text syntax")
    p_implies.add_argument(
        "--counterexample", help="write a refuting document here"
    )
    p_implies.add_argument(
        "--stats",
        "--profile",
        action="store_true",
        dest="stats",
        help="print solver statistics for the underlying consistency solve",
    )
    add_solver_flags(p_implies)
    add_session_flag(p_implies)
    add_via_flag(p_implies)
    p_implies.set_defaults(func=_cmd_implies)

    p_diagnose = sub.add_parser("diagnose", help="specification health report")
    p_diagnose.add_argument("dtd")
    p_diagnose.add_argument("constraints")
    p_diagnose.add_argument(
        "--stats",
        "--profile",
        action="store_true",
        dest="stats",
        help="print diagnostics work counters (assemblies, subset probes, "
        "patched re-solves, cut-pool and exact node/pivot counters)",
    )
    p_diagnose.add_argument(
        "--rebuild",
        action="store_true",
        help="force the re-encode-per-subset reference path instead of "
        "toggling rows on one assembled system (the differential ablation)",
    )
    p_diagnose.add_argument(
        "--repair",
        action="store_true",
        help="when the specification is inconsistent, additionally "
        "propose a minimum-weight repair (constraint deletions and DTD "
        "edits) — the `repro fix` engine riding on the health report",
    )
    add_solver_flags(p_diagnose)
    add_session_flag(p_diagnose)
    add_via_flag(p_diagnose)
    p_diagnose.set_defaults(func=_cmd_diagnose)

    p_fix = sub.add_parser(
        "fix",
        help="minimum-weight repair of an inconsistent specification "
        "(constraint deletions, cardinality loosenings, attribute drops)",
    )
    p_fix.add_argument("dtd")
    p_fix.add_argument("constraints", nargs="?", default=None)
    p_fix.add_argument(
        "--output",
        metavar="FILE",
        help="write the repaired DTD here",
    )
    p_fix.add_argument(
        "--constraints-out",
        metavar="FILE",
        help="write the repaired constraint set here",
    )
    p_fix.add_argument(
        "--stats",
        "--profile",
        action="store_true",
        dest="stats",
        help="print repair work counters (probes, cores, hitting sets, "
        "assemblies, verification checks)",
    )
    p_fix.add_argument(
        "--rebuild",
        action="store_true",
        help="force the re-encode-per-candidate reference engine instead "
        "of toggle probes on one assembled system (the differential "
        "ablation)",
    )
    add_solver_flags(p_fix)
    add_session_flag(p_fix)
    add_via_flag(p_fix)
    p_fix.set_defaults(func=_cmd_fix)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived checking service (line-delimited JSON; "
        "stdio by default, TCP with --port)",
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (default: 127.0.0.1; the protocol is a "
        "localhost trust model)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="serve on a TCP port instead of stdio (0 binds an "
        "ephemeral port; the bound address is announced on stdout)",
    )
    p_serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="N",
        help="additionally serve HTTP/JSON on this port: POST /v1/{op} "
        "answers the line protocol's exact response bytes (429 + "
        "Retry-After when shed, 504 on budget_exceeded), GET /metrics "
        "serves the Prometheus text exposition (0 binds ephemerally)",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="serve GET /metrics alone on a separate port (a scrape-only "
        "listener outside the serving connection cap)",
    )
    p_serve.add_argument(
        "--max-sessions",
        type=int,
        default=32,
        metavar="N",
        help="resident session cap; least-recently-used sessions are "
        "evicted beyond it (default: 32)",
    )
    p_serve.add_argument(
        "--max-bytes",
        type=int,
        default=256 * 1024 * 1024,
        metavar="B",
        help="approximate byte budget across resident sessions "
        "(default: 256 MiB)",
    )
    p_serve.add_argument(
        "--mode",
        choices=["replay", "warm"],
        default="replay",
        help="session reuse mode: 'replay' answers repeats from the "
        "response cache with byte-identical results (default); 'warm' "
        "additionally keeps per-query solver workspaces and carries "
        "the connectivity-cut pool across requests (same verdicts, "
        "warm work counters)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        metavar="N",
        help="global admission cap: requests admitted but not yet "
        "answered; beyond it requests shed with a structured "
        "'overloaded' error and a retry_after hint (default: 256)",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        metavar="N",
        help="per-session pending-queue bound; over-limit submits shed "
        "instead of queueing without bound (default: 128)",
    )
    p_serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        metavar="N",
        help="concurrent TCP connection cap; over-limit connects get "
        "one structured shed response and are closed (default: 64)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline; expired work answers "
        "'budget_exceeded' via cooperative cancellation instead of "
        "running on (requests may override with their own 'deadline' "
        "field; default: unbounded)",
    )
    p_serve.add_argument(
        "--state-file",
        default=None,
        metavar="PATH",
        help="crash-safe session snapshot: restored on start, written "
        "atomically on shutdown; a corrupt or version-skewed file is a "
        "cold start, never an error (default: no persistence)",
    )
    p_serve.add_argument(
        "--autosave-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="additionally snapshot every N seconds while serving "
        "(requires --state-file; default: only at shutdown)",
    )
    add_solver_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="shard router over N `repro serve` backends (same line and "
        "HTTP protocols; sessions consistent-hashed by spec fingerprint)",
    )
    p_fleet.add_argument(
        "--backends",
        default=None,
        metavar="HOST:PORT,...",
        help="comma-separated specs of already-running `repro serve "
        "--port` backends to shard across",
    )
    p_fleet.add_argument(
        "--spawn",
        type=int,
        default=None,
        metavar="N",
        help="additionally spawn N local backends on ephemeral ports; "
        "the router owns them (its shutdown drains them too)",
    )
    p_fleet.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (default: 127.0.0.1)",
    )
    p_fleet.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="line-protocol port for the router (default: 0 = ephemeral; "
        "the bound address is announced on stdout)",
    )
    p_fleet.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="N",
        help="additionally serve HTTP/JSON on this port (POST /v1/{op}, "
        "GET /metrics; same surface as `repro serve --http`)",
    )
    p_fleet.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="serve GET /metrics alone on a separate port",
    )
    p_fleet.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        metavar="N",
        help="router admission cap; beyond it requests shed with the "
        "same structured 'overloaded' answer as a single backend "
        "(default: 256)",
    )
    p_fleet.add_argument(
        "--max-connections",
        type=int,
        default=64,
        metavar="N",
        help="concurrent client connection cap at the router "
        "(default: 64)",
    )
    p_fleet.add_argument(
        "--wave-chunk",
        type=int,
        default=4,
        metavar="N",
        help="phis per chunk when fanning an implies_all batch across "
        "the fleet in waves, with cut pools merged over the wire at "
        "wave boundaries (default: 4)",
    )
    p_fleet.add_argument(
        "--mode",
        choices=["replay", "warm"],
        default="replay",
        help="session reuse mode passed to --spawn backends "
        "(default: replay)",
    )
    p_fleet.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        metavar="N",
        help="worker processes per --spawn backend (or 'auto')",
    )
    p_fleet.set_defaults(func=_cmd_fleet)

    p_bounds = sub.add_parser("bounds", help="feasible |ext(tau)| range")
    p_bounds.add_argument("dtd")
    p_bounds.add_argument("constraints", nargs="?", default=None)
    p_bounds.add_argument("--type", required=True, help="element type tau")
    p_bounds.add_argument("--probe-limit", type=int, default=4096)
    p_bounds.set_defaults(func=_cmd_bounds)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
