"""Configuration for the decision procedures."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckerConfig:
    """Tuning knobs shared by the checkers.

    Attributes
    ----------
    backend:
        ``"scipy"`` (HiGHS, default) or ``"exact"`` (rational simplex;
        certified, slower). The scipy backend already falls back to the
        exact one when float rounding is in doubt.
    want_witness:
        Synthesize an actual witness tree for consistent instances (and
        counterexample trees for refuted implications). Disable for pure
        yes/no benchmarking.
    verify_witness:
        Re-verify every synthesized witness against the DTD and the
        constraints; a failure raises :class:`SolverError` (it would be an
        internal bug, never a wrong answer).
    max_setrep_attrs:
        Cap on attribute pairs in the set-representation block (its size
        is ``2^n - 1``; the problem is NP-complete).
    max_support_nodes:
        Cap on support-search nodes before giving up with
        :class:`ComplexityLimitError`.
    lp_prune:
        Prune support branches whose LP relaxation is definitely
        infeasible (sound; large speedup on inconsistent instances).
    incremental:
        Use the assemble-once/bound-patch solver core (shared connectivity
        cut pool, persistent solver state). ``False`` selects the
        from-scratch reference path — one matrix rebuild per search node —
        kept for differential testing and ablation.
    exact_warm:
        Warm-start the certified rational simplex: branch-and-bound
        children reuse their parent's factorized basis via dual-simplex
        bound patches, and consecutive leaf solves share one persistent
        basis. ``False`` refactorizes cold at every node — the reference
        path the differential fuzz harness checks against.
    jobs:
        Worker processes for the parallel executor (DESIGN.md section 7).
        With ``jobs > 1``, batch checkers (:func:`repro.checkers.
        implication.implies_all`, the diagnostics audit) fan independent
        queries across a fork-based worker pool, and a single consistency
        solve fans independent support branches across per-worker
        workspace clones with a mergeable cut pool.  Completed verdicts
        are always identical to ``jobs=1``; only wall-clock and the
        work-schedule counters change (``max_support_nodes`` bounds each
        worker's subtree individually, so near the budget a parallel run
        may finish a search the sequential run aborts).  ``1`` (the
        default) is fully sequential, and platforms without ``fork``
        degrade to it silently.
    """

    backend: str = "scipy"
    want_witness: bool = True
    verify_witness: bool = True
    max_setrep_attrs: int = 12
    max_support_nodes: int = 20000
    lp_prune: bool = True
    incremental: bool = True
    exact_warm: bool = True
    jobs: int = 1


#: Default configuration used when callers pass ``None``.
DEFAULT_CONFIG = CheckerConfig()
