"""The primary-key restriction (Section 4.2, Corollaries 4.8 and 4.10).

Relational practice allows at most one (primary) key per relation; the XML
analogue allows at most one key per element type, counting keys stated
directly and keys required by foreign keys. The paper shows the restriction
does **not** lower the complexity: consistency stays NP-complete and
implication coNP-complete. These wrappers validate the restriction and
delegate to the general procedures, so benchmarks can measure the
(non-)difference directly.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.ast import Constraint
from repro.constraints.classes import is_primary_key_set
from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.checkers.results import ConsistencyResult, ImplicationResult
from repro.dtd.model import DTD
from repro.errors import InvalidConstraintError


def _require_primary(constraints: list[Constraint]) -> None:
    if not is_primary_key_set(constraints):
        raise InvalidConstraintError(
            "constraint set violates the primary-key restriction "
            "(more than one key for some element type)"
        )


def check_consistency_primary(
    dtd: DTD,
    constraints: Iterable[Constraint],
    config: CheckerConfig | None = None,
) -> ConsistencyResult:
    """Consistency under the primary-key restriction (Corollary 4.8)."""
    constraints = list(constraints)
    _require_primary(constraints)
    result = check_consistency(dtd, constraints, config)
    result.method = f"primary-key restriction; {result.method}"
    return result


def implies_primary(
    dtd: DTD,
    sigma: Iterable[Constraint],
    phi: Constraint,
    config: CheckerConfig | None = None,
) -> ImplicationResult:
    """Implication under the primary-key restriction (Theorem 4.10)."""
    sigma = list(sigma)
    _require_primary([*sigma, phi])
    result = implies(dtd, sigma, phi, config)
    result.method = f"primary-key restriction; {result.method}"
    return result
