"""Linear-time procedures for the keys-only class ``C_K`` (Section 3.3).

* Consistency (Theorem 3.5(2)): any set of keys — multi-attribute included
  — is satisfiable over ``D`` iff ``D`` has a valid tree at all: take any
  valid tree and make all attribute values distinct.
* Implication (Theorem 3.5(3), Lemmas 3.6–3.7): ``(D, Sigma) |- tau[X] ->
  tau`` iff Sigma *subsumes* the key (contains ``tau[Y] -> tau`` with
  ``Y ⊆ X``) or no valid tree has two ``tau`` elements.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.ast import Key
from repro.dtd.analysis import can_have_two, has_valid_tree
from repro.dtd.model import DTD


def subsumes(sigma: Iterable[Key], phi: Key) -> bool:
    """Does some key in Sigma make ``phi`` a superkey?

    ``tau[Y] -> tau`` subsumes ``tau[X] -> tau`` when ``Y ⊆ X``.

    >>> subsumes([Key("a", ("x",))], Key("a", ("x", "y")))
    True
    >>> subsumes([Key("a", ("x", "y"))], Key("a", ("x",)))
    False
    """
    target = set(phi.attrs)
    return any(
        key.element_type == phi.element_type and set(key.attrs) <= target
        for key in sigma
    )


def keys_only_consistent(dtd: DTD, sigma: Iterable[Key]) -> bool:
    """Theorem 3.5(2): keys never conflict with a satisfiable DTD."""
    del sigma  # keys are always jointly satisfiable when a tree exists
    return has_valid_tree(dtd)


def implies_key_keys_only(dtd: DTD, sigma: Iterable[Key], phi: Key) -> bool:
    """Theorem 3.5(3) via Lemma 3.7.

    A counterexample tree exists iff Sigma does not subsume ``phi`` and
    some valid tree contains two ``phi.element_type`` elements; implication
    is the complement. Runs in time linear in ``|D|`` and ``|Sigma| +
    |phi|``.
    """
    if subsumes(sigma, phi):
        return True
    return not can_have_two(dtd, phi.element_type)
