"""Result types returned by the decision procedures."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmltree.model import XMLTree


@dataclass
class ConsistencyResult:
    """Answer to "is there a tree with ``T |= D`` and ``T |= Sigma``?".

    ``witness`` (when requested and consistent) is an actual XML tree that
    has been re-verified against both the DTD and the constraints.
    ``method`` names the procedure that produced the answer; ``stats``
    carries solver counters for benchmarks.
    """

    consistent: bool
    witness: XMLTree | None = None
    method: str = ""
    message: str = ""
    stats: dict[str, int | bool] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.consistent


@dataclass
class ImplicationResult:
    """Answer to "does ``(D, Sigma) |- phi`` hold?".

    When the implication is refuted and witnesses were requested,
    ``counterexample`` is a tree with ``T |= D``, ``T |= Sigma`` and
    ``T |= not phi``.
    """

    implied: bool
    counterexample: XMLTree | None = None
    method: str = ""
    message: str = ""
    stats: dict[str, int | bool] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.implied
