"""Consistency checking: the XML SPECIFICATION CONSISTENCY problem.

Dispatch (Sections 3–5 of the paper):

* empty Sigma / keys only (any arity): linear time (Theorem 3.5);
* unary keys, foreign keys, inclusion constraints, negated keys, negated
  inclusion constraints: the linear-integer encoding ``Psi(D, Sigma)``
  solved with support branching and connectivity cuts (Theorems 4.1, 4.7,
  5.1; NP-complete, so exponential worst case with good typical behaviour);
* multi-attribute keys **and** foreign keys: undecidable (Theorem 3.1) —
  :class:`UndecidableProblemError` points callers to
  :func:`repro.checkers.bounded.bounded_consistency`.

Every "consistent" answer from the unary path is backed by an actual
witness tree, synthesized and re-verified against both the DTD and the
constraints, so encoder or solver bugs surface as hard errors rather than
wrong answers.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.ast import Constraint
from repro.constraints.classes import (
    ConstraintClass,
    classify,
    validate_constraints,
)
from repro.constraints.satisfaction import violations
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.checkers.results import ConsistencyResult
from repro.dtd.analysis import has_valid_tree
from repro.dtd.model import DTD
from repro.encoding.combined import build_encoding
from repro.errors import SolverError, UndecidableProblemError
from repro.ilp.condsys import solve_conditional_system
from repro.witness.synthesize import synthesize_witness
from repro.witness.values import make_all_values_distinct
from repro.xmltree.validate import conforms


def dtd_has_valid_tree(dtd: DTD) -> bool:
    """Theorem 3.5(1): is there any finite tree with ``T |= D``?

    Linear time (productivity fixpoint on the associated grammar).
    """
    return has_valid_tree(dtd)


def _verify(witness, dtd: DTD, constraints: list[Constraint]) -> None:
    report = conforms(witness, dtd)
    if not report:
        raise SolverError(
            "internal error: synthesized witness does not conform to the DTD: "
            + "; ".join(report.errors[:3])
        )
    violated = violations(witness, constraints)
    if violated:
        raise SolverError(
            "internal error: synthesized witness violates constraints: "
            + "; ".join(str(phi) for phi in violated[:3])
        )


def _keys_only(
    dtd: DTD, constraints: list[Constraint], config: CheckerConfig
) -> ConsistencyResult:
    """Theorem 3.5(2): satisfiable iff the DTD has any valid tree."""
    if not has_valid_tree(dtd):
        return ConsistencyResult(
            False,
            method="keys-only (Thm 3.5)",
            message="the DTD admits no finite tree",
        )
    if not config.want_witness:
        return ConsistencyResult(True, method="keys-only (Thm 3.5)")
    # Build a minimal valid tree via the encoding with empty Sigma, then
    # make all values distinct so every key holds.
    encoding = build_encoding(dtd, [], max_setrep_attrs=config.max_setrep_attrs)
    result, stats = solve_conditional_system(
        encoding.condsys,
        backend=config.backend,
        max_support_nodes=config.max_support_nodes,
        lp_prune=config.lp_prune,
        incremental=config.incremental,
        exact_warm=config.exact_warm,
    )
    if not result.feasible:  # pragma: no cover - has_valid_tree said yes
        raise SolverError("encoding disagrees with the emptiness check")
    witness = synthesize_witness(encoding, result.values)
    make_all_values_distinct(witness, dtd)
    if config.verify_witness:
        _verify(witness, dtd, constraints)
    return ConsistencyResult(
        True,
        witness=witness,
        method="keys-only (Thm 3.5)",
        stats={"dfs_nodes": stats.dfs_nodes, "leaves": stats.leaves_solved},
    )


def check_consistency(
    dtd: DTD,
    constraints: Iterable[Constraint] = (),
    config: CheckerConfig | None = None,
) -> ConsistencyResult:
    """Is there a finite XML tree with ``T |= D`` and ``T |= Sigma``?

    >>> from repro.dtd.model import DTD
    >>> from repro.constraints.parser import parse_constraints
    >>> d = DTD.build(
    ...     "teachers",
    ...     {"teachers": "(teacher+)", "teacher": "(teach, research)",
    ...      "teach": "(subject, subject)", "subject": "(#PCDATA)",
    ...      "research": "(#PCDATA)"},
    ...     attrs={"teacher": ["name"], "subject": ["taught_by"]},
    ... )
    >>> sigma = parse_constraints('''
    ...     teacher.name -> teacher
    ...     subject.taught_by -> subject
    ...     subject.taught_by => teacher.name
    ... ''')
    >>> check_consistency(d, sigma).consistent   # Section 1, (D1, Sigma1)
    False
    """
    config = config or DEFAULT_CONFIG
    constraints = list(constraints)
    validate_constraints(dtd, constraints)
    cls = classify(constraints)

    if cls in (ConstraintClass.EMPTY, ConstraintClass.K):
        return _keys_only(dtd, constraints, config)
    if cls == ConstraintClass.K_FK:
        raise UndecidableProblemError(
            "consistency for multi-attribute keys and foreign keys is "
            "undecidable (Theorem 3.1); use "
            "repro.checkers.bounded.bounded_consistency for a bounded search"
        )

    encoding = build_encoding(
        dtd, constraints, max_setrep_attrs=config.max_setrep_attrs
    )
    return check_consistency_encoded(encoding, config)


def check_consistency_encoded(
    encoding,
    config: CheckerConfig | None = None,
    workspace=None,
) -> ConsistencyResult:
    """The ILP branch of :func:`check_consistency` on a prebuilt encoding.

    The session-layer hot path (:mod:`repro.service`): callers that hold
    a cached :class:`~repro.encoding.combined.ConsistencyEncoding` — and
    optionally a warm :class:`~repro.ilp.condsys.SolveWorkspace` over its
    base system — skip validation, classification and re-encoding and go
    straight to the solve.  With ``workspace=None`` this is *exactly* the
    code path :func:`check_consistency` takes after building the
    encoding, so results and stats are identical to the one-shot call;
    with a warm workspace, assembly is skipped and pooled cuts carry
    over, so the verdict (and any witness's validity) is unchanged but
    the work counters reflect the warm state.

    The caller is responsible for having validated ``encoding``'s
    constraints against its DTD (``build_encoding`` already does).
    """
    config = config or DEFAULT_CONFIG
    constraints = encoding.constraints
    cls = classify(constraints)
    result, stats = solve_conditional_system(
        encoding.condsys,
        backend=config.backend,
        max_support_nodes=config.max_support_nodes,
        lp_prune=config.lp_prune,
        incremental=config.incremental,
        exact_warm=config.exact_warm,
        workspace=workspace,
        jobs=config.jobs,
    )
    stat_map: dict[str, int | bool] = {
        "dfs_nodes": stats.dfs_nodes,
        "leaves": stats.leaves_solved,
        "cuts": stats.cuts_added,
        "lp_prunes": stats.lp_prunes,
        "shortcut": stats.shortcut_hit,
        "assemblies": stats.assemblies,
        "bound_patch_solves": stats.bound_patch_solves,
        "cut_pool_hits": stats.cut_pool_hits,
        "propagation_visits": stats.propagation_visits,
        "lp_probe_decided": stats.lp_probe_decided,
        "exact_nodes": stats.exact_nodes,
        "exact_pivots": stats.exact_pivots,
        "exact_warm_solves": stats.exact_warm_solves,
        "workers_spawned": stats.workers_spawned,
        "parallel_waves": stats.parallel_waves,
        "cuts_merged": stats.cuts_merged,
        "cut_merge_duplicates": stats.cut_merge_duplicates,
        "workers_crashed": stats.workers_crashed,
        "workers_respawned": stats.workers_respawned,
        "tasks_requeued": stats.tasks_requeued,
        "parallel_degraded": stats.parallel_degraded,
    }
    method = f"ilp-encoding ({cls.value})"
    if not result.feasible:
        return ConsistencyResult(
            False, method=method, message=result.message, stats=stat_map
        )
    if not config.want_witness:
        return ConsistencyResult(True, method=method, stats=stat_map)
    witness = synthesize_witness(encoding, result.values)
    if config.verify_witness:
        _verify(witness, encoding.dtd, constraints)
    return ConsistencyResult(
        True, witness=witness, method=method, stats=stat_map
    )
