"""Bounded brute-force search: the honest answer to undecidability.

Consistency for multi-attribute keys and foreign keys is undecidable
(Theorem 3.1), so no terminating exact procedure exists. What *is*
computable: search all trees up to a node budget, over all canonical
attribute-value assignments, for a witness. This is a complete
semi-decision procedure (consistent specifications with small witnesses
are found; "no witness within the bound" proves nothing) and doubles as
the brute-force oracle the unary checkers are cross-validated against in
the test suite.

Canonical value assignments: values are drawn as ``b0, b1, ...`` with the
restriction that ``b(k+1)`` may appear only after ``bk`` — constraint
satisfaction is invariant under value renaming, so enumerating set
partitions of the attribute slots is exhaustive.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.constraints.ast import Constraint
from repro.constraints.classes import validate_constraints
from repro.constraints.satisfaction import satisfies_all
from repro.dtd.model import DTD
from repro.regex.enumerate import words_up_to
from repro.regex.ast import TEXT_SYMBOL
from repro.xmltree.model import Element, TextNode, XMLTree


def _node_count(node: Element | TextNode) -> int:
    if isinstance(node, TextNode):
        return 1
    return 1 + sum(_node_count(child) for child in node.children)


def _gen_children(
    dtd: DTD, symbols: list[str], budget: int
) -> Iterator[list[Element | TextNode]]:
    """All child lists realizing ``symbols`` within ``budget`` total nodes."""
    if not symbols:
        yield []
        return
    head, rest = symbols[0], symbols[1:]
    reserve = len(rest)  # each remaining child needs at least one node
    if head == TEXT_SYMBOL:
        if budget - 1 >= reserve:
            for tail in _gen_children(dtd, rest, budget - 1):
                yield [TextNode(""), *tail]
        return
    for subtree in _gen_element(dtd, head, budget - reserve):
        used = _node_count(subtree)
        for tail in _gen_children(dtd, rest, budget - used):
            yield [subtree, *tail]


def _gen_element(dtd: DTD, tau: str, budget: int) -> Iterator[Element]:
    """All trees rooted at a ``tau`` element with at most ``budget`` nodes.

    Child subtrees are regenerated per yield, so no node sharing occurs.
    Required attributes are filled with placeholder values (overwritten by
    the value search), so every yielded shape fully conforms to the DTD.
    """
    if budget < 1:
        return
    placeholder = {attr: "" for attr in dtd.attrs(tau)}
    for word in words_up_to(dtd.content[tau], budget - 1):
        for children in _gen_children(dtd, list(word), budget - 1):
            yield Element(tau, children=children, attrs=dict(placeholder))


def enumerate_trees(dtd: DTD, max_nodes: int) -> Iterator[XMLTree]:
    """All DTD-conformant tree shapes with at most ``max_nodes`` nodes.

    Attributes are *not* assigned (that is the value search's job); the
    shapes themselves conform to the DTD's content models.
    """
    for root in _gen_element(dtd, dtd.root, max_nodes):
        yield XMLTree(root)


def _search_values(
    tree: XMLTree,
    dtd: DTD,
    constraints: list[Constraint],
    budget: list[int],
) -> bool:
    """Backtrack over canonical value assignments; True when one satisfies."""
    slots = [
        (node, attr)
        for node in tree.elements()
        for attr in sorted(dtd.attrs(node.label))
    ]

    def backtrack(index: int, used: int) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        if index == len(slots):
            return satisfies_all(tree, constraints)
        node, attr = slots[index]
        for value in range(used + 1):  # old values plus one fresh
            node.attrs[attr] = f"b{value}"
            if backtrack(index + 1, max(used, value + 1)):
                return True
        del node.attrs[attr]
        return False

    return backtrack(0, 0)


def bounded_consistency(
    dtd: DTD,
    constraints: Iterable[Constraint],
    max_nodes: int = 8,
    max_steps: int = 200_000,
) -> XMLTree | None:
    """Search for a witness tree with at most ``max_nodes`` nodes.

    Returns a verified witness or ``None`` — and ``None`` means only "no
    witness within the bound", never "inconsistent". Handles *all*
    constraint classes including multi-attribute keys and foreign keys.

    >>> from repro.constraints.parser import parse_constraints
    >>> d = DTD.build("db", {"db": "(a, b)", "a": "EMPTY", "b": "EMPTY"},
    ...               attrs={"a": ["x"], "b": ["y"]})
    >>> tree = bounded_consistency(d, parse_constraints("a.x <= b.y"))
    >>> tree is not None
    True
    """
    constraints = list(constraints)
    validate_constraints(dtd, constraints)
    budget = [max_steps]
    for tree in enumerate_trees(dtd, max_nodes):
        if budget[0] <= 0:
            return None
        if _search_values(tree, dtd, constraints, budget):
            return tree
    return None
