"""Decision procedures: the paper's results as a public API.

========================  ======================================  ==========
problem                   procedure                               paper ref
========================  ======================================  ==========
DTD has a valid tree      :func:`dtd_has_valid_tree` (linear)     Thm 3.5(1)
consistency, keys only    :func:`check_consistency` (linear)      Thm 3.5(2)
implication, keys only    :func:`implies` (linear)                Thm 3.5(3)
consistency, unary        :func:`check_consistency` (NP)          Thm 4.1/4.7
  + negated keys          :func:`check_consistency` (NP)          Cor 4.9
  + negated inclusions    :func:`check_consistency` (NP)          Thm 5.1
implication, unary        :func:`implies` (coNP)                  Thm 4.10/5.4
primary-key restriction   :func:`check_consistency_primary`       Cor 4.8
multi-attribute K,FK      **undecidable**; bounded semi-decision  Thm 3.1
                          :func:`bounded_consistency`
========================  ======================================  ==========
"""

from repro.checkers.bounded import bounded_consistency
from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency, dtd_has_valid_tree
from repro.checkers.implication import implies, implies_all
from repro.checkers.keys_only import (
    implies_key_keys_only,
    keys_only_consistent,
    subsumes,
)
from repro.checkers.primary import (
    check_consistency_primary,
    implies_primary,
)
from repro.checkers.results import ConsistencyResult, ImplicationResult

__all__ = [
    "CheckerConfig",
    "ConsistencyResult",
    "ImplicationResult",
    "check_consistency",
    "dtd_has_valid_tree",
    "implies",
    "implies_all",
    "keys_only_consistent",
    "implies_key_keys_only",
    "subsumes",
    "check_consistency_primary",
    "implies_primary",
    "bounded_consistency",
]
