"""Implication checking: ``(D, Sigma) |- phi`` (Sections 3.3, 4.2, 5).

* keys only (any arity): linear time via subsumption and ``can_have_two``
  (Theorem 3.5(3)); refutations come with explicit counterexample trees
  built by Lemma 3.7's construction;
* unary constraints: coNP via consistency of ``Sigma ∪ {not phi}``
  (Theorems 4.10 and 5.4) — a negated key lands in C^unary_K¬,IC, a
  negated inclusion in C^unary_K¬,IC¬; foreign keys are conjunctions, so
  ``phi`` is implied iff both components are;
* multi-attribute keys+FKs: undecidable (Corollary 3.4) —
  :class:`UndecidableProblemError`.

Batch queries should go through :func:`implies_all`, which validates the
specification once and shares the per-DTD ``Psi_DN`` encoding block (see
:mod:`repro.encoding.combined`) across the whole batch — the shape of
every redundancy audit and implication benchmark, which otherwise re-derive
an identical encoding per query.  The queries of a batch are independent
of each other, so ``CheckerConfig(jobs=N)`` additionally fans them across
a fork-based worker pool (DESIGN.md section 7): each worker validates
nothing (the parent already did), holds its own ``Psi_DN`` cache and
solver state, and runs the ordinary sequential per-query path — results
and per-query statistics are therefore *identical* to ``jobs=1``, in the
original query order.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import replace

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.constraints.classes import validate_constraints
from repro.constraints.satisfaction import satisfies, satisfies_all
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.checkers.keys_only import implies_key_keys_only, subsumes
from repro.checkers.results import ImplicationResult
from repro.dtd.model import DTD
from repro.encoding.combined import build_encoding
from repro.encoding.dtd_system import ext_var
from repro.errors import SolverError, UndecidableProblemError, WorkerCrashError
from repro.ilp.condsys import WorkerPool, fanout_map, solve_conditional_system
from repro.witness.synthesize import synthesize_witness
from repro.witness.values import make_all_values_distinct
from repro.xmltree.validate import conforms


def negate_constraint(phi: Constraint) -> Constraint:
    """The constraint asserting ``not phi`` (unary forms only).

    Public because the session layer (:mod:`repro.service`) keys its warm
    per-query solver state by the negated constraint this produces.
    """
    if isinstance(phi, Key):
        return NegKey(phi.element_type, phi.attrs[0])
    if isinstance(phi, InclusionConstraint):
        return NegInclusion(
            phi.child_type, phi.child_attrs[0], phi.parent_type, phi.parent_attrs[0]
        )
    if isinstance(phi, NegKey):
        return phi.key
    if isinstance(phi, NegInclusion):
        return phi.inclusion
    raise UndecidableProblemError(  # pragma: no cover - callers dispatch first
        f"cannot negate {phi!r} within the decidable classes"
    )


#: Backwards-compatible private alias (pre-service name).
_negate = negate_constraint


def _keys_only_counterexample(
    dtd: DTD, sigma: list[Key], phi: Key, config: CheckerConfig
):
    """Lemma 3.7's construction: a tree with two ``tau`` elements agreeing
    on ``phi``'s attributes and distinct everywhere else."""
    encoding = build_encoding(dtd, [], max_setrep_attrs=config.max_setrep_attrs)
    # Demand at least two tau elements, then solve as usual.
    encoding.condsys.base.add_ge(
        {ext_var(phi.element_type): 1}, 2, label="two-witnesses"
    )
    result, _stats = solve_conditional_system(
        encoding.condsys,
        backend=config.backend,
        max_support_nodes=config.max_support_nodes,
        lp_prune=config.lp_prune,
        incremental=config.incremental,
        exact_warm=config.exact_warm,
    )
    if not result.feasible:  # pragma: no cover - can_have_two said yes
        raise SolverError("encoding disagrees with can_have_two")
    tree = synthesize_witness(encoding, result.values)
    make_all_values_distinct(tree, dtd)
    first, second = tree.ext(phi.element_type)[:2]
    for attr in phi.attrs:
        second.attrs[attr] = first.attrs[attr]
    if config.verify_witness:
        report = conforms(tree, dtd)
        if not report or not satisfies_all(tree, sigma) or satisfies(tree, phi):
            raise SolverError("internal error: bad keys-only counterexample")
    return tree


def implies(
    dtd: DTD,
    sigma: Iterable[Constraint],
    phi: Constraint,
    config: CheckerConfig | None = None,
) -> ImplicationResult:
    """Does every tree with ``T |= D`` and ``T |= Sigma`` satisfy ``phi``?

    >>> from repro.dtd.model import DTD
    >>> from repro.constraints.parser import parse_constraint
    >>> d = DTD.build("db", {"db": "(item)", "item": "EMPTY"},
    ...               attrs={"item": ["id"]})
    >>> implies(d, [], parse_constraint("item.id -> item")).implied
    True
    """
    config = config or DEFAULT_CONFIG
    sigma = list(sigma)
    validate_constraints(dtd, [*sigma, phi])
    return implies_validated(dtd, sigma, phi, config)


def implies_validated(
    dtd: DTD,
    sigma: list[Constraint],
    phi: Constraint,
    config: CheckerConfig,
    consistency=None,
) -> ImplicationResult:
    """:func:`implies` after ``validate_constraints`` has already run.

    ``consistency`` swaps the negation-consistency probe's solver: it is
    called as ``consistency(dtd, constraints, config)`` in place of
    :func:`check_consistency` and must return a
    :class:`~repro.checkers.results.ConsistencyResult`.  The session
    layer passes a closure that serves the probe from cached encodings
    and warm workspaces; the default (``None``) is the ordinary one-shot
    checker, so every other caller is unchanged.
    """

    # Keys-only fragment: linear time (Theorem 3.5(3)).
    if isinstance(phi, Key) and all(isinstance(psi, Key) for psi in sigma):
        implied = implies_key_keys_only(dtd, sigma, phi)
        method = "keys-only (Thm 3.5(3))"
        if implied:
            reason = (
                "subsumed by Sigma"
                if subsumes(sigma, phi)
                else f"no valid tree has two {phi.element_type!r} elements"
            )
            return ImplicationResult(True, method=method, message=reason)
        counterexample = None
        if config.want_witness:
            counterexample = _keys_only_counterexample(dtd, sigma, phi, config)
        return ImplicationResult(
            False, counterexample=counterexample, method=method
        )

    # Unary fragment: (D, Sigma) |- phi iff Sigma ∪ {not phi} is
    # inconsistent over D (Theorems 4.10 and 5.4).
    if isinstance(phi, ForeignKey):
        if not phi.is_unary():
            raise UndecidableProblemError(
                "implication for multi-attribute foreign keys is undecidable "
                "(Corollary 3.4)"
            )
        part = implies_validated(dtd, sigma, phi.inclusion, config, consistency)
        if not part.implied:
            return ImplicationResult(
                False,
                counterexample=part.counterexample,
                method="foreign key = inclusion AND key",
                message="inclusion component not implied",
            )
        part = implies_validated(dtd, sigma, phi.key, config, consistency)
        if not part.implied:
            return ImplicationResult(
                False,
                counterexample=part.counterexample,
                method="foreign key = inclusion AND key",
                message="key component not implied",
            )
        return ImplicationResult(True, method="foreign key = inclusion AND key")

    if not phi.is_unary() or any(not psi.is_unary() for psi in sigma):
        raise UndecidableProblemError(
            "implication for multi-attribute keys and foreign keys is "
            "undecidable (Corollary 3.4); only the keys-only and unary "
            "fragments are decidable"
        )

    negated = negate_constraint(phi)
    probe = consistency or check_consistency
    result = probe(dtd, [*sigma, negated], config)
    method = f"negation-consistency via {result.method}"
    if result.consistent:
        return ImplicationResult(
            False,
            counterexample=result.witness,
            method=method,
            stats=result.stats,
        )
    return ImplicationResult(
        True,
        method=method,
        message=f"Sigma together with {negated} is inconsistent over the DTD",
        stats=result.stats,
    )


#: Per-process state of an implication worker: the validated batch it
#: answers queries for, set once by :func:`_init_implication_worker`.
_IMPLICATION_WORKER: dict = {}


def _init_implication_worker(payload: tuple) -> None:
    """Adopt the already-validated batch; each worker owns its caches."""
    dtd, sigma, phis, config = payload
    _IMPLICATION_WORKER["dtd"] = dtd
    _IMPLICATION_WORKER["sigma"] = sigma
    _IMPLICATION_WORKER["phis"] = phis
    _IMPLICATION_WORKER["config"] = config


def _implication_task(index: int) -> ImplicationResult:
    """Answer query ``phis[index]`` with the ordinary sequential path."""
    state = _IMPLICATION_WORKER
    return implies_validated(
        state["dtd"], state["sigma"], state["phis"][index], state["config"]
    )


def implies_all(
    dtd: DTD,
    sigma: Iterable[Constraint],
    phis: Iterable[Constraint],
    config: CheckerConfig | None = None,
) -> list[ImplicationResult]:
    """Batch implication: one :class:`ImplicationResult` per ``phi``.

    Semantically identical to calling :func:`implies` in a loop, but the
    specification is validated once and every query shares the memoized
    per-DTD encoding block, so only the constraint rows (``C_Sigma`` plus
    the negated query) are re-encoded per ``phi``.

    With ``config.jobs > 1`` the queries fan across a fork-based worker
    pool; each worker runs the identical sequential per-query code (its
    own solves stay at ``jobs=1`` — no nested parallelism), so the
    returned results, their order, and every per-query stats counter
    match the sequential run exactly.

    >>> from repro.dtd.model import DTD
    >>> from repro.constraints.parser import parse_constraints
    >>> d = DTD.build("db", {"db": "(item)", "item": "EMPTY"},
    ...               attrs={"item": ["id"]})
    >>> [r.implied for r in implies_all(d, [], parse_constraints("item.id -> item"))]
    [True]
    """
    config = config or DEFAULT_CONFIG
    sigma = list(sigma)
    phis = list(phis)
    validate_constraints(dtd, [*sigma, *phis])
    if config.jobs > 1 and len(phis) > 1 and WorkerPool.available():
        worker_config = replace(config, jobs=1)
        try:
            return fanout_map(
                _implication_task,
                list(range(len(phis))),
                config.jobs,
                _init_implication_worker,
                (dtd, sigma, phis, worker_config),
            )
        except WorkerCrashError:
            # Pool lost beyond recovery: fall through to the sequential
            # loop, whose results the fan-out is pinned to anyway.
            config = replace(config, jobs=1)
    return [implies_validated(dtd, sigma, phi, config) for phi in phis]
