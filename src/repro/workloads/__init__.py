"""Workloads: the paper's worked examples and scaling instance families.

:mod:`repro.workloads.examples` packages every concrete specification the
paper discusses (D1/Sigma1, D2, D3, the Figure-1 tree) as ready-made
fixtures; :mod:`repro.workloads.generators` provides seeded random and
structured families for each Figure-5 cell, used by the test suite and the
benchmark harness.
"""

from repro.workloads.examples import (
    figure1_tree,
    recursive_dtd_d2,
    school_constraints_d3,
    school_document,
    school_dtd_d3,
    sigma1_constraints,
    teachers_dtd_d1,
)
from repro.workloads.generators import (
    chain_dtd,
    fixed_dtd_constraint_family,
    keys_only_family,
    random_dtd,
    random_unary_constraints,
    star_schema_family,
    teachers_family,
)

__all__ = [
    "teachers_dtd_d1",
    "sigma1_constraints",
    "figure1_tree",
    "recursive_dtd_d2",
    "school_dtd_d3",
    "school_constraints_d3",
    "school_document",
    "chain_dtd",
    "keys_only_family",
    "teachers_family",
    "star_schema_family",
    "fixed_dtd_constraint_family",
    "random_dtd",
    "random_unary_constraints",
]
