"""The paper's worked examples as fixtures.

* ``D1`` and ``Sigma1`` — the teachers specification of Section 1 whose
  interaction is the paper's motivating inconsistency: the DTD forces
  ``|ext(subject)| = 2|ext(teacher)| > |ext(teacher)|`` while the key and
  foreign key force ``|ext(subject)| <= |ext(teacher)|``;
* the Figure-1 tree (conforms to ``D1``, violates ``Sigma1``);
* ``D2`` — the recursive ``db -> foo, foo -> foo`` DTD with no finite tree;
* ``D3`` — the school DTD of Section 2.2 with its five multi-attribute
  constraints, plus a satisfying document.
"""

from __future__ import annotations

from repro.constraints.ast import Constraint
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.xmltree.builder import element, text
from repro.xmltree.model import XMLTree


def teachers_dtd_d1() -> DTD:
    """The DTD ``D1`` of Section 1: every teacher teaches two subjects."""
    return DTD.build(
        "teachers",
        {
            "teachers": "(teacher, teacher*)",
            "teacher": "(teach, research)",
            "teach": "(subject, subject)",
            "subject": "(#PCDATA)",
            "research": "(#PCDATA)",
        },
        attrs={"teacher": ["name"], "subject": ["taught_by"]},
    )


def sigma1_constraints() -> list[Constraint]:
    """``Sigma1``: name keys teachers; taught_by keys subjects and
    references teacher names."""
    return parse_constraints(
        """
        teacher.name -> teacher
        subject.taught_by -> subject
        subject.taught_by => teacher.name
        """
    )


def figure1_tree() -> XMLTree:
    """The Figure-1 document: conforms to ``D1``, violates ``Sigma1``
    (both subjects share taught_by = Joe, breaking the subject key)."""
    return XMLTree(
        element(
            "teachers",
            element(
                "teacher",
                element(
                    "teach",
                    element("subject", text("XML"), taught_by="Joe"),
                    element("subject", text("DB"), taught_by="Joe"),
                ),
                element("research", text("Web DB")),
                name="Joe",
            ),
        )
    )


def recursive_dtd_d2() -> DTD:
    """The DTD ``D2`` of Section 1: no finite tree conforms to it."""
    return DTD.build("db", {"db": "(foo)", "foo": "(foo)"})


def school_dtd_d3() -> DTD:
    """The school DTD ``D3`` of Section 2.2 (multi-attribute constraints)."""
    return DTD.build(
        "school",
        {
            "school": "(course*, student*, enroll*)",
            "course": "(subject)",
            "student": "(name)",
            "enroll": "EMPTY",
            "name": "(#PCDATA)",
            "subject": "(#PCDATA)",
        },
        attrs={
            "course": ["dept", "course_no"],
            "student": ["student_id"],
            "enroll": ["student_id", "dept", "course_no"],
        },
    )


def school_constraints_d3() -> list[Constraint]:
    """Constraints (1)-(5) of Section 2.2 over ``D3``."""
    return parse_constraints(
        """
        student[student_id] -> student
        course[dept,course_no] -> course
        enroll[student_id,dept,course_no] -> enroll
        enroll[student_id] => student[student_id]
        enroll[dept,course_no] => course[dept,course_no]
        """
    )


def school_document() -> XMLTree:
    """A school document satisfying all five ``D3`` constraints."""
    return XMLTree(
        element(
            "school",
            element("course", element("subject", text("Databases")),
                    dept="CS", course_no="331"),
            element("course", element("subject", text("Logic")),
                    dept="CS", course_no="245"),
            element("course", element("subject", text("Algebra")),
                    dept="MATH", course_no="245"),
            element("student", element("name", text("Ada")), student_id="s1"),
            element("student", element("name", text("Alan")), student_id="s2"),
            element("enroll", student_id="s1", dept="CS", course_no="331"),
            element("enroll", student_id="s1", dept="MATH", course_no="245"),
            element("enroll", student_id="s2", dept="CS", course_no="245"),
        )
    )
