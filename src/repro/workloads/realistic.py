"""A realistic bibliography workload (DBLP-flavoured).

The paper motivates XML constraints with data originating in databases;
bibliography servers were the canonical early XML corpora. This module
provides a medium-sized specification — publications, venues, people,
citations — with the unary key/foreign key structure such data actually
carries, a seeded document generator, and deliberately broken variants
for negative testing. Used by integration tests and benchmarks as the
"production-shaped" workload.
"""

from __future__ import annotations

import random

from repro.constraints.ast import Constraint
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.xmltree.builder import element, text
from repro.xmltree.model import XMLTree


def bibliography_dtd() -> DTD:
    """Publications with authors, venues and citations."""
    return DTD.build(
        "bibliography",
        {
            "bibliography": "(venue+, person+, article+, cite*)",
            "venue": "(vtitle)",
            "person": "EMPTY",
            "article": "(atitle, authorref+)",
            "authorref": "EMPTY",
            "cite": "EMPTY",
            "vtitle": "(#PCDATA)",
            "atitle": "(#PCDATA)",
        },
        attrs={
            "venue": ["vid"],
            "person": ["pid"],
            "article": ["key", "venue_id"],
            "authorref": ["pid"],
            "cite": ["src", "dst"],
        },
    )


def bibliography_constraints() -> list[Constraint]:
    """The key/foreign key structure of the bibliography."""
    return parse_constraints(
        """
        venue.vid -> venue              # venues are keyed
        person.pid -> person            # people are keyed
        article.key -> article          # articles are keyed
        article.venue_id => venue.vid   # every article appears at a venue
        authorref.pid => person.pid     # authorship references people
        cite.src => article.key         # citations link articles
        cite.dst => article.key
        """
    )


def bibliography_document(
    num_articles: int = 6,
    num_people: int = 4,
    num_venues: int = 2,
    num_cites: int = 5,
    seed: int = 0,
) -> XMLTree:
    """A seeded random document satisfying the bibliography constraints."""
    rng = random.Random(seed)
    venues = [
        element("venue", element("vtitle", text(f"Venue {v}")), vid=f"v{v}")
        for v in range(num_venues)
    ]
    people = [element("person", pid=f"p{p}") for p in range(num_people)]
    articles = []
    for a in range(num_articles):
        author_count = rng.randint(1, min(3, num_people))
        authors = rng.sample(range(num_people), author_count)
        articles.append(
            element(
                "article",
                element("atitle", text(f"Article {a}")),
                *(element("authorref", pid=f"p{p}") for p in authors),
                key=f"a{a}",
                venue_id=f"v{rng.randrange(num_venues)}",
            )
        )
    cites = []
    for _ in range(num_cites):
        src = rng.randrange(num_articles)
        dst = rng.randrange(num_articles)
        cites.append(element("cite", src=f"a{src}", dst=f"a{dst}"))
    return XMLTree(
        element("bibliography", *venues, *people, *articles, *cites)
    )


def broken_bibliography_document(seed: int = 0) -> XMLTree:
    """A document with two injected violations: a duplicate article key
    and a dangling citation target."""
    doc = bibliography_document(seed=seed)
    articles = doc.ext("article")
    articles[1].attrs["key"] = articles[0].attrs["key"]
    cites = doc.ext("cite")
    if cites:
        cites[0].attrs["dst"] = "a999"
    return doc


def inconsistent_bibliography() -> tuple[DTD, list[Constraint]]:
    """A bibliography spec broken the Section-1 way.

    The DTD models a *single-author* personal bibliography (exactly one
    ``person``) in which every article carries exactly two author
    references; the constraints make ``authorref.pid`` a key referencing
    people. Then ``|ext(authorref.pid)| = 2|ext(article)| >= 2`` while the
    foreign key bounds it by ``|ext(person)| = 1`` — the D1/Sigma1
    cardinality clash in a realistic costume.
    """
    dtd = DTD.build(
        "bibliography",
        {
            "bibliography": "(person, article+)",
            "person": "EMPTY",
            "article": "(authorref, authorref)",
            "authorref": "EMPTY",
        },
        attrs={
            "person": ["pid"],
            "article": ["key"],
            "authorref": ["pid"],
        },
    )
    sigma = parse_constraints(
        """
        article.key -> article
        authorref.pid -> authorref      # each reference uses a fresh pid...
        authorref.pid => person.pid     # ...pointing at a person
        """
    )
    return dtd, sigma
