"""Instance generators for tests and the Figure-5 benchmark harness.

All generators are deterministic given their arguments (random ones take
explicit seeds). Families are sized by a single scale parameter so the
benchmarks can sweep it and check the claimed complexity's *shape*.
"""

from __future__ import annotations

import random

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
)
from repro.dtd.model import DTD
from repro.regex.ast import (
    EPSILON,
    TEXT,
    Concat,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Union,
)


def wide_flat_dtd(num_types: int) -> DTD:
    """``r`` over ``num_types`` independent starred types, one attribute
    each — the flat shape under the negation, chain-implication, parallel
    and diagnostics workloads (one definition; benchmarks and differential
    tests must stay on the same family)."""
    content = {"r": "(" + ", ".join(f"t{i}*" for i in range(num_types)) + ")"}
    content.update({f"t{i}": "EMPTY" for i in range(num_types)})
    return DTD.build(
        "r", content, attrs={f"t{i}": ["x"] for i in range(num_types)}
    )


def registrar_mus_family(filler: int) -> tuple[DTD, list[Constraint]]:
    """The spec-doctor conflict buried under ``filler`` innocent keys.

    The DTD forces two approvals per order but exactly one auditor; the
    stamp key plus the FK into the auditor squeeze ``|approval| <= 1`` —
    a 2-element MUS (the stamp key and the FK), independent of how many
    filler keys surround it.  The MUS-workload family of the diagnostics
    and QuickXplain benchmarks and their differential tests.
    """
    from repro.constraints.parser import parse_constraints

    content = {
        "orders": "(order+, auditor, "
        + ", ".join(f"x{i}*" for i in range(filler))
        + ")",
        "order": "(approval, approval)",
        "approval": "EMPTY",
        "auditor": "EMPTY",
    }
    content.update({f"x{i}": "EMPTY" for i in range(filler)})
    attrs = {"order": ["oid"], "approval": ["stamp"], "auditor": ["aid"]}
    attrs.update({f"x{i}": ["k"] for i in range(filler)})
    lines = [
        "order.oid -> order",
        "approval.stamp -> approval",
        "approval.stamp => auditor.aid",
        "auditor.aid -> auditor",
    ]
    lines += [f"x{i}.k -> x{i}" for i in range(filler)]
    return DTD.build("orders", content, attrs=attrs), parse_constraints(
        "\n".join(lines)
    )


def chain_dtd(depth: int, keyed: bool = True) -> tuple[DTD, list[Constraint]]:
    """A linear chain ``r -> c1 -> ... -> c_depth`` with one key per type.

    Scales ``|D|`` and ``|Sigma|`` linearly — the family for the
    linear-time keys-only cell of Figure 5.
    """
    content: dict[str, Regex] = {}
    attrs: dict[str, list[str]] = {}
    sigma: list[Constraint] = []
    names = ["r"] + [f"c{i}" for i in range(1, depth + 1)]
    for here, below in zip(names, names[1:]):
        content[here] = Plus(Name(below))
        attrs[here] = ["id"]
        if keyed:
            sigma.append(Key(here, ("id",)))
    content[names[-1]] = TEXT
    attrs[names[-1]] = ["id"]
    if keyed:
        sigma.append(Key(names[-1], ("id",)))
    return DTD.build("r", content, attrs=attrs), sigma


def keys_only_family(scale: int) -> tuple[DTD, list[Constraint]]:
    """Wide keys-only instances: ``scale`` sibling record types, each with
    a multi-attribute key — exercises Theorem 3.5's linear procedures."""
    content: dict[str, Regex] = {}
    attrs: dict[str, list[str]] = {}
    sigma: list[Constraint] = []
    children = []
    for index in range(scale):
        name = f"rec{index}"
        children.append(Star(Name(name)))
        content[name] = EPSILON
        attrs[name] = ["a", "b", "c"]
        sigma.append(Key(name, ("a", "b")))
        sigma.append(Key(name, ("c",)))
    content["r"] = Concat(tuple(children)) if scale > 1 else (
        children[0] if children else EPSILON
    )
    return DTD.build("r", content, attrs=attrs), sigma


def teachers_family(
    num_subjects: int, consistent: bool
) -> tuple[DTD, list[Constraint]]:
    """The Section-1 interaction, scaled: each teacher teaches
    ``num_subjects`` subjects.

    With a fixed subject count >= 2 and the Sigma1-style key/foreign key,
    the specification is inconsistent (the cardinality clash of
    equations (1)-(2)); the consistent variant uses ``subject*`` so
    ``|ext(subject)| = |ext(teacher)|`` is achievable.
    """
    teach_children: Regex
    if consistent:
        teach_children = Star(Name("subject"))
    else:
        teach_children = Concat(tuple(Name("subject") for _ in range(max(2, num_subjects))))
    dtd = DTD.build(
        "teachers",
        {
            "teachers": Plus(Name("teacher")),
            "teacher": Concat((Name("teach"), Name("research"))),
            "teach": teach_children,
            "subject": TEXT,
            "research": TEXT,
        },
        attrs={"teacher": ["name"], "subject": ["taught_by"]},
    )
    sigma: list[Constraint] = [
        Key("teacher", ("name",)),
        Key("subject", ("taught_by",)),
        ForeignKey(InclusionConstraint("subject", ("taught_by",), "teacher", ("name",))),
    ]
    return dtd, sigma


def star_schema_family(
    num_dimensions: int, consistent: bool = True
) -> tuple[DTD, list[Constraint]]:
    """A fact/dimension ("snowflake") schema with one foreign key per
    dimension — a realistic consistent workload for the unary NP cell.

    The inconsistent variant pins each dimension to exactly two rows while
    a mutual foreign key forces ``|ext(fact)| = |ext(dim_i)|`` and the DTD
    forces ``|ext(fact)| = 1``.
    """
    content: dict[str, Regex] = {}
    attrs: dict[str, list[str]] = {}
    sigma: list[Constraint] = []
    dims = [f"dim{i}" for i in range(num_dimensions)]
    if consistent:
        content["r"] = Concat((Plus(Name("fact")), *(Plus(Name(d)) for d in dims)))
    else:
        content["r"] = Concat(
            (Name("fact"), *(Concat((Name(d), Name(d))) for d in dims))
        )
    content["fact"] = EPSILON
    attrs["fact"] = [f"ref{i}" for i in range(num_dimensions)]
    for index, dim in enumerate(dims):
        content[dim] = EPSILON
        attrs[dim] = ["id"]
        sigma.append(Key(dim, ("id",)))
        sigma.append(
            ForeignKey(InclusionConstraint("fact", (f"ref{index}",), dim, ("id",)))
        )
        if not consistent:
            # Also point the dimension back at the fact: |ext(dim)| <= |ext(fact)| = 1,
            # but the DTD pins |ext(dim)| = 2.
            sigma.append(Key("fact", (f"ref{index}",)))
            sigma.append(
                ForeignKey(InclusionConstraint(dim, ("id",), "fact", (f"ref{index}",)))
            )
    return DTD.build("r", content, attrs=attrs), sigma


def fixed_dtd_constraint_family(num_constraints: int) -> tuple[DTD, list[Constraint]]:
    """A fixed small DTD with a growing constraint set (Corollary 4.11).

    The DTD never changes with the scale parameter; only ``|Sigma|``
    grows (inclusion constraints cycling among three record types).
    """
    dtd = DTD.build(
        "r",
        {
            "r": Concat((Plus(Name("a")), Plus(Name("b")), Plus(Name("c")))),
            "a": EPSILON,
            "b": EPSILON,
            "c": EPSILON,
        },
        attrs={"a": ["x", "y"], "b": ["x", "y"], "c": ["x", "y"]},
    )
    types = ["a", "b", "c"]
    attr_names = ["x", "y"]
    sigma: list[Constraint] = []
    for index in range(num_constraints):
        child = types[index % 3]
        parent = types[(index + 1) % 3]
        attr = attr_names[index % 2]
        sigma.append(InclusionConstraint(child, (attr,), parent, (attr,)))
    return dtd, sigma


def random_dtd(
    seed: int,
    num_types: int = 6,
    max_width: int = 3,
    attr_prob: float = 0.7,
    star_prob: float = 0.4,
    union_prob: float = 0.3,
) -> DTD:
    """A seeded random DTD over ``num_types`` element types.

    Content models reference only later types (plus text), so every
    generated DTD has valid trees and every type is reachable — random
    constraint sets over it are then nontrivially (in)consistent.
    """
    rng = random.Random(seed)
    names = ["r"] + [f"e{i}" for i in range(1, num_types)]
    content: dict[str, Regex] = {}
    attrs: dict[str, list[str]] = {}
    for index, name in enumerate(names):
        later = names[index + 1:]
        if not later:
            content[name] = TEXT if rng.random() < 0.5 else EPSILON
        else:
            width = rng.randint(1, max_width)
            parts: list[Regex] = []
            for _ in range(width):
                target = rng.choice(later)
                atom: Regex = Name(target)
                roll = rng.random()
                if roll < star_prob:
                    atom = Star(atom)
                elif roll < star_prob + 0.2:
                    atom = Optional(atom)
                parts.append(atom)
            if len(parts) >= 2 and rng.random() < union_prob:
                content[name] = Union(tuple(parts))
            else:
                content[name] = Concat(tuple(parts)) if len(parts) > 1 else parts[0]
        if rng.random() < attr_prob:
            count = rng.randint(1, 2)
            attrs[name] = [f"l{k}" for k in range(count)]
    # Guarantee reachability of every declared type: append unreferenced
    # ones to the root content under a star.
    referenced: set[str] = set()
    from repro.regex.analysis import alphabet
    from repro.regex.ast import TEXT_SYMBOL

    for expr in content.values():
        referenced |= set(alphabet(expr)) - {TEXT_SYMBOL}
    orphans = [n for n in names[1:] if n not in referenced]
    if orphans:
        extra = tuple(Star(Name(n)) for n in orphans)
        content["r"] = Concat((content["r"], *extra))
    return DTD.build("r", content, attrs=attrs)


def random_unary_constraints(
    seed: int,
    dtd: DTD,
    num_keys: int = 2,
    num_fks: int = 2,
    num_neg_keys: int = 0,
    num_neg_inclusions: int = 0,
) -> list[Constraint]:
    """Seeded random unary constraints over the DTD's attribute pairs."""
    from repro.constraints.ast import NegInclusion, NegKey

    rng = random.Random(seed)
    pairs = dtd.attribute_pairs()
    if not pairs:
        return []
    sigma: list[Constraint] = []
    for _ in range(num_keys):
        tau, attr = rng.choice(pairs)
        sigma.append(Key(tau, (attr,)))
    for _ in range(num_fks):
        (t1, a1), (t2, a2) = rng.choice(pairs), rng.choice(pairs)
        sigma.append(ForeignKey(InclusionConstraint(t1, (a1,), t2, (a2,))))
    for _ in range(num_neg_keys):
        tau, attr = rng.choice(pairs)
        sigma.append(NegKey(tau, attr))
    for _ in range(num_neg_inclusions):
        (t1, a1), (t2, a2) = rng.choice(pairs), rng.choice(pairs)
        if (t1, a1) != (t2, a2):
            sigma.append(NegInclusion(t1, a1, t2, a2))
    # Deduplicate, preserving order.
    unique: list[Constraint] = []
    for phi in sigma:
        if phi not in unique:
            unique.append(phi)
    return unique
