"""``repro.api`` — the stable one-call facade over the toolkit.

The library grew four entry layers (checkers, analysis, the session
engine, the wire protocol), each with its own calling convention.  This
module is the narrow waist the CLI subcommands and the service's
:class:`~repro.service.session.SpecSession` dispatch both route
through: four verbs over one :class:`Spec` value, keyword-only
configuration, typed results.

* :func:`check` — is the specification consistent?  Returns the
  checker's :class:`~repro.checkers.results.ConsistencyResult`.
* :func:`implies` — does the specification imply ``phi``?  Returns an
  :class:`~repro.checkers.results.ImplicationResult`.
* :func:`diagnose` — why is it broken / what is redundant?  Returns a
  :class:`~repro.analysis.diagnostics.DiagnosticsReport`.
* :func:`repair` — what is the cheapest edit after which it is
  consistent?  Returns a :class:`~repro.analysis.repair.Repair`.

A :class:`Spec` is just ``(DTD, Sigma)`` with parsing helpers; every
verb also accepts a bare :class:`~repro.dtd.model.DTD` (empty Sigma) or
a ``(dtd, constraints)`` pair, so callers holding parsed objects never
wrap them by hand.

>>> spec = Spec.parse(
...     "<!ELEMENT r (a, a)><!ELEMENT a EMPTY>"
...     "<!ATTLIST r k CDATA #REQUIRED><!ATTLIST a k CDATA #REQUIRED>",
...     "a.k -> a\\na.k <= r.k",
... )
>>> check(spec).consistent
False
>>> sorted(str(phi) for phi in diagnose(spec).mus)
['a.k -> a', 'a.k <= r.k']
>>> fix = repair(spec)
>>> (fix.found, fix.cost, [action.describe() for action in fix.actions])
(True, 1, ['delete constraint a.k -> a'])
>>> implies(spec, "a.k -> a").implied    # an inconsistent spec implies all
True
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.analysis.diagnostics import DiagnosticsReport, DiagnosticsStats
from repro.analysis.diagnostics import diagnose as _diagnose
from repro.analysis.diagnostics import mus as _mus
from repro.analysis.repair import Repair, RepairStats, minimal_repair
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies as _implies
from repro.checkers.results import ConsistencyResult, ImplicationResult
from repro.constraints.ast import Constraint
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.errors import ReproError

__all__ = [
    "Spec",
    "check",
    "implies",
    "diagnose",
    "mus",
    "repair",
]


@dataclass(frozen=True)
class Spec:
    """One XML specification: a DTD plus a constraint set Sigma."""

    dtd: DTD
    constraints: tuple[Constraint, ...] = ()

    @staticmethod
    def parse(
        dtd_text: str, constraints_text: str = "", *, root: str | None = None
    ) -> "Spec":
        """Build a :class:`Spec` from the two text syntaxes the CLI reads
        (``<!ELEMENT>``/``<!ATTLIST>`` declarations; one constraint per
        line, ``#`` comments)."""
        return Spec(
            dtd=parse_dtd(dtd_text, root=root),
            constraints=tuple(parse_constraints(constraints_text)),
        )

    def with_constraints(self, constraints: Iterable[Constraint]) -> "Spec":
        """The same DTD under a different Sigma."""
        return Spec(dtd=self.dtd, constraints=tuple(constraints))


def as_spec(spec: "Spec | DTD | tuple") -> Spec:
    """Coerce the accepted spec shapes into a :class:`Spec`.

    Accepts a :class:`Spec`, a bare :class:`~repro.dtd.model.DTD`
    (empty Sigma), or a ``(dtd, constraints)`` pair.
    """
    if isinstance(spec, Spec):
        return spec
    if isinstance(spec, DTD):
        return Spec(dtd=spec)
    if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], DTD):
        return Spec(dtd=spec[0], constraints=tuple(spec[1]))
    raise ReproError(
        "expected a Spec, a DTD, or a (dtd, constraints) pair, "
        f"got {type(spec).__name__}"
    )


def check(
    spec: "Spec | DTD | tuple", *, config: CheckerConfig | None = None
) -> ConsistencyResult:
    """Is the specification consistent — does any document satisfy it?"""
    resolved = as_spec(spec)
    return check_consistency(
        resolved.dtd, list(resolved.constraints), config or DEFAULT_CONFIG
    )


def implies(
    spec: "Spec | DTD | tuple",
    phi: "Constraint | str",
    *,
    config: CheckerConfig | None = None,
) -> ImplicationResult:
    """Does every document satisfying the specification satisfy ``phi``?

    ``phi`` may be a parsed constraint or its text syntax.
    """
    resolved = as_spec(spec)
    parsed = parse_constraint(phi) if isinstance(phi, str) else phi
    return _implies(
        resolved.dtd, list(resolved.constraints), parsed, config or DEFAULT_CONFIG
    )


def diagnose(
    spec: "Spec | DTD | tuple",
    *,
    config: CheckerConfig | None = None,
    toggled: bool = True,
    mus_method: str = "quickxplain",
) -> DiagnosticsReport:
    """Specification health: a minimal conflict when inconsistent, the
    redundant constraints when consistent."""
    resolved = as_spec(spec)
    return _diagnose(
        resolved.dtd,
        list(resolved.constraints),
        config,
        toggled=toggled,
        mus_method=mus_method,
    )


def mus(
    spec: "Spec | DTD | tuple",
    *,
    config: CheckerConfig | None = None,
    method: str = "quickxplain",
    toggled: bool = True,
    stats: DiagnosticsStats | None = None,
) -> list[Constraint]:
    """A minimal inconsistent subset of the specification's Sigma."""
    resolved = as_spec(spec)
    return _mus(
        resolved.dtd,
        list(resolved.constraints),
        config,
        method=method,
        toggled=toggled,
        stats=stats,
    )


def repair(
    spec: "Spec | DTD | tuple",
    *,
    config: CheckerConfig | None = None,
    weights: Mapping | None = None,
    core_method: str = "quickxplain",
    toggled: bool = True,
    stats: RepairStats | None = None,
) -> Repair:
    """A minimum-weight edit making the specification consistent.

    The edit space is constraint deletions, cardinality loosenings
    (required child → optional) and attribute-requirement drops; the
    returned :class:`~repro.analysis.repair.Repair` carries the applied
    ``(dtd, constraints)``, a human-readable diff, and the verification
    verdict.  See :func:`repro.analysis.repair.minimal_repair` for the
    search and the ``weights`` contract.
    """
    resolved = as_spec(spec)
    return minimal_repair(
        resolved.dtd,
        list(resolved.constraints),
        config,
        weights=weights,
        core_method=core_method,
        toggled=toggled,
        stats=stats,
    )
