"""Relational schemas and instances (Section 3.1's setting).

Instances use set semantics (duplicate rows collapse), which makes
``R[Att(R)] -> R`` hold automatically — the fact both reductions in the
paper rely on ("the set of all attributes of a relation is a key").
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping


@dataclass(frozen=True)
class RelationSchema:
    """A relation schema: a name and a tuple of attribute names."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in {self.name}: {self.attributes}")

    def has_attrs(self, attrs: Iterable[str]) -> bool:
        return set(attrs) <= set(self.attributes)


@dataclass(frozen=True)
class Schema:
    """A relational schema ``R = (R1, ..., Rn)``."""

    relations: tuple[RelationSchema, ...]

    def __post_init__(self) -> None:
        names = [rel.name for rel in self.relations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate relation names: {names}")

    def relation(self, name: str) -> RelationSchema:
        for rel in self.relations:
            if rel.name == name:
                return rel
        raise KeyError(f"no relation named {name!r}")

    def names(self) -> tuple[str, ...]:
        return tuple(rel.name for rel in self.relations)


class Instance:
    """A finite database instance: per relation, a set of tuples.

    Tuples are stored as value tuples aligned with the schema's attribute
    order; convenience accessors deal in mappings.

    >>> schema = Schema((RelationSchema("R", ("a", "b")),))
    >>> inst = Instance(schema)
    >>> inst.insert("R", {"a": "1", "b": "2"})
    >>> inst.rows("R")
    [{'a': '1', 'b': '2'}]
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._data: dict[str, set[tuple[str, ...]]] = {
            rel.name: set() for rel in schema.relations
        }

    def insert(self, relation: str, row: Mapping[str, str]) -> None:
        rel = self.schema.relation(relation)
        missing = set(rel.attributes) - set(row)
        if missing:
            raise ValueError(f"row for {relation} missing attributes {sorted(missing)}")
        self._data[relation].add(tuple(str(row[attr]) for attr in rel.attributes))

    def tuples(self, relation: str) -> set[tuple[str, ...]]:
        """Raw value tuples of a relation (schema attribute order)."""
        return set(self._data[relation])

    def rows(self, relation: str) -> list[dict[str, str]]:
        """Rows as attribute-name mappings, deterministically ordered."""
        rel = self.schema.relation(relation)
        return [
            dict(zip(rel.attributes, values))
            for values in sorted(self._data[relation])
        ]

    def project(self, relation: str, attrs: Iterable[str]) -> set[tuple[str, ...]]:
        """The projection ``pi_attrs`` of a relation, as a set of tuples."""
        rel = self.schema.relation(relation)
        indices = [rel.attributes.index(attr) for attr in attrs]
        return {
            tuple(values[index] for index in indices)
            for values in self._data[relation]
        }

    def size(self) -> int:
        return sum(len(rows) for rows in self._data.values())
