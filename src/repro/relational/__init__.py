"""Relational substrate: schemas, instances, dependencies, reductions.

The paper's undecidability results (Section 3) go through relational
databases: implication of functional dependencies by FDs and inclusion
dependencies (undecidable, classical) reduces to implication of keys by
keys and foreign keys (Lemma 3.2), whose complement reduces to XML
specification consistency (Theorem 3.1). Both reductions are *computable*
even though the problems they connect are not decidable — this package
implements them as executable transformations, together with the
relational model they speak about.
"""

from repro.relational.constraints import (
    FD,
    ID,
    RelForeignKey,
    RelKey,
    rel_satisfies,
    rel_satisfies_all,
)
from repro.relational.model import Instance, RelationSchema, Schema
from repro.relational.reductions import (
    Lemma32Encoding,
    Theorem31Reduction,
    consistency_to_implication,
    encode_fd_implication,
    relational_implication_to_xml,
)

__all__ = [
    "RelationSchema",
    "Schema",
    "Instance",
    "FD",
    "ID",
    "RelKey",
    "RelForeignKey",
    "rel_satisfies",
    "rel_satisfies_all",
    "Lemma32Encoding",
    "encode_fd_implication",
    "Theorem31Reduction",
    "relational_implication_to_xml",
    "consistency_to_implication",
]
