"""The executable reductions of Section 3.

* :func:`encode_fd_implication` — Lemma 3.2: an instance of "FDs implied by
  FDs + IDs" (undecidable, classical) becomes an instance of "keys implied
  by keys + foreign keys" over an extended schema.
* :func:`relational_implication_to_xml` — Theorem 3.1: the *complement* of
  relational key implication becomes XML specification consistency for
  multi-attribute keys and foreign keys, via the Figure-2 DTD.
* :func:`consistency_to_implication` — Lemma 3.3: XML consistency reduces
  to the complement of XML implication (Figure 3), used for the
  undecidability of implication and the coNP-hardness transfers.

These transformations are all PTIME-computable; the undecidability lives
in the problems, not the reductions. Tests exercise both directions of
each equivalence on instances small enough for brute-force oracles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegKey,
)
from repro.dtd.model import DTD
from repro.regex.ast import EPSILON, Concat, Name, Regex, Star
from repro.relational.constraints import FD, ID, RelForeignKey, RelKey
from repro.relational.model import RelationSchema, Schema


def _fresh_name(base: str, used: set[str]) -> str:
    """A name not in ``used`` (suffix digits as needed)."""
    if base not in used:
        used.add(base)
        return base
    index = 2
    while f"{base}{index}" in used:
        index += 1
    name = f"{base}{index}"
    used.add(name)
    return name


# ---------------------------------------------------------------------------
# Lemma 3.2: FD implication by FDs+IDs  ->  key implication by keys+FKs
# ---------------------------------------------------------------------------


@dataclass
class Lemma32Encoding:
    """Output of the Lemma 3.2 reduction.

    ``schema`` extends the input schema with the fresh ``Rnew`` relations;
    ``sigma`` is the set Sigma' of keys and foreign keys; ``phi`` is the
    key whose implication is equivalent to the input FD implication.
    """

    schema: Schema
    sigma: list[RelKey | RelForeignKey]
    phi: RelKey


def _encode_fd(
    fd: FD,
    schema_rel: RelationSchema,
    used_names: set[str],
    new_relations: list[RelationSchema],
) -> tuple[list[RelKey | RelForeignKey], RelKey]:
    """Encode one FD ``R: X -> Y`` per the proof of Lemma 3.2.

    ``Z`` is taken to be ``Att(R)`` (always a key under set semantics), so
    ``XYZ = Att(R)`` and the superkey requirements hold automatically.
    Returns (ell2..ell4, ell1): the constraints that always go into Sigma'
    and the key ell1 (which joins Sigma' for FDs in Sigma but becomes the
    implication target for the goal FD).
    """
    x, y = list(fd.lhs), list(fd.rhs)
    xy = x + [a for a in y if a not in x]
    xyz = xy + [a for a in schema_rel.attributes if a not in xy]
    new_name = _fresh_name(f"{fd.relation}_new", used_names)
    new_rel = RelationSchema(new_name, tuple(xyz))
    new_relations.append(new_rel)
    ell1 = RelKey(new_name, tuple(x))
    ell4 = RelKey(new_name, tuple(xy))
    # ell2: R[XY] ⊆ Rnew[XY] with key ell4 on the target — a foreign key.
    ell2 = RelForeignKey(fd.relation, tuple(xy), new_name, tuple(xy))
    # ell3: Rnew[XYZ] ⊆ R[XYZ]; XYZ = Att(R) is a key of R automatically,
    # so a plain foreign key onto the full attribute set.
    ell3 = RelForeignKey(new_name, tuple(xyz), fd.relation, tuple(xyz))
    return [ell2, ell3, ell4], ell1


def _encode_id(
    id_dep: ID,
    parent_rel: RelationSchema,
    used_names: set[str],
    new_relations: list[RelationSchema],
) -> list[RelKey | RelForeignKey]:
    """Encode one ID ``R1[X] ⊆ R2[Y]`` per the proof of Lemma 3.2."""
    y = list(id_dep.parent_attrs)
    yz = y + [a for a in parent_rel.attributes if a not in y]
    new_name = _fresh_name(f"{id_dep.parent}_new", used_names)
    new_rel = RelationSchema(new_name, tuple(yz))
    new_relations.append(new_rel)
    ell1 = RelKey(new_name, tuple(y))
    ell2 = RelForeignKey(id_dep.child, tuple(id_dep.child_attrs), new_name, tuple(y))
    ell3 = RelForeignKey(new_name, tuple(yz), id_dep.parent, tuple(yz))
    return [ell1, ell2, ell3]


def encode_fd_implication(
    schema: Schema, sigma: list[FD | ID], theta: FD
) -> Lemma32Encoding:
    """Lemma 3.2: ``Sigma |- theta`` iff ``Sigma' |- ell1`` over keys/FKs.

    >>> schema = Schema((RelationSchema("R", ("a", "b", "c")),))
    >>> enc = encode_fd_implication(schema, [], FD("R", ("a",), ("b",)))
    >>> enc.phi.relation.startswith("R_new")
    True
    """
    used_names = {rel.name for rel in schema.relations}
    new_relations: list[RelationSchema] = []
    encoded: list[RelKey | RelForeignKey] = []
    for dep in sigma:
        if isinstance(dep, FD):
            extra, ell1 = _encode_fd(
                dep, schema.relation(dep.relation), used_names, new_relations
            )
            encoded.extend(extra)
            encoded.append(ell1)
        elif isinstance(dep, ID):
            encoded.extend(
                _encode_id(dep, schema.relation(dep.parent), used_names, new_relations)
            )
        else:
            raise TypeError(f"Lemma 3.2 encodes FDs and IDs, got {dep!r}")
    extra, phi = _encode_fd(
        theta, schema.relation(theta.relation), used_names, new_relations
    )
    encoded.extend(extra)
    return Lemma32Encoding(
        schema=Schema(schema.relations + tuple(new_relations)),
        sigma=encoded,
        phi=phi,
    )


# ---------------------------------------------------------------------------
# Theorem 3.1: complement of key implication  ->  XML consistency
# ---------------------------------------------------------------------------


@dataclass
class Theorem31Reduction:
    """The Figure-2 construction.

    ``dtd`` and ``sigma`` form the XML specification; it is consistent iff
    the input relational implication does **not** hold. ``tuple_type``
    maps each relation name to its ``t_i`` element type.
    """

    dtd: DTD
    sigma: list[Constraint]
    tuple_type: dict[str, str]
    dy_type: str
    ex_type: str


def relational_implication_to_xml(
    schema: Schema,
    theta: list[RelKey | RelForeignKey],
    phi: RelKey,
) -> Theorem31Reduction:
    """Theorem 3.1: build ``(D, Sigma)`` consistent iff ``Theta |/- phi``.

    The DTD has root ``r -> R1, ..., Rn, DY, DY, EX`` with ``Ri -> ti*``;
    tuple types carry the relation's attributes; the two ``DY`` elements
    and the single ``EX`` element force a witness pair for ``not phi``.
    """
    phi_rel = schema.relation(phi.relation)
    x_attrs = list(phi.attrs)
    y_attrs = [a for a in phi_rel.attributes if a not in x_attrs]

    used_names = set()
    type_of_rel: dict[str, str] = {}
    tuple_type: dict[str, str] = {}
    for rel in schema.relations:
        type_of_rel[rel.name] = _fresh_name(rel.name, used_names)
    for rel in schema.relations:
        tuple_type[rel.name] = _fresh_name(f"t_{rel.name}", used_names)
    root = _fresh_name("r", used_names)
    dy = _fresh_name("DY", used_names)
    ex = _fresh_name("EX", used_names)

    content: dict[str, Regex] = {}
    attrs: dict[str, list[str]] = {}
    root_children = [Name(type_of_rel[rel.name]) for rel in schema.relations]
    root_children += [Name(dy), Name(dy), Name(ex)]
    content[root] = Concat(tuple(root_children)) if len(root_children) > 1 else root_children[0]
    for rel in schema.relations:
        content[type_of_rel[rel.name]] = Star(Name(tuple_type[rel.name]))
        content[tuple_type[rel.name]] = EPSILON
        attrs[tuple_type[rel.name]] = list(rel.attributes)
    content[dy] = EPSILON
    content[ex] = EPSILON
    attrs[dy] = x_attrs + y_attrs
    attrs[ex] = list(x_attrs)

    dtd = DTD.build(root, content, attrs=attrs)

    sigma: list[Constraint] = []
    # Sigma_Theta: translate relational keys/FKs onto the tuple types.
    for dep in theta:
        if isinstance(dep, RelKey):
            sigma.append(Key(tuple_type[dep.relation], tuple(dep.attrs)))
        elif isinstance(dep, RelForeignKey):
            sigma.append(
                ForeignKey(
                    InclusionConstraint(
                        tuple_type[dep.child],
                        tuple(dep.child_attrs),
                        tuple_type[dep.parent],
                        tuple(dep.parent_attrs),
                    )
                )
            )
        else:
            raise TypeError(f"Theorem 3.1 takes keys and foreign keys, got {dep!r}")
    # Sigma_phi: the witness gadget (Figure 2).
    t_phi = tuple_type[phi.relation]
    xy = x_attrs + y_attrs
    if y_attrs:
        sigma.append(Key(dy, tuple(y_attrs)))
    sigma.append(Key(ex, tuple(x_attrs)))
    sigma.append(
        ForeignKey(InclusionConstraint(dy, tuple(x_attrs), ex, tuple(x_attrs)))
    )
    sigma.append(
        ForeignKey(InclusionConstraint(dy, tuple(xy), t_phi, tuple(xy)))
    )
    return Theorem31Reduction(
        dtd=dtd, sigma=sigma, tuple_type=tuple_type, dy_type=dy, ex_type=ex
    )


# ---------------------------------------------------------------------------
# Lemma 3.3: consistency  ->  complement of implication
# ---------------------------------------------------------------------------


@dataclass
class Lemma33Reduction:
    """The Figure-3 construction.

    Over ``dtd_prime``, Sigma is satisfiable with ``D`` iff
    ``(D', Sigma ∪ {ell, phi2}) |/- phi1`` iff
    ``(D', Sigma ∪ {ell, phi1}) |/- phi2``.
    """

    dtd_prime: DTD
    ell: Key
    phi1: Key
    phi2: InclusionConstraint
    not_phi1: NegKey


def consistency_to_implication(dtd: DTD) -> Lemma33Reduction:
    """Lemma 3.3: extend ``D`` with the ``DY, DY, EX`` tail (Figure 3).

    Constraint sets transfer verbatim: any Sigma over ``D`` is a
    constraint set over ``D'``.
    """
    used = set(dtd.element_types) | set(dtd.attributes)
    dy = _fresh_name("DY", used)
    ex = _fresh_name("EX", used)
    k_attr = _fresh_name("K", used)

    content: dict[str, Regex] = dict(dtd.content)
    old_root = content[dtd.root]
    tail = (Name(dy), Name(dy), Name(ex))
    if old_root == EPSILON:
        content[dtd.root] = Concat(tail)
    else:
        content[dtd.root] = Concat((old_root, *tail))
    content[dy] = EPSILON
    content[ex] = EPSILON

    attrs = {tau: sorted(dtd.attrs(tau)) for tau in dtd.element_types}
    attrs[dy] = [k_attr]
    attrs[ex] = [k_attr]

    dtd_prime = DTD.build(dtd.root, content, attrs=attrs)
    return Lemma33Reduction(
        dtd_prime=dtd_prime,
        ell=Key(ex, (k_attr,)),
        phi1=Key(dy, (k_attr,)),
        phi2=InclusionConstraint(dy, (k_attr,), ex, (k_attr,)),
        not_phi1=NegKey(dy, k_attr),
    )
