"""Relational dependencies: FDs, IDs, keys and foreign keys (Section 3.1).

Keys here are the paper's relational keys (``R[l1..lk] -> R``: agreeing on
the key attributes forces agreeing on *all* attributes, which under set
semantics means being the same tuple); foreign keys pair an inclusion
dependency with a key on its target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.model import Instance


@dataclass(frozen=True)
class FD:
    """Functional dependency ``R : X -> Y``."""

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.relation}: {','.join(self.lhs)} -> {','.join(self.rhs)}"


@dataclass(frozen=True)
class ID:
    """Inclusion dependency ``R1[X] ⊆ R2[Y]`` (Y need not be a key)."""

    child: str
    child_attrs: tuple[str, ...]
    parent: str
    parent_attrs: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_attrs) != len(self.parent_attrs):
            raise ValueError("inclusion dependency lists must have equal length")

    def __str__(self) -> str:
        return (
            f"{self.child}[{','.join(self.child_attrs)}] <= "
            f"{self.parent}[{','.join(self.parent_attrs)}]"
        )


@dataclass(frozen=True)
class RelKey:
    """Relational key ``R[l1..lk] -> R``."""

    relation: str
    attrs: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.relation}[{','.join(self.attrs)}] -> {self.relation}"


@dataclass(frozen=True)
class RelForeignKey:
    """Foreign key: ``R1[X] ⊆ R2[Y]`` together with key ``R2[Y] -> R2``."""

    child: str
    child_attrs: tuple[str, ...]
    parent: str
    parent_attrs: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_attrs) != len(self.parent_attrs):
            raise ValueError("foreign key lists must have equal length")

    @property
    def inclusion(self) -> ID:
        return ID(self.child, self.child_attrs, self.parent, self.parent_attrs)

    @property
    def key(self) -> RelKey:
        return RelKey(self.parent, self.parent_attrs)

    def __str__(self) -> str:
        return f"{self.inclusion} (key {self.key})"


RelConstraint = FD | ID | RelKey | RelForeignKey


def rel_satisfies(instance: Instance, phi: RelConstraint) -> bool:
    """Does the instance satisfy the dependency?

    >>> from repro.relational.model import Instance, RelationSchema, Schema
    >>> schema = Schema((RelationSchema("R", ("a", "b")),))
    >>> inst = Instance(schema)
    >>> inst.insert("R", {"a": "1", "b": "x"})
    >>> inst.insert("R", {"a": "1", "b": "y"})
    >>> rel_satisfies(inst, RelKey("R", ("a",)))
    False
    """
    if isinstance(phi, FD):
        rel = instance.schema.relation(phi.relation)
        lhs_idx = [rel.attributes.index(a) for a in phi.lhs]
        rhs_idx = [rel.attributes.index(a) for a in phi.rhs]
        seen: dict[tuple[str, ...], tuple[str, ...]] = {}
        for row in instance.tuples(phi.relation):
            left = tuple(row[i] for i in lhs_idx)
            right = tuple(row[i] for i in rhs_idx)
            if left in seen and seen[left] != right:
                return False
            seen[left] = right
        return True
    if isinstance(phi, RelKey):
        # Under set semantics R[X] -> R means X determines the whole tuple.
        rel = instance.schema.relation(phi.relation)
        return rel_satisfies(
            instance, FD(phi.relation, phi.attrs, rel.attributes)
        )
    if isinstance(phi, ID):
        child_proj = instance.project(phi.child, phi.child_attrs)
        parent_proj = instance.project(phi.parent, phi.parent_attrs)
        return child_proj <= parent_proj
    if isinstance(phi, RelForeignKey):
        return rel_satisfies(instance, phi.inclusion) and rel_satisfies(
            instance, phi.key
        )
    raise TypeError(f"unknown relational constraint {phi!r}")


def rel_satisfies_all(instance: Instance, constraints) -> bool:
    """Does the instance satisfy every dependency in the collection?"""
    return all(rel_satisfies(instance, phi) for phi in constraints)
