"""Small-solution bounds for integer programs.

Papadimitriou (JACM 1981, cited by the paper in the proof of Theorem 4.1):
if a system of ``m`` linear constraints over ``n`` nonnegative integer
variables with all constants bounded by ``a`` in absolute value has an
integer solution, it has one in which every variable is at most
``n * (m * a) ** (2 * m + 1)``.

The paper uses this twice: to big-M-encode the conditional constraints
``|ext(tau)| > 0 -> |ext(tau.l)| > 0`` (Theorem 4.1) and to bound the
guessed solutions in the NP procedure of Theorem 5.1 (Lemma 5.3). Our
default solver replaces the big-M route with support branching (DESIGN.md
section 3), but the bound is still used to make exact branch-and-bound
complete and is exposed for the faithful big-M strategy.
"""

from __future__ import annotations


def papadimitriou_bound(num_vars: int, num_rows: int, max_abs: int) -> int:
    """The bound ``n * (m * a) ** (2m + 1)`` as an exact integer.

    Arguments are clamped to at least 1 so degenerate systems still get a
    positive bound.

    >>> papadimitriou_bound(2, 1, 1)
    2
    """
    n = max(1, num_vars)
    m = max(1, num_rows)
    a = max(1, max_abs)
    return n * (m * a) ** (2 * m + 1)
