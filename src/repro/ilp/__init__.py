"""Integer linear programming substrate.

The paper reduces consistency of unary constraints to linear integer
programming (Theorem 4.1). This package supplies:

* :mod:`repro.ilp.model` — a solver-independent system of integer linear
  constraints over named variables;
* :mod:`repro.ilp.scipy_backend` — the default solver (HiGHS via
  ``scipy.optimize.milp``) with post-hoc exact verification of solutions;
* :mod:`repro.ilp.exact` — a certified rational revised dual simplex with
  warm-started branch-and-bound (parent-basis reuse, bound-patch API
  mirroring the assembled core), used to certify instances and as the
  fallback when a float solve is in doubt;
* :mod:`repro.ilp.bounds` — the Papadimitriou small-solution bound used by
  the paper's big-M argument;
* :mod:`repro.ilp.assembled` — the assemble-once/bound-patch core: the
  base system's sparse matrix is built a single time and every support
  branch re-solves it by patching variable-bound arrays (DESIGN.md
  section 4);
* :mod:`repro.ilp.condsys` — conditional systems ``x > 0 -> y > 0`` with
  tree-connectivity side conditions, solved by support branching plus
  connectivity cuts (see DESIGN.md section 3).
"""

from repro.ilp.assembled import AssembledSystem
from repro.ilp.bounds import papadimitriou_bound
from repro.ilp.condsys import (
    ConditionalSystem,
    CondSolveStats,
    SupportClause,
    solve_conditional_system,
)
from repro.ilp.exact import ExactAssembledSystem, ExactStats, solve_exact
from repro.ilp.model import BoundPatch, LinearSystem, Row, SolveResult
from repro.ilp.scipy_backend import solve_milp, solve_milp_certified

__all__ = [
    "AssembledSystem",
    "BoundPatch",
    "ExactAssembledSystem",
    "ExactStats",
    "solve_milp_certified",
    "LinearSystem",
    "Row",
    "SolveResult",
    "solve_milp",
    "solve_exact",
    "papadimitriou_bound",
    "ConditionalSystem",
    "SupportClause",
    "CondSolveStats",
    "solve_conditional_system",
]
