"""Conditional linear systems with tree-connectivity side conditions.

The combined system of Theorem 4.1 is ``Psi(D, Sigma) = Psi_DN ∪ C_Sigma ∪
{ |ext(tau)| > 0 -> |ext(tau.l)| > 0 }``. Two features fall outside plain
ILP:

1. the **conditionals** — the paper big-M-encodes them with the
   (astronomical) Papadimitriou bound; we instead branch on the *support*:
   which element types have ``|ext(tau)| >= 1``. Once supports are fixed,
   each conditional becomes a plain linear row.
2. the **connectivity side condition** — an integer solution is realizable
   as a tree only if every positive element type is reachable from the root
   through positive occurrence variables (DESIGN.md section 3; this repairs
   the glossed step in the paper's Lemma 4.5). With supports fixed we
   enforce it with iterated connectivity cuts: whenever the solution leaves
   a positive set ``U`` unreachable, the valid inequality
   ``sum(occ edges entering U from outside) >= 1`` is added and the leaf is
   re-solved.

The search propagates *support clauses* (Horn-style implications derived
from the DTD rules and the inclusion constraints) and prunes with LP
relaxations; every answer is exact because pruning only uses definite LP
infeasibility and every leaf solution is verified integer-exactly.

Incremental core (DESIGN.md section 4): every per-node delta is a
*variable-bound* change, so the base system is assembled exactly once
(:class:`repro.ilp.assembled.AssembledSystem`) and each DFS node or LP
prune patches bound arrays instead of rebuilding matrices.  Connectivity
cuts go into a pool shared across leaves: a cut learned for an unreachable
set ``U`` is valid for *any* solution in which some member of ``U`` is
present (the root-to-member path must enter ``U`` from outside), so each
pool entry carries ``U`` as its guard and is activated exactly when the
current support decisions intersect it.  A single LP probe of the root
relaxation decides most instances outright: definite infeasibility refutes
the whole search, and an integral vertex that passes the exact row check,
the conditionals and the connectivity check is already a realizable answer.

The certified backend shares the same shape (DESIGN.md section 5): a
lazily-built :class:`repro.ilp.exact.ExactAssembledSystem` twin takes the
identical ``(patches, active)`` pair per leaf and re-solves by dual-simplex
bound patches on a warm basis, with pool cuts mirrored so indices align;
``exact_warm=False`` falls back to cold solves of materialized leaves for
differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

from repro.errors import ComplexityLimitError, SolverError
from repro.ilp.assembled import AssembledSystem
from repro.ilp.exact import ExactAssembledSystem, ExactStats, solve_exact
from repro.ilp.model import BoundPatch, LinearSystem, SolveResult, VarId
from repro.ilp.scipy_backend import lp_infeasible, solve_milp_certified


@dataclass(frozen=True)
class SupportClause:
    """``s(premise) -> OR s(a) for a in alternatives``.

    An empty alternative set means the premise can never be present.
    """

    premise: str
    alternatives: frozenset[str]


@dataclass
class ConditionalSystem:
    """A linear system plus support conditionals and connectivity data.

    Attributes
    ----------
    base:
        The unconditional linear rows (``Psi_DN`` and ``C_Sigma``).
    ext_var:
        Maps each node symbol (element types and the text symbol) to its
        ``|ext(.)|`` variable.
    root:
        The root element type (its extent is pinned to 1 in ``base``).
    element_types:
        All element types of the simplified DTD — the support search
        branches exactly over these.
    edges:
        Occurrence sites ``(occ_var, parent_symbol, child_symbol)`` used
        for connectivity checking and cuts.
    requires_if_present:
        Per element type, variables forced ``>= 1`` when the type is
        present (the ``|ext(tau.l)|`` conditionals).
    clauses:
        Support implications for propagation/pruning (sound, not complete —
        completeness comes from exhaustive branching).
    forced_true / forced_false:
        Types whose support is fixed up front (the root and types forced by
        negated constraints; unusable types respectively).
    """

    base: LinearSystem
    ext_var: dict[str, VarId]
    root: str
    element_types: tuple[str, ...]
    edges: tuple[tuple[VarId, str, str], ...]
    requires_if_present: dict[str, tuple[VarId, ...]] = field(default_factory=dict)
    clauses: tuple[SupportClause, ...] = ()
    forced_true: frozenset[str] = frozenset()
    forced_false: frozenset[str] = frozenset()


@dataclass
class CondSolveStats:
    """Search statistics, reported for benchmarks and diagnostics."""

    dfs_nodes: int = 0
    leaves_solved: int = 0
    cuts_added: int = 0
    lp_prunes: int = 0
    shortcut_hit: bool = False
    #: Full matrix assemblies performed (1 on the incremental path).
    assemblies: int = 0
    #: Solves served by patching the assembled system's bound arrays.
    bound_patch_solves: int = 0
    #: Leaf solves at which a cut learned by an *earlier* leaf was active.
    cut_pool_hits: int = 0
    #: Clause examinations during unit propagation (worklist work).
    propagation_visits: int = 0
    #: The root LP probe decided the instance by itself.
    lp_probe_decided: bool = False
    #: Branch-and-bound nodes expanded by the certified exact backend.
    exact_nodes: int = 0
    #: Dual-simplex pivots performed by the certified exact backend.
    exact_pivots: int = 0
    #: Exact LP re-solves served warm from a carried-over basis.
    exact_warm_solves: int = 0


def _leaf_rows(
    cs: ConditionalSystem, assignment: Mapping[str, bool]
) -> LinearSystem:
    """The plain ILP once every element type's support is decided.

    This is the from-scratch (``incremental=False``) construction, kept as
    the reference the bound-patching path is differentially tested against.
    """
    leaf = cs.base.copy()
    for tau, present in assignment.items():
        ext = cs.ext_var[tau]
        if present:
            leaf.add_ge({ext: 1}, 1, label=f"support:{tau}")
            for var in cs.requires_if_present.get(tau, ()):
                leaf.add_ge({var: 1}, 1, label=f"attr-total:{tau}")
        else:
            leaf.add_eq({ext: 1}, 0, label=f"absent:{tau}")
    return leaf


def _partial_rows(
    cs: ConditionalSystem, assignment: Mapping[str, bool | None]
) -> LinearSystem:
    """Relaxation used for pruning: only decided supports constrained."""
    partial = cs.base.copy()
    for tau, decided in assignment.items():
        if decided is None:
            continue
        ext = cs.ext_var[tau]
        if decided:
            partial.add_ge({ext: 1}, 1)
            for var in cs.requires_if_present.get(tau, ()):
                partial.add_ge({var: 1}, 1)
        else:
            partial.add_eq({ext: 1}, 0)
    return partial


def _bound_patches(
    cs: ConditionalSystem, assignment: Mapping[str, bool | None]
) -> dict[VarId, BoundPatch]:
    """The decided part of an assignment as variable-bound patches.

    ``support:tau`` becomes ``lower(ext) = 1``, ``absent:tau`` becomes
    ``upper(ext) = 0`` and each ``attr-total`` conditional becomes
    ``lower(var) = 1`` — no new rows, ever.
    """
    patches: dict[VarId, BoundPatch] = {}

    def tighten(var: VarId, lo: int | None, hi: int | None) -> None:
        old_lo, old_hi = patches.get(var, (None, None))
        if lo is not None and (old_lo is None or lo > old_lo):
            old_lo = lo
        if hi is not None and (old_hi is None or hi < old_hi):
            old_hi = hi
        patches[var] = (old_lo, old_hi)

    for tau, decided in assignment.items():
        if decided is None:
            continue
        ext = cs.ext_var[tau]
        if decided:
            tighten(ext, 1, None)
            for var in cs.requires_if_present.get(tau, ()):
                tighten(var, 1, None)
        else:
            tighten(ext, None, 0)
    return patches


def _unreachable_positive(
    cs: ConditionalSystem, values: Mapping[VarId, int]
) -> frozenset[str]:
    """Positive symbols not reachable from the root via positive edges."""
    positive = {
        symbol for symbol, var in cs.ext_var.items() if values.get(var, 0) > 0
    }
    if cs.root not in positive:
        return frozenset(positive)
    adjacency: dict[str, set[str]] = {}
    for occ_var, parent, child in cs.edges:
        if values.get(occ_var, 0) > 0:
            adjacency.setdefault(parent, set()).add(child)
    reached = {cs.root}
    frontier = [cs.root]
    while frontier:
        node = frontier.pop()
        for child in adjacency.get(node, ()):
            if child in reached:
                continue
            reached.add(child)
            frontier.append(child)
    return frozenset(positive - reached)


def _connectivity_cut(
    cs: ConditionalSystem, unreachable: frozenset[str]
) -> dict[VarId, int]:
    """``sum(occ edges entering U from outside) >= 1`` coefficient map."""
    cut: dict[VarId, int] = {}
    for occ_var, parent, child in cs.edges:
        if child in unreachable and parent not in unreachable:
            cut[occ_var] = cut.get(occ_var, 0) + 1
    return cut


def _satisfies_conditionals(
    cs: ConditionalSystem, values: Mapping[VarId, int]
) -> bool:
    """Do the values satisfy every ``present -> required`` conditional?"""
    for tau in cs.element_types:
        if values.get(cs.ext_var[tau], 0) > 0:
            for var in cs.requires_if_present.get(tau, ()):
                if values.get(var, 0) < 1:
                    return False
    return True


class _ExactTwin:
    """Lazily-built certified twin of an :class:`AssembledSystem`.

    The warm exact backend (:class:`ExactAssembledSystem`) shares the base
    system and the cut-pool indices with the float engine, so a leaf can be
    handed the *same* patch lists either way.  Construction is deferred to
    the first exact solve (most scipy-backed searches never need it); cuts
    learned before that are replayed at build time and cuts learned after
    are mirrored by :meth:`notify_cut`, keeping pool indices aligned.
    """

    def __init__(self, assembled: AssembledSystem):
        self._assembled = assembled
        self._exact: ExactAssembledSystem | None = None

    @property
    def built(self) -> bool:
        return self._exact is not None

    def get(self) -> ExactAssembledSystem:
        if self._exact is None:
            self._exact = ExactAssembledSystem(self._assembled.system)
            for i in range(self._assembled.num_cuts):
                row = self._assembled.cut_row(i)
                self._exact.add_cut(dict(row.coeffs), row.rhs, label=row.label)
        return self._exact

    def notify_cut(self, coeffs: Mapping[VarId, int], rhs: int, label: str) -> None:
        if self._exact is not None:
            self._exact.add_cut(coeffs, rhs, label=label)

    def solve(
        self,
        patches: Mapping[VarId, BoundPatch],
        active: set[int],
        stats: CondSolveStats,
    ) -> SolveResult:
        """Warm certified solve, with work counters folded into ``stats``."""
        exact = self.get()
        before = (exact.stats.nodes, exact.stats.pivots, exact.stats.warm_solves)
        result = exact.solve_int(patches, active)
        stats.exact_nodes += exact.stats.nodes - before[0]
        stats.exact_pivots += exact.stats.pivots - before[1]
        stats.exact_warm_solves += exact.stats.warm_solves - before[2]
        return result


class _CutPool:
    """Connectivity cuts shared across leaves, with presence guards.

    A cut learned for unreachable set ``U`` asserts ``sum(occ entering U
    from outside) >= 1`` — valid for every tree-realizable solution in
    which *some* element type of ``U`` is present (the root-to-node path
    must cross into ``U``), and trivially violated when all of ``U`` is
    absent (totality zeroes every entering edge).  Each entry therefore
    carries its guard and is only activated for nodes whose decided-present
    set intersects it.  Entries are mirrored into the certified exact twin
    (when built) so both backends agree on cut indices.
    """

    def __init__(self, assembled: AssembledSystem, exact_twin: "_ExactTwin | None" = None):
        self._assembled = assembled
        self._exact_twin = exact_twin
        self._guards: list[frozenset[str]] = []
        self._origin: list[int] = []

    def __len__(self) -> int:
        return len(self._guards)

    def add(
        self, coeffs: Mapping[VarId, int], guard: frozenset[str], origin_leaf: int,
        label: str = "",
    ) -> None:
        self._assembled.add_cut(coeffs, 1, label=label)
        if self._exact_twin is not None:
            self._exact_twin.notify_cut(coeffs, 1, label)
        self._guards.append(guard)
        self._origin.append(origin_leaf)

    def active_for(self, present: set[str]) -> set[int]:
        return {
            i for i, guard in enumerate(self._guards) if guard & present
        }

    def shared_hits(self, active: set[int], current_leaf: int) -> int:
        """How many active cuts were learned by a different leaf?"""
        return sum(1 for i in active if self._origin[i] != current_leaf)


class _ClauseIndex:
    """Premise/alternative -> clause index, for worklist propagation."""

    def __init__(self, clauses: tuple[SupportClause, ...]):
        self.clauses = clauses
        by_symbol: dict[str, list[int]] = {}
        for index, clause in enumerate(clauses):
            by_symbol.setdefault(clause.premise, []).append(index)
            for alternative in clause.alternatives:
                by_symbol.setdefault(alternative, []).append(index)
        self.by_symbol = {
            symbol: tuple(indices) for symbol, indices in by_symbol.items()
        }


def _propagate_indexed(
    index: _ClauseIndex,
    assignment: dict[str, bool | None],
    seeds: list[str],
    stats: CondSolveStats,
) -> bool:
    """Worklist unit propagation from the seed symbols; False on conflict.

    Only clauses watching a changed symbol are re-examined, replacing the
    all-clauses rescan-until-fixpoint of the original implementation.
    Sound for the same reason: a clause's state only changes when one of
    its symbols (premise or alternative) changes value.
    """
    queue = list(seeds)
    clauses = index.clauses
    by_symbol = index.by_symbol
    while queue:
        symbol = queue.pop()
        for clause_id in by_symbol.get(symbol, ()):
            clause = clauses[clause_id]
            stats.propagation_visits += 1
            if assignment.get(clause.premise) is not True:
                continue
            if any(assignment.get(a) is True for a in clause.alternatives):
                continue
            open_alts = [
                a for a in clause.alternatives if assignment.get(a) is None
            ]
            if not open_alts:
                return False
            if len(open_alts) == 1:
                assignment[open_alts[0]] = True
                queue.append(open_alts[0])
    return True


def _propagate(
    cs: ConditionalSystem, assignment: dict[str, bool | None]
) -> bool:
    """Unit-propagate support clauses; False on conflict.

    Reference implementation (rescan to fixpoint), kept for the
    ``incremental=False`` path and as the differential oracle for
    :func:`_propagate_indexed`.
    """
    changed = True
    while changed:
        changed = False
        for clause in cs.clauses:
            if assignment.get(clause.premise) is not True:
                continue
            if any(assignment.get(a) is True for a in clause.alternatives):
                continue
            open_alts = [
                a for a in clause.alternatives if assignment.get(a) is None
            ]
            if not open_alts:
                return False
            if len(open_alts) == 1:
                assignment[open_alts[0]] = True
                changed = True
    return True


def _solve_leaf(
    cs: ConditionalSystem,
    leaf: LinearSystem,
    solve: Callable[[LinearSystem], SolveResult],
    stats: CondSolveStats,
    max_cut_rounds: int,
) -> SolveResult:
    """Solve a from-scratch leaf ILP, iterating connectivity cuts locally.

    Used by the ``incremental=False`` reference path; cuts found here are
    discarded when the leaf is abandoned.
    """
    for _ in range(max_cut_rounds):
        stats.leaves_solved += 1
        stats.assemblies += 1
        result = solve(leaf)
        if not result.feasible:
            return result
        unreachable = _unreachable_positive(cs, result.values)
        if not unreachable:
            return result
        cut = _connectivity_cut(cs, unreachable)
        if not cut:
            # No occurrence site can ever feed U from outside: with these
            # supports fixed positive, no tree exists.
            return SolveResult(
                "infeasible",
                message=f"positive types {sorted(unreachable)} cannot be connected",
            )
        stats.cuts_added += 1
        leaf.add_ge(cut, 1, label=f"connect:{','.join(sorted(unreachable)[:4])}")
    raise SolverError("connectivity cut loop did not converge")


def _solve_leaf_exact_cold(
    assembled: AssembledSystem,
    patches: Mapping[VarId, BoundPatch],
    active: set[int],
    stats: CondSolveStats,
) -> SolveResult:
    """Cold certified solve on a materialized leaf (reference path)."""
    exact_stats = ExactStats()
    result = solve_exact(
        assembled.materialize(patches, active), warm=False, stats=exact_stats
    )
    stats.exact_nodes += exact_stats.nodes
    stats.exact_pivots += exact_stats.pivots
    return result


def _solve_leaf_assembled(
    cs: ConditionalSystem,
    assembled: AssembledSystem,
    pool: _CutPool,
    assignment: Mapping[str, bool],
    backend: str,
    stats: CondSolveStats,
    max_cut_rounds: int,
    leaf_id: int,
    exact_twin: _ExactTwin,
    exact_warm: bool,
) -> SolveResult:
    """Solve a leaf by patching bounds on the assembled system.

    Connectivity cuts discovered here go into the shared pool (guarded by
    their unreachable set) so later leaves inherit them for free.  Both
    backends take the same ``(patches, active)`` pair: the float engine
    patches its bound arrays, the certified engine dual-simplex-patches a
    warm basis (``exact_warm=False`` falls back to a cold solve of the
    materialized leaf, the reference the fuzz harness checks against).
    """
    patches = _bound_patches(cs, assignment)
    present = {tau for tau, decided in assignment.items() if decided}
    # The foreign active set is fixed for the whole leaf (cuts added during
    # the rounds carry this leaf's id), so count the pool hit once.
    if pool.shared_hits(pool.active_for(present), leaf_id):
        stats.cut_pool_hits += 1

    def certify(active: set[int]) -> SolveResult:
        if exact_warm:
            return exact_twin.solve(patches, active, stats)
        return _solve_leaf_exact_cold(assembled, patches, active, stats)

    for _ in range(max_cut_rounds):
        stats.leaves_solved += 1
        active = pool.active_for(present)
        if backend == "exact":
            result = certify(active)
        else:
            stats.bound_patch_solves += 1
            result = assembled.solve_int(patches, active)
            if result.status == "error":
                # Floating-point trouble: certify with the exact solver.
                result = certify(active)
        if not result.feasible:
            return result
        unreachable = _unreachable_positive(cs, result.values)
        if not unreachable:
            return result
        cut = _connectivity_cut(cs, unreachable)
        if not cut:
            return SolveResult(
                "infeasible",
                message=f"positive types {sorted(unreachable)} cannot be connected",
            )
        stats.cuts_added += 1
        guard = unreachable & set(cs.element_types)
        if not guard:  # pragma: no cover - totality makes this impossible
            raise SolverError("connectivity cut with no element-type guard")
        pool.add(
            cut,
            frozenset(guard),
            leaf_id,
            label=f"connect:{','.join(sorted(unreachable)[:4])}",
        )
    raise SolverError("connectivity cut loop did not converge")


def _make_solver(
    backend: str, exact_warm: bool, stats: CondSolveStats
) -> Callable[[LinearSystem], SolveResult]:
    """A robust solve function: scipy with exact fallback, or exact only.

    ``exact_warm`` selects basis reuse *within* each certified solve (the
    rebuild path constructs a fresh system per leaf, so there is no state
    to carry across calls); work counters land in ``stats``.
    """
    if backend not in ("exact", "scipy"):
        raise SolverError(f"unknown backend {backend!r}")

    def solve(system: LinearSystem) -> SolveResult:
        exact_stats = ExactStats()
        if backend == "exact":
            result = solve_exact(system, warm=exact_warm, stats=exact_stats)
        else:
            result = solve_milp_certified(
                system, exact_warm=exact_warm, exact_stats=exact_stats
            )
        stats.exact_nodes += exact_stats.nodes
        stats.exact_pivots += exact_stats.pivots
        stats.exact_warm_solves += exact_stats.warm_solves
        return result

    return solve


def solve_conditional_system(
    cs: ConditionalSystem,
    backend: str = "scipy",
    max_support_nodes: int = 20000,
    max_cut_rounds: int = 200,
    lp_prune: bool = True,
    incremental: bool = True,
    exact_warm: bool = True,
) -> tuple[SolveResult, CondSolveStats]:
    """Decide the conditional system; return a realizable solution if any.

    The returned solution (when feasible) satisfies the base rows, all
    conditionals, and the connectivity side condition — i.e. it is
    realizable as an XML tree by :mod:`repro.witness`.

    ``incremental=False`` selects the from-scratch reference path (one
    matrix assembly per solve, no cut sharing); ``exact_warm=False``
    selects the cold per-node refactorization path of the certified
    backend.  Both exist for differential testing and ablation, and must
    always agree with the defaults.
    """
    if backend not in ("scipy", "exact"):
        raise SolverError(f"unknown backend {backend!r}")
    stats = CondSolveStats()

    assignment: dict[str, bool | None] = {tau: None for tau in cs.element_types}
    for tau in cs.forced_true:
        assignment[tau] = True
    for tau in cs.forced_false:
        if assignment.get(tau) is True:
            return (
                SolveResult(
                    "infeasible",
                    message=f"type {tau} is both required and unusable",
                ),
                stats,
            )
        assignment[tau] = False
    assignment[cs.root] = True

    if incremental:
        return _solve_incremental(
            cs, assignment, backend, max_support_nodes, max_cut_rounds,
            lp_prune, stats, exact_warm,
        )
    return _solve_rebuild(
        cs, assignment, backend, max_support_nodes, max_cut_rounds,
        lp_prune, stats, exact_warm,
    )


def _branching_order(cs: ConditionalSystem) -> list[str]:
    """Constrained types first (their supports interact with Sigma), then
    DTD order — via a precomputed position map, not repeated .index()."""
    involved = set(cs.requires_if_present) | {
        clause.premise for clause in cs.clauses
    }
    position = {tau: i for i, tau in enumerate(cs.element_types)}
    return sorted(
        cs.element_types,
        key=lambda tau: (tau not in involved, position[tau]),
    )


def _solve_incremental(
    cs: ConditionalSystem,
    assignment: dict[str, bool | None],
    backend: str,
    max_support_nodes: int,
    max_cut_rounds: int,
    lp_prune: bool,
    stats: CondSolveStats,
    exact_warm: bool,
) -> tuple[SolveResult, CondSolveStats]:
    """Assemble-once/bound-patch support search (DESIGN.md section 4)."""
    clause_index = _ClauseIndex(cs.clauses)
    seeds = [tau for tau, value in assignment.items() if value is not None]
    if not _propagate_indexed(clause_index, assignment, seeds, stats):
        return SolveResult("infeasible", message="support propagation conflict"), stats

    assembled = AssembledSystem(cs.base)
    stats.assemblies = assembled.assemblies
    exact_twin = _ExactTwin(assembled)
    pool = _CutPool(assembled, exact_twin)
    leaf_counter = 0

    # Single LP probe of the root relaxation: definite infeasibility
    # refutes every support completion at once, and an integral vertex
    # that passes the exact checks is already a realizable answer.
    root_probed = False
    if lp_prune and backend == "scipy":
        root_patches = _bound_patches(cs, assignment)
        status, candidate = assembled.lp_probe(root_patches, set())
        stats.bound_patch_solves += 1
        root_probed = status != "unknown"
        if status == "infeasible":
            stats.lp_probe_decided = True
            return (
                SolveResult("infeasible", message="root LP relaxation infeasible"),
                stats,
            )
        if (
            status == "feasible"
            and candidate is not None
            and not assembled.check_values(candidate, root_patches, set())
            and _satisfies_conditionals(cs, candidate)
            and not _unreachable_positive(cs, candidate)
        ):
            stats.shortcut_hit = True
            stats.lp_probe_decided = True
            return SolveResult("feasible", candidate), stats

    # Shortcut: the maximal support (everything not forced out present) is
    # often feasible and found in one leaf solve.
    maximal = dict(assignment)
    for tau in cs.element_types:
        if maximal[tau] is None:
            maximal[tau] = True
    if _propagate_indexed(
        clause_index, maximal, list(cs.element_types), stats
    ) and all(v is not None for v in maximal.values()):
        leaf_counter += 1
        result = _solve_leaf_assembled(
            cs, assembled, pool, maximal, backend, stats,  # type: ignore[arg-type]
            max_cut_rounds, leaf_counter, exact_twin, exact_warm,
        )
        if result.feasible:
            stats.shortcut_hit = True
            return result, stats

    order = _branching_order(cs)

    def undecided(current: Mapping[str, bool | None]) -> str | None:
        for tau in order:
            if current[tau] is None:
                return tau
        return None

    # Stack entries carry the symbol decided last, seeding propagation.
    stack: list[tuple[dict[str, bool | None], str | None]] = [(assignment, None)]
    first_node = True
    while stack:
        current, decided = stack.pop()
        stats.dfs_nodes += 1
        if stats.dfs_nodes > max_support_nodes:
            raise ComplexityLimitError(
                f"support search exceeded {max_support_nodes} nodes"
            )
        seeds = (
            [decided]
            if decided is not None
            else [tau for tau, value in current.items() if value is not None]
        )
        if not _propagate_indexed(clause_index, current, seeds, stats):
            continue
        if lp_prune and not (first_node and root_probed and len(pool) == 0):
            patches = _bound_patches(cs, current)
            decided_true = {
                tau for tau, value in current.items() if value is True
            }
            active = pool.active_for(decided_true)
            status, _ = assembled.lp_probe(patches, active, want_values=False)
            stats.bound_patch_solves += 1
            if status == "infeasible":
                stats.lp_prunes += 1
                first_node = False
                continue
        first_node = False
        choice = undecided(current)
        if choice is None:
            leaf_counter += 1
            result = _solve_leaf_assembled(
                cs, assembled, pool, current, backend, stats,  # type: ignore[arg-type]
                max_cut_rounds, leaf_counter, exact_twin, exact_warm,
            )
            if result.feasible:
                return result, stats
            continue
        with_false = dict(current)
        with_false[choice] = False
        with_true = dict(current)
        with_true[choice] = True
        stack.append((with_false, choice))
        stack.append((with_true, choice))
    return SolveResult("infeasible", message="support search exhausted"), stats


def _solve_rebuild(
    cs: ConditionalSystem,
    assignment: dict[str, bool | None],
    backend: str,
    max_support_nodes: int,
    max_cut_rounds: int,
    lp_prune: bool,
    stats: CondSolveStats,
    exact_warm: bool,
) -> tuple[SolveResult, CondSolveStats]:
    """From-scratch reference path: rebuild a LinearSystem per node."""
    solve = _make_solver(backend, exact_warm, stats)

    if not _propagate(cs, assignment):
        return SolveResult("infeasible", message="support propagation conflict"), stats

    # Shortcut: the maximal support (everything not forced out present) is
    # often feasible and found in one leaf solve.
    maximal = dict(assignment)
    for tau in cs.element_types:
        if maximal[tau] is None:
            maximal[tau] = True
    if _propagate(cs, maximal) and all(v is not None for v in maximal.values()):
        result = _solve_leaf(
            cs, _leaf_rows(cs, maximal), solve, stats, max_cut_rounds  # type: ignore[arg-type]
        )
        if result.feasible:
            stats.shortcut_hit = True
            return result, stats

    order = _branching_order(cs)

    def undecided(current: Mapping[str, bool | None]) -> str | None:
        for tau in order:
            if current[tau] is None:
                return tau
        return None

    stack: list[dict[str, bool | None]] = [assignment]
    while stack:
        current = stack.pop()
        stats.dfs_nodes += 1
        if stats.dfs_nodes > max_support_nodes:
            raise ComplexityLimitError(
                f"support search exceeded {max_support_nodes} nodes"
            )
        if not _propagate(cs, current):
            continue
        if lp_prune:
            stats.assemblies += 1
            if lp_infeasible(_partial_rows(cs, current)):
                stats.lp_prunes += 1
                continue
        choice = undecided(current)
        if choice is None:
            result = _solve_leaf(
                cs, _leaf_rows(cs, current), solve, stats, max_cut_rounds  # type: ignore[arg-type]
            )
            if result.feasible:
                return result, stats
            continue
        with_false = dict(current)
        with_false[choice] = False
        with_true = dict(current)
        with_true[choice] = True
        stack.append(with_false)
        stack.append(with_true)
    return SolveResult("infeasible", message="support search exhausted"), stats
