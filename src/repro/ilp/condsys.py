"""Conditional linear systems with tree-connectivity side conditions.

The combined system of Theorem 4.1 is ``Psi(D, Sigma) = Psi_DN ∪ C_Sigma ∪
{ |ext(tau)| > 0 -> |ext(tau.l)| > 0 }``. Two features fall outside plain
ILP:

1. the **conditionals** — the paper big-M-encodes them with the
   (astronomical) Papadimitriou bound; we instead branch on the *support*:
   which element types have ``|ext(tau)| >= 1``. Once supports are fixed,
   each conditional becomes a plain linear row.
2. the **connectivity side condition** — an integer solution is realizable
   as a tree only if every positive element type is reachable from the root
   through positive occurrence variables (DESIGN.md section 3; this repairs
   the glossed step in the paper's Lemma 4.5). With supports fixed we
   enforce it with iterated connectivity cuts: whenever the solution leaves
   a positive set ``U`` unreachable, the valid inequality
   ``sum(occ edges entering U from outside) >= 1`` is added and the leaf is
   re-solved.

The search propagates *support clauses* (Horn-style implications derived
from the DTD rules and the inclusion constraints) and prunes with LP
relaxations; every answer is exact because pruning only uses definite LP
infeasibility and every leaf solution is verified integer-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

from repro.errors import ComplexityLimitError, SolverError
from repro.ilp.exact import solve_exact
from repro.ilp.model import LinearSystem, SolveResult, VarId
from repro.ilp.scipy_backend import lp_infeasible, solve_milp


@dataclass(frozen=True)
class SupportClause:
    """``s(premise) -> OR s(a) for a in alternatives``.

    An empty alternative set means the premise can never be present.
    """

    premise: str
    alternatives: frozenset[str]


@dataclass
class ConditionalSystem:
    """A linear system plus support conditionals and connectivity data.

    Attributes
    ----------
    base:
        The unconditional linear rows (``Psi_DN`` and ``C_Sigma``).
    ext_var:
        Maps each node symbol (element types and the text symbol) to its
        ``|ext(.)|`` variable.
    root:
        The root element type (its extent is pinned to 1 in ``base``).
    element_types:
        All element types of the simplified DTD — the support search
        branches exactly over these.
    edges:
        Occurrence sites ``(occ_var, parent_symbol, child_symbol)`` used
        for connectivity checking and cuts.
    requires_if_present:
        Per element type, variables forced ``>= 1`` when the type is
        present (the ``|ext(tau.l)|`` conditionals).
    clauses:
        Support implications for propagation/pruning (sound, not complete —
        completeness comes from exhaustive branching).
    forced_true / forced_false:
        Types whose support is fixed up front (the root and types forced by
        negated constraints; unusable types respectively).
    """

    base: LinearSystem
    ext_var: dict[str, VarId]
    root: str
    element_types: tuple[str, ...]
    edges: tuple[tuple[VarId, str, str], ...]
    requires_if_present: dict[str, tuple[VarId, ...]] = field(default_factory=dict)
    clauses: tuple[SupportClause, ...] = ()
    forced_true: frozenset[str] = frozenset()
    forced_false: frozenset[str] = frozenset()


@dataclass
class CondSolveStats:
    """Search statistics, reported for benchmarks and diagnostics."""

    dfs_nodes: int = 0
    leaves_solved: int = 0
    cuts_added: int = 0
    lp_prunes: int = 0
    shortcut_hit: bool = False


def _leaf_rows(
    cs: ConditionalSystem, assignment: Mapping[str, bool]
) -> LinearSystem:
    """The plain ILP once every element type's support is decided."""
    leaf = cs.base.copy()
    for tau, present in assignment.items():
        ext = cs.ext_var[tau]
        if present:
            leaf.add_ge({ext: 1}, 1, label=f"support:{tau}")
            for var in cs.requires_if_present.get(tau, ()):
                leaf.add_ge({var: 1}, 1, label=f"attr-total:{tau}")
        else:
            leaf.add_eq({ext: 1}, 0, label=f"absent:{tau}")
    return leaf


def _partial_rows(
    cs: ConditionalSystem, assignment: Mapping[str, bool | None]
) -> LinearSystem:
    """Relaxation used for pruning: only decided supports constrained."""
    partial = cs.base.copy()
    for tau, decided in assignment.items():
        if decided is None:
            continue
        ext = cs.ext_var[tau]
        if decided:
            partial.add_ge({ext: 1}, 1)
            for var in cs.requires_if_present.get(tau, ()):
                partial.add_ge({var: 1}, 1)
        else:
            partial.add_eq({ext: 1}, 0)
    return partial


def _unreachable_positive(
    cs: ConditionalSystem, values: Mapping[VarId, int]
) -> frozenset[str]:
    """Positive symbols not reachable from the root via positive edges."""
    positive = {
        symbol for symbol, var in cs.ext_var.items() if values.get(var, 0) > 0
    }
    if cs.root not in positive:
        return frozenset(positive)
    adjacency: dict[str, set[str]] = {}
    for occ_var, parent, child in cs.edges:
        if values.get(occ_var, 0) > 0:
            adjacency.setdefault(parent, set()).add(child)
    reached = {cs.root}
    frontier = [cs.root]
    while frontier:
        node = frontier.pop()
        for child in adjacency.get(node, ()):
            if child in reached:
                continue
            reached.add(child)
            frontier.append(child)
    return frozenset(positive - reached)


def _solve_leaf(
    cs: ConditionalSystem,
    leaf: LinearSystem,
    solve: Callable[[LinearSystem], SolveResult],
    stats: CondSolveStats,
    max_cut_rounds: int,
) -> SolveResult:
    """Solve a leaf ILP, iterating connectivity cuts to a fixpoint."""
    for _ in range(max_cut_rounds):
        stats.leaves_solved += 1
        result = solve(leaf)
        if not result.feasible:
            return result
        unreachable = _unreachable_positive(cs, result.values)
        if not unreachable:
            return result
        cut: dict[VarId, int] = {}
        for occ_var, parent, child in cs.edges:
            if child in unreachable and parent not in unreachable:
                cut[occ_var] = cut.get(occ_var, 0) + 1
        if not cut:
            # No occurrence site can ever feed U from outside: with these
            # supports fixed positive, no tree exists.
            return SolveResult(
                "infeasible",
                message=f"positive types {sorted(unreachable)} cannot be connected",
            )
        stats.cuts_added += 1
        leaf.add_ge(cut, 1, label=f"connect:{','.join(sorted(unreachable)[:4])}")
    raise SolverError("connectivity cut loop did not converge")


def _propagate(
    cs: ConditionalSystem, assignment: dict[str, bool | None]
) -> bool:
    """Unit-propagate support clauses; False on conflict."""
    changed = True
    while changed:
        changed = False
        for clause in cs.clauses:
            if assignment.get(clause.premise) is not True:
                continue
            if any(assignment.get(a) is True for a in clause.alternatives):
                continue
            open_alts = [
                a for a in clause.alternatives if assignment.get(a) is None
            ]
            if not open_alts:
                return False
            if len(open_alts) == 1:
                assignment[open_alts[0]] = True
                changed = True
    return True


def _make_solver(backend: str) -> Callable[[LinearSystem], SolveResult]:
    """A robust solve function: scipy with exact fallback, or exact only."""
    if backend == "exact":
        return lambda system: solve_exact(system)
    if backend != "scipy":
        raise SolverError(f"unknown backend {backend!r}")

    def solve(system: LinearSystem) -> SolveResult:
        result = solve_milp(system)
        if result.status == "error":
            # Floating-point trouble: certify with the exact solver.
            return solve_exact(system)
        return result

    return solve


def solve_conditional_system(
    cs: ConditionalSystem,
    backend: str = "scipy",
    max_support_nodes: int = 20000,
    max_cut_rounds: int = 200,
    lp_prune: bool = True,
) -> tuple[SolveResult, CondSolveStats]:
    """Decide the conditional system; return a realizable solution if any.

    The returned solution (when feasible) satisfies the base rows, all
    conditionals, and the connectivity side condition — i.e. it is
    realizable as an XML tree by :mod:`repro.witness`.
    """
    stats = CondSolveStats()
    solve = _make_solver(backend)

    assignment: dict[str, bool | None] = {tau: None for tau in cs.element_types}
    for tau in cs.forced_true:
        assignment[tau] = True
    for tau in cs.forced_false:
        if assignment.get(tau) is True:
            return (
                SolveResult(
                    "infeasible",
                    message=f"type {tau} is both required and unusable",
                ),
                stats,
            )
        assignment[tau] = False
    assignment[cs.root] = True

    if not _propagate(cs, assignment):
        return SolveResult("infeasible", message="support propagation conflict"), stats

    # Shortcut: the maximal support (everything not forced out present) is
    # often feasible and found in one leaf solve.
    maximal = dict(assignment)
    for tau in cs.element_types:
        if maximal[tau] is None:
            maximal[tau] = True
    if _propagate(cs, maximal) and all(v is not None for v in maximal.values()):
        result = _solve_leaf(
            cs, _leaf_rows(cs, maximal), solve, stats, max_cut_rounds  # type: ignore[arg-type]
        )
        if result.feasible:
            stats.shortcut_hit = True
            return result, stats

    # Branching order: constrained types first (their supports interact with
    # Sigma), then DTD order.
    involved = set(cs.requires_if_present) | {
        clause.premise for clause in cs.clauses
    }
    order = sorted(
        cs.element_types,
        key=lambda tau: (tau not in involved, cs.element_types.index(tau)),
    )

    def undecided(current: Mapping[str, bool | None]) -> str | None:
        for tau in order:
            if current[tau] is None:
                return tau
        return None

    stack: list[dict[str, bool | None]] = [assignment]
    while stack:
        current = stack.pop()
        stats.dfs_nodes += 1
        if stats.dfs_nodes > max_support_nodes:
            raise ComplexityLimitError(
                f"support search exceeded {max_support_nodes} nodes"
            )
        if not _propagate(cs, current):
            continue
        if lp_prune and lp_infeasible(_partial_rows(cs, current)):
            stats.lp_prunes += 1
            continue
        choice = undecided(current)
        if choice is None:
            result = _solve_leaf(
                cs, _leaf_rows(cs, current), solve, stats, max_cut_rounds  # type: ignore[arg-type]
            )
            if result.feasible:
                return result, stats
            continue
        with_false = dict(current)
        with_false[choice] = False
        with_true = dict(current)
        with_true[choice] = True
        stack.append(with_false)
        stack.append(with_true)
    return SolveResult("infeasible", message="support search exhausted"), stats
