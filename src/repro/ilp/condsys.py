"""Conditional linear systems with tree-connectivity side conditions.

The combined system of Theorem 4.1 is ``Psi(D, Sigma) = Psi_DN ∪ C_Sigma ∪
{ |ext(tau)| > 0 -> |ext(tau.l)| > 0 }``. Two features fall outside plain
ILP:

1. the **conditionals** — the paper big-M-encodes them with the
   (astronomical) Papadimitriou bound; we instead branch on the *support*:
   which element types have ``|ext(tau)| >= 1``. Once supports are fixed,
   each conditional becomes a plain linear row.
2. the **connectivity side condition** — an integer solution is realizable
   as a tree only if every positive element type is reachable from the root
   through positive occurrence variables (DESIGN.md section 3; this repairs
   the glossed step in the paper's Lemma 4.5). With supports fixed we
   enforce it with iterated connectivity cuts: whenever the solution leaves
   a positive set ``U`` unreachable, the valid inequality
   ``sum(occ edges entering U from outside) >= 1`` is added and the leaf is
   re-solved.

The search propagates *support clauses* (Horn-style implications derived
from the DTD rules and the inclusion constraints) and prunes with LP
relaxations; every answer is exact because pruning only uses definite LP
infeasibility and every leaf solution is verified integer-exactly.

Incremental core (DESIGN.md section 4): every per-node delta is a
*variable-bound* change, so the base system is assembled exactly once
(:class:`repro.ilp.assembled.AssembledSystem`) and each DFS node or LP
prune patches bound arrays instead of rebuilding matrices.  Connectivity
cuts go into a pool shared across leaves: a cut learned for an unreachable
set ``U`` is valid for *any* solution in which some member of ``U`` is
present (the root-to-member path must enter ``U`` from outside), so each
pool entry carries ``U`` as its guard and is activated exactly when the
current support decisions intersect it.  A single LP probe of the root
relaxation decides most instances outright: definite infeasibility refutes
the whole search, and an integral vertex that passes the exact row check,
the conditionals and the connectivity check is already a realizable answer.

The certified backend shares the same shape (DESIGN.md section 5): a
lazily-built :class:`repro.ilp.exact.ExactAssembledSystem` twin takes the
identical ``(patches, active)`` pair per leaf and re-solves by dual-simplex
bound patches on a warm basis, with pool cuts mirrored so indices align;
``exact_warm=False`` falls back to cold solves of materialized leaves for
differential testing.

Toggleable rows (DESIGN.md section 6) extend the bound-patch discipline to
row *subsets*: a :class:`ConditionalSystem` may register base rows as
toggleable, and :func:`solve_conditional_system` takes ``active_rows`` —
the subset to keep — plus a :class:`SolveWorkspace` that shares the
assembled system, the certified twin and the cut pool across calls.  This
is the diagnostics workload: one assembly of ``Psi(D, Sigma ∪ ¬Sigma)``,
then one patched re-solve per probed constraint subset.

Parallel support-branch solving (DESIGN.md section 7): support branches
are independent, so ``solve_conditional_system(..., jobs=N)`` expands the
root of the search into a frontier of propagated subproblems and fans
them across a fork-based :class:`WorkerPool`.  Neither the persistent
HiGHS instances nor the live exact factorization are shareable across
workers, so each worker owns a full workspace — its own
:class:`SolveWorkspace` built worker-side over the pickled base (the
equivalent of :meth:`SolveWorkspace.clone` for state that cannot cross
the process boundary), with its own :class:`AssembledSystem`,
lazily-built :class:`ExactAssembledSystem` twin and *local* cut pool;
pools are
reconciled at wave boundaries by :meth:`_CutPool.merge` — a guarded
dedup keyed on the canonical coefficient form and the guard set — so a
cut learned on one branch prunes sibling branches dispatched in later
waves.  Verdicts are schedule-independent: the frontier partitions the
support completions exactly, merged cuts are valid under every subset
(their justification is structural), and a feasible answer from any
worker is exact-checked like every other leaf.
"""

from __future__ import annotations

import contextvars
import multiprocessing
import os
import queue
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.budget import check_deadline
from repro.errors import (
    BudgetExceededError,
    ComplexityLimitError,
    SolverError,
    WorkerCrashError,
)
from repro.service.faults import fault_active, fault_seconds
from repro.ilp.assembled import AssembledSystem
from repro.ilp.exact import ExactAssembledSystem, ExactStats, solve_exact
from repro.ilp.model import (
    BoundPatch,
    LinearSystem,
    SolveResult,
    VarId,
    canonical_coeffs,
)
from repro.ilp.scipy_backend import lp_infeasible, solve_milp_certified


@dataclass(frozen=True)
class SupportClause:
    """``s(premise) -> OR s(a) for a in alternatives``.

    An empty alternative set means the premise can never be present.
    """

    premise: str
    alternatives: frozenset[str]


@dataclass
class ConditionalSystem:
    """A linear system plus support conditionals and connectivity data.

    Attributes
    ----------
    base:
        The unconditional linear rows (``Psi_DN`` and ``C_Sigma``).
    ext_var:
        Maps each node symbol (element types and the text symbol) to its
        ``|ext(.)|`` variable.
    root:
        The root element type (its extent is pinned to 1 in ``base``).
    element_types:
        All element types of the simplified DTD — the support search
        branches exactly over these.
    edges:
        Occurrence sites ``(occ_var, parent_symbol, child_symbol)`` used
        for connectivity checking and cuts.
    requires_if_present:
        Per element type, variables forced ``>= 1`` when the type is
        present (the ``|ext(tau.l)|`` conditionals).
    clauses:
        Support implications for propagation/pruning (sound, not complete —
        completeness comes from exhaustive branching).
    forced_true / forced_false:
        Types whose support is fixed up front (the root and types forced by
        negated constraints; unusable types respectively).
    toggleable_rows:
        Base-row indices registered as toggleable (the per-constraint
        ``C_Sigma`` and negated-constraint rows).  ``active_rows`` on
        :func:`solve_conditional_system` selects a subset of these; rows
        outside this set are always active.
    toggleable_clauses:
        Indices into :attr:`clauses` of the support clauses contributed by
        toggleable constraints.  Clauses outside this set depend only on
        the DTD and stay active under every probe, which lets workspace
        batches cache their closure.
    """

    base: LinearSystem
    ext_var: dict[str, VarId]
    root: str
    element_types: tuple[str, ...]
    edges: tuple[tuple[VarId, str, str], ...]
    requires_if_present: dict[str, tuple[VarId, ...]] = field(default_factory=dict)
    clauses: tuple[SupportClause, ...] = ()
    forced_true: frozenset[str] = frozenset()
    forced_false: frozenset[str] = frozenset()
    toggleable_rows: frozenset[int] = frozenset()
    toggleable_clauses: frozenset[int] = frozenset()


@dataclass
class CondSolveStats:
    """Search statistics, reported for benchmarks and diagnostics."""

    dfs_nodes: int = 0
    leaves_solved: int = 0
    cuts_added: int = 0
    lp_prunes: int = 0
    shortcut_hit: bool = False
    #: Full matrix assemblies performed (1 on the incremental path).
    assemblies: int = 0
    #: Solves served by patching the assembled system's bound arrays.
    bound_patch_solves: int = 0
    #: Leaf solves at which a cut learned by an *earlier* leaf was active.
    cut_pool_hits: int = 0
    #: Clause examinations during unit propagation (worklist work).
    propagation_visits: int = 0
    #: The root LP probe decided the instance by itself.
    lp_probe_decided: bool = False
    #: Branch-and-bound nodes expanded by the certified exact backend.
    exact_nodes: int = 0
    #: Dual-simplex pivots performed by the certified exact backend.
    exact_pivots: int = 0
    #: Exact LP re-solves served warm from a carried-over basis.
    exact_warm_solves: int = 0
    #: Worker processes this solve fanned subproblems across (0 when the
    #: search ran sequentially — including jobs>1 calls decided before any
    #: branching happened).
    workers_spawned: int = 0
    #: Frontier dispatch rounds; cut pools are reconciled between waves.
    parallel_waves: int = 0
    #: Worker-discovered cuts accepted into the shared pool by the merge
    #: policy (post-dedup).
    cuts_merged: int = 0
    #: Worker-discovered cuts dropped as duplicates during merges.
    cut_merge_duplicates: int = 0
    #: Worker processes that died mid-solve (detected by exitcode).
    workers_crashed: int = 0
    #: Replacement workers forked after a crash (bounded by the pool's
    #: respawn budget).
    workers_respawned: int = 0
    #: Tasks requeued because the worker running them died.
    tasks_requeued: int = 0
    #: The pool was lost beyond recovery and the solve re-ran on the
    #: sequential ``jobs=1`` path (verdict byte-identical by construction).
    parallel_degraded: bool = False

    def absorb(self, worker: "CondSolveStats | Mapping[str, int | bool]") -> None:
        """Fold a worker's counters into this (parent) stats object.

        Integer counters add; boolean flags OR.  Used when reconciling the
        per-worker :class:`CondSolveStats` of a parallel solve, so the
        parent's totals account for all work done anywhere.
        """
        values = worker if isinstance(worker, Mapping) else asdict(worker)
        for name, value in values.items():
            current = getattr(self, name)
            if isinstance(current, bool):
                setattr(self, name, current or bool(value))
            else:
                setattr(self, name, current + int(value))


def _leaf_rows(
    cs: ConditionalSystem, assignment: Mapping[str, bool]
) -> LinearSystem:
    """The plain ILP once every element type's support is decided.

    This is the from-scratch (``incremental=False``) construction, kept as
    the reference the bound-patching path is differentially tested against.
    """
    leaf = cs.base.copy()
    for tau, present in assignment.items():
        ext = cs.ext_var[tau]
        if present:
            leaf.add_ge({ext: 1}, 1, label=f"support:{tau}")
            for var in cs.requires_if_present.get(tau, ()):
                leaf.add_ge({var: 1}, 1, label=f"attr-total:{tau}")
        else:
            leaf.add_eq({ext: 1}, 0, label=f"absent:{tau}")
    return leaf


def _partial_rows(
    cs: ConditionalSystem, assignment: Mapping[str, bool | None]
) -> LinearSystem:
    """Relaxation used for pruning: only decided supports constrained."""
    partial = cs.base.copy()
    for tau, decided in assignment.items():
        if decided is None:
            continue
        ext = cs.ext_var[tau]
        if decided:
            partial.add_ge({ext: 1}, 1)
            for var in cs.requires_if_present.get(tau, ()):
                partial.add_ge({var: 1}, 1)
        else:
            partial.add_eq({ext: 1}, 0)
    return partial


def _bound_patches(
    cs: ConditionalSystem, assignment: Mapping[str, bool | None]
) -> dict[VarId, BoundPatch]:
    """The decided part of an assignment as variable-bound patches.

    ``support:tau`` becomes ``lower(ext) = 1``, ``absent:tau`` becomes
    ``upper(ext) = 0`` and each ``attr-total`` conditional becomes
    ``lower(var) = 1`` — no new rows, ever.
    """
    patches: dict[VarId, BoundPatch] = {}

    def tighten(var: VarId, lo: int | None, hi: int | None) -> None:
        old_lo, old_hi = patches.get(var, (None, None))
        if lo is not None and (old_lo is None or lo > old_lo):
            old_lo = lo
        if hi is not None and (old_hi is None or hi < old_hi):
            old_hi = hi
        patches[var] = (old_lo, old_hi)

    for tau, decided in assignment.items():
        if decided is None:
            continue
        ext = cs.ext_var[tau]
        if decided:
            tighten(ext, 1, None)
            for var in cs.requires_if_present.get(tau, ()):
                tighten(var, 1, None)
        else:
            tighten(ext, None, 0)
    return patches


def _unreachable_positive(
    cs: ConditionalSystem, values: Mapping[VarId, int]
) -> frozenset[str]:
    """Positive symbols not reachable from the root via positive edges."""
    positive = {
        symbol for symbol, var in cs.ext_var.items() if values.get(var, 0) > 0
    }
    if cs.root not in positive:
        return frozenset(positive)
    adjacency: dict[str, set[str]] = {}
    for occ_var, parent, child in cs.edges:
        if values.get(occ_var, 0) > 0:
            adjacency.setdefault(parent, set()).add(child)
    reached = {cs.root}
    frontier = [cs.root]
    while frontier:
        node = frontier.pop()
        for child in adjacency.get(node, ()):
            if child in reached:
                continue
            reached.add(child)
            frontier.append(child)
    return frozenset(positive - reached)


def _connectivity_cut(
    cs: ConditionalSystem, unreachable: frozenset[str]
) -> dict[VarId, int]:
    """``sum(occ edges entering U from outside) >= 1`` coefficient map."""
    cut: dict[VarId, int] = {}
    for occ_var, parent, child in cs.edges:
        if child in unreachable and parent not in unreachable:
            cut[occ_var] = cut.get(occ_var, 0) + 1
    return cut


def _satisfies_conditionals(
    cs: ConditionalSystem, values: Mapping[VarId, int]
) -> bool:
    """Do the values satisfy every ``present -> required`` conditional?"""
    for tau in cs.element_types:
        if values.get(cs.ext_var[tau], 0) > 0:
            for var in cs.requires_if_present.get(tau, ()):
                if values.get(var, 0) < 1:
                    return False
    return True


class _ExactTwin:
    """Lazily-built certified twin of an :class:`AssembledSystem`.

    The warm exact backend (:class:`ExactAssembledSystem`) shares the base
    system and the cut-pool indices with the float engine, so a leaf can be
    handed the *same* patch lists either way.  Construction is deferred to
    the first exact solve (most scipy-backed searches never need it); cuts
    learned before that are replayed at build time and cuts learned after
    are mirrored by :meth:`notify_cut`, keeping pool indices aligned.
    """

    def __init__(self, assembled: AssembledSystem):
        self._assembled = assembled
        self._exact: ExactAssembledSystem | None = None

    @property
    def built(self) -> bool:
        return self._exact is not None

    def get(self) -> ExactAssembledSystem:
        if self._exact is None:
            self._exact = ExactAssembledSystem(self._assembled.system)
            for i in range(self._assembled.num_cuts):
                row = self._assembled.cut_row(i)
                self._exact.add_cut(dict(row.coeffs), row.rhs, label=row.label)
        return self._exact

    def notify_cut(self, coeffs: Mapping[VarId, int], rhs: int, label: str) -> None:
        if self._exact is not None:
            self._exact.add_cut(coeffs, rhs, label=label)

    def solve(
        self,
        patches: Mapping[VarId, BoundPatch],
        active: set[int],
        stats: CondSolveStats,
        inactive_rows: frozenset[int] = frozenset(),
    ) -> SolveResult:
        """Warm certified solve, with work counters folded into ``stats``."""
        exact = self.get()
        before = (exact.stats.nodes, exact.stats.pivots, exact.stats.warm_solves)
        result = exact.solve_int(patches, active, inactive_rows=inactive_rows)
        stats.exact_nodes += exact.stats.nodes - before[0]
        stats.exact_pivots += exact.stats.pivots - before[1]
        stats.exact_warm_solves += exact.stats.warm_solves - before[2]
        return result


@dataclass(frozen=True)
class CutRecord:
    """One connectivity cut in transferable form (DESIGN.md section 7).

    The currency of the two-level cut pool: workers
    :meth:`~_CutPool.export` their locally-discovered cuts as records, the
    parent :meth:`~_CutPool.merge`\\ s them into the shared pool, and the
    next dispatch wave seeds sibling workers with the merged set.  The
    right-hand side is always 1 (``sum(occ entering U) >= 1``), so a
    record is fully determined by its coefficients, guard and label.
    """

    coeffs: tuple[tuple[VarId, int], ...]
    guard: frozenset[str]
    label: str = ""

    @property
    def key(self) -> tuple:
        """Dedup key: canonical coefficient form plus the guard set."""
        return (self.coeffs, self.guard)


#: Origin marker for cuts that arrived via :meth:`_CutPool.merge` rather
#: than local discovery — distinct from every real leaf id (those are
#: >= 1), so merged cuts always count as shared-pool hits.
_MERGED_ORIGIN = -1


class _CutPool:
    """Connectivity cuts shared across leaves, with presence guards.

    A cut learned for unreachable set ``U`` asserts ``sum(occ entering U
    from outside) >= 1`` — valid for every tree-realizable solution in
    which *some* element type of ``U`` is present (the root-to-node path
    must cross into ``U``), and trivially violated when all of ``U`` is
    absent (totality zeroes every entering edge).  Each entry therefore
    carries its guard and is only activated for nodes whose decided-present
    set intersects it.  Entries are mirrored into the certified exact twin
    (when built) so both backends agree on cut indices.

    Pools are single-owner (they drive a single-owner
    :class:`AssembledSystem`), but their *contents* move between owners:
    :meth:`export` renders every entry as a :class:`CutRecord` and
    :meth:`merge` imports foreign records under the dedup policy —
    a record is accepted iff no entry with the same canonical
    coefficients *and* guard exists.  Merging never reorders or removes
    existing entries, so cut indices already handed to the engines stay
    valid, and the merge result is independent of the order in which
    worker pools are reconciled (set union under a canonical key).
    """

    def __init__(self, assembled: AssembledSystem, exact_twin: "_ExactTwin | None" = None):
        self._assembled = assembled
        self._exact_twin = exact_twin
        self._guards: list[frozenset[str]] = []
        self._origin: list[int] = []
        self._records: list[CutRecord] = []
        self._keys: set[tuple] = set()

    def __len__(self) -> int:
        return len(self._guards)

    def add(
        self, coeffs: Mapping[VarId, int], guard: frozenset[str], origin_leaf: int,
        label: str = "",
    ) -> None:
        self._assembled.add_cut(coeffs, 1, label=label)
        if self._exact_twin is not None:
            self._exact_twin.notify_cut(coeffs, 1, label)
        self._guards.append(guard)
        self._origin.append(origin_leaf)
        record = CutRecord(canonical_coeffs(coeffs), guard, label)
        self._records.append(record)
        self._keys.add(record.key)

    def export(self) -> tuple[CutRecord, ...]:
        """Every pool entry as a transferable :class:`CutRecord`."""
        return tuple(self._records)

    def merge(self, records: Iterable[CutRecord]) -> tuple[int, int]:
        """Import foreign cut records; returns ``(accepted, duplicates)``.

        The dedup policy keys on ``(canonical coefficients, guard)``: two
        workers that hit the same unreachable set independently learn
        byte-identical cuts, and exactly one survives.  Accepted records
        append to the assembled system (and the exact twin) like locally
        learned cuts, but carry the :data:`_MERGED_ORIGIN` marker so
        ``shared_hits`` counts them as foreign knowledge.
        """
        accepted = duplicates = 0
        for record in records:
            if record.key in self._keys:
                duplicates += 1
                continue
            self.add(
                dict(record.coeffs), record.guard, _MERGED_ORIGIN,
                label=record.label,
            )
            accepted += 1
        return accepted, duplicates

    def active_for(self, present: set[str]) -> set[int]:
        return {
            i for i, guard in enumerate(self._guards) if guard & present
        }

    def shared_hits(self, active: set[int], current_leaf: int) -> int:
        """How many active cuts were learned by a different leaf?"""
        return sum(1 for i in active if self._origin[i] != current_leaf)


class SolveWorkspace:
    """Persistent solver state shared across related solve calls.

    Batch callers — diagnostics probing many constraint subsets of one
    specification — create a workspace once and pass it to every
    :func:`solve_conditional_system` call.  All calls then share one
    :class:`AssembledSystem` (the single base assembly), one lazily-built
    certified twin (whose warm basis carries across subsets), and one
    connectivity-cut pool: a cut's validity argument is purely structural
    (any tree with a member of its guard present must enter the guard set
    from outside), so cuts learned under one row subset remain valid under
    every other.

    ``take_assembly_charge`` books the one-time assembly to exactly one
    call's stats, so summing per-call ``assemblies`` over a batch reports
    precisely 1 — the invariant the diagnostics acceptance test asserts.
    """

    def __init__(self, base: LinearSystem):
        self.assembled = AssembledSystem(base)
        self.exact_twin = _ExactTwin(self.assembled)
        self.pool = _CutPool(self.assembled, self.exact_twin)
        self.leaf_counter = 0
        self.solve_calls = 0
        self._assembly_charged = False
        self._checked_out = False
        # Both caches key by the clause tuple *value* (SupportClause is
        # hashable): batch callers keep one tuple object alive across
        # probes, so the hash is computed over an interned object, and a
        # recreated equal tuple still hits — never a stale entry (an
        # id()-keyed cache could serve a dead tuple's reused address).
        self._clause_indices: dict[tuple[SupportClause, ...], _ClauseIndex] = {}
        self._closure_cache: dict[tuple, tuple] = {}

    def base_closures(
        self,
        cs: ConditionalSystem,
        clause_index: "_ClauseIndex",
        stats: CondSolveStats,
    ) -> tuple:
        """Support closures under the always-active clauses, cached.

        Returns ``(ok, closure, maximal)``: the propagation closure of
        ``{root} ∪ forced_false`` and the all-present maximal completion,
        both computed with every toggleable clause disabled.  Those inputs
        are constraint-subset independent (only ``forced_true`` and the
        active clause set vary between probes), so each probe merely
        overlays its forced supports and re-examines its active toggleable
        clauses instead of re-deriving the DTD skeleton.
        """
        key = (cs.clauses, cs.root, cs.forced_false)
        cached = self._closure_cache.get(key)
        if cached is None:
            closure: dict[str, bool | None] = {
                tau: None for tau in cs.element_types
            }
            for tau in cs.forced_false:
                closure[tau] = False
            closure[cs.root] = True
            ok = _propagate_indexed(
                clause_index, closure, [cs.root, *cs.forced_false], stats,
                cs.toggleable_clauses,
            )
            maximal: dict[str, bool | None] | None = {
                tau: tau not in cs.forced_false for tau in cs.element_types
            }
            if not _propagate_indexed(
                clause_index, maximal, list(cs.element_types), stats,
                cs.toggleable_clauses,
            ) or not all(value is not None for value in maximal.values()):
                maximal = None
            cached = (ok, closure, maximal)
            self._closure_cache[key] = cached
        return cached

    def clause_index(self, clauses: tuple[SupportClause, ...]) -> "_ClauseIndex":
        """Memoized propagation index — batch callers keep the full clause
        tuple stable across probes (clause subsets are selected via
        ``inactive_clauses``, not by rebuilding the tuple), so every probe
        after the first reuses one index."""
        index = self._clause_indices.get(clauses)
        if index is None:
            index = _ClauseIndex(clauses)
            self._clause_indices[clauses] = index
        return index

    @property
    def assemblies(self) -> int:
        """Base-matrix assemblies performed over the workspace lifetime."""
        return self.assembled.assemblies

    def take_assembly_charge(self) -> int:
        """1 on the first call, 0 after — books the assembly exactly once."""
        if self._assembly_charged:
            return 0
        self._assembly_charged = True
        return self.assembled.assemblies

    def clone(self) -> "SolveWorkspace":
        """An independent workspace over the same base system.

        The in-process form of the parallel executor's ownership rule
        (DESIGN.md section 7): persistent HiGHS instances and the live
        exact factorization are single-owner state, so concurrent use
        requires a full clone — its own assembly, its own lazily-built
        certified twin, its own cut pool — never a shared handle.  The
        clone starts with a *copy* of this pool's cuts (imported through
        the merge policy, so they count as foreign knowledge) and
        afterwards evolves independently; reconciliation is explicit,
        via ``parent.pool.merge(clone.pool.export())``.  Fork workers
        cannot receive a clone object (live solver state does not cross
        the process boundary), so they re-derive the equivalent state
        worker-side — a fresh workspace over the pickled base, seeded
        with the parent pool's exported cut records; ``clone()`` is the
        same operation for same-process callers.

        The clone pays its own base assembly: cloning is how a batch
        *chooses* to trade one assembly per worker for parallel progress.

        >>> base = LinearSystem()
        >>> _ = base.add_ge({("ext", "r"): 1}, 1)
        >>> parent = SolveWorkspace(base)
        >>> worker = parent.clone()
        >>> worker.assembled is parent.assembled
        False
        >>> worker.assembled.system is parent.assembled.system
        True
        """
        clone = SolveWorkspace(self.assembled.system)
        clone.pool.merge(self.pool.export())
        return clone

    def export_cuts(self) -> tuple[CutRecord, ...]:
        """Every pooled connectivity cut as a transferable record.

        The cross-*request* face of the two-level cut pool (DESIGN.md
        sections 7-8): a long-lived session exports a workspace's cuts
        after each solve and re-seeds future workspaces over the same
        DTD skeleton with them.  A connectivity cut's justification is
        purely structural — any tree with a member of its guard present
        must enter the guard set from outside — so the records stay
        valid for *every* constraint set encoded over the same DTD.
        """
        return self.pool.export()

    def adopt_cuts(self, records: Iterable[CutRecord]) -> tuple[int, int]:
        """Seed this workspace with previously exported cut records.

        Returns ``(accepted, duplicates)`` under the standard merge
        policy (dedup on canonical coefficients + guard).  Records whose
        variables do not exist in this workspace's base system are
        skipped rather than imported: a cut can only mention columns the
        assembled matrix actually has (cuts over one DTD's skeleton all
        share those columns; foreign records from other DTDs never
        transfer).
        """
        known = set(self.assembled.system.variables)
        portable = [
            record
            for record in records
            if all(var in known for var, _ in record.coeffs)
        ]
        return self.pool.merge(portable)

    def checkout(self) -> "_WorkspaceLease":
        """Claim exclusive use of this workspace for one solve sequence.

        Persistent HiGHS instances and the live exact factorization are
        single-owner state; a long-lived service holding workspaces
        across requests must never let two requests patch the same
        instance concurrently.  ``checkout()`` returns a context manager
        that marks the workspace busy for its duration and raises
        :class:`SolverError` on overlapping claims — turning a silent
        data race into a hard error at the boundary where request
        scheduling went wrong.

        >>> base = LinearSystem()
        >>> _ = base.add_ge({("ext", "r"): 1}, 1)
        >>> ws = SolveWorkspace(base)
        >>> with ws.checkout():
        ...     with ws.checkout():
        ...         pass
        Traceback (most recent call last):
            ...
        repro.errors.SolverError: workspace is already checked out
        """
        return _WorkspaceLease(self)


class _WorkspaceLease:
    """Context manager enforcing single-owner workspace checkout."""

    def __init__(self, workspace: SolveWorkspace):
        self._workspace = workspace

    def __enter__(self) -> SolveWorkspace:
        if self._workspace._checked_out:
            raise SolverError("workspace is already checked out")
        self._workspace._checked_out = True
        return self._workspace

    def __exit__(self, *exc_info) -> None:
        self._workspace._checked_out = False


def _pool_worker(
    task_queue, result_queue, initializer: Callable, payload: object
) -> None:
    """Worker main loop (the fork target of :class:`WorkerPool`).

    Initializes once, then serves ``(index, fn, task)`` items from its
    *own* task queue until the ``None`` sentinel.  Task attribution is
    parent-side (the parent records what it assigned to whom before the
    worker ever sees it), so a worker that dies without answering leaves
    no ambiguity about which task it took down — even when it dies too
    abruptly to flush any message (``os._exit``, SIGKILL, segfault).
    """
    try:
        initializer(payload)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        result_queue.put(
            ("init_failed", os.getpid(), type(exc).__name__, str(exc))
        )
        return
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, fn, task = item
        try:
            value = fn(task)
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            result_queue.put(
                ("failed", os.getpid(), index, type(exc).__name__, str(exc))
            )
        else:
            result_queue.put(("done", os.getpid(), index, value))


def _rebuild_exception(kind: str, message: str) -> Exception:
    """A worker exception, reconstructed by class name on the parent side.

    Library exception types round-trip (so callers' ``except`` clauses
    behave as they would have under in-process execution); anything else
    is wrapped in :class:`SolverError`.
    """
    from repro import errors as errors_module

    cls = getattr(errors_module, kind, None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        try:
            return cls(message)
        except Exception:  # noqa: BLE001 - exotic signature
            pass
    return SolverError(f"worker task failed: {kind}: {message}")


class _WorkerSlot:
    """One pool slot: its process, its private task queue, and the index
    of the task currently assigned to it (``None`` when idle)."""

    __slots__ = ("process", "tasks", "busy")

    def __init__(self, process, tasks):
        self.process = process
        self.tasks = tasks
        self.busy: int | None = None


class WorkerPool:
    """Fork-based pool of solver worker processes (DESIGN.md sections 7/9).

    Owns raw ``fork``-context processes, one private task queue each —
    not ``multiprocessing.Pool``, whose ``map`` blocks forever when a
    worker dies mid-task — and pins the process-ownership rules of the
    parallel executor:

    * every worker is initialized exactly once with a pickled payload
      (``initializer(payload)``) and builds its own single-owner solver
      state there — per-worker :class:`SolveWorkspace` clones, never
      shared handles, because neither the persistent HiGHS instances nor
      the live exact factorization are safe to share across processes;
    * tasks are dispatched with :meth:`map`, which preserves task order
      in its results, so callers get deterministic result alignment
      regardless of which worker ran which task;
    * a worker that dies (any exitcode: segfault, OOM kill, ``os._exit``)
      is detected by reaping its exitcode.  Attribution is parent-side
      — the parent assigns one task at a time per worker and remembers
      the assignment — so the lost task is known without relying on any
      message the dying worker managed to flush; it is requeued for the
      surviving workers, and a replacement is forked while the respawn
      budget (one respawn per original slot) lasts.  Only when every
      worker is dead with work still outstanding does :meth:`map` raise
      :class:`~repro.errors.WorkerCrashError` — the signal for callers
      to degrade to their sequential path.  ``crashes``, ``respawns``
      and ``requeues`` count the recovery work for the stats surface.

    Fork is required (workers must inherit the imported solver stack
    cheaply); on platforms without it callers degrade to the sequential
    path — :meth:`available` is the gate.
    """

    def __init__(
        self,
        jobs: int,
        initializer: Callable,
        payload: object,
        respawn_limit: int | None = None,
    ):
        if jobs < 2:
            raise SolverError("WorkerPool needs at least 2 workers")
        self.jobs = jobs
        self.crashes = 0
        self.respawns = 0
        self.requeues = 0
        self._respawn_limit = jobs if respawn_limit is None else respawn_limit
        self._ctx = multiprocessing.get_context("fork")
        self._initializer = initializer
        self._payload = payload
        self._results = self._ctx.Queue()
        self._slots = [self._spawn() for _ in range(jobs)]

    def _spawn(self) -> _WorkerSlot:
        tasks = self._ctx.Queue()
        process = self._ctx.Process(
            target=_pool_worker,
            args=(tasks, self._results, self._initializer, self._payload),
            daemon=True,
        )
        process.start()
        return _WorkerSlot(process, tasks)

    @staticmethod
    def available() -> bool:
        """Can a fork pool be built on this platform?"""
        return (
            hasattr(os, "fork")
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def map(self, fn: Callable, tasks: Sequence) -> list:
        """Run ``fn`` over ``tasks``; results come back in task order.

        Survives worker deaths per the class recovery policy; raises
        :class:`~repro.errors.WorkerCrashError` only when the pool is
        lost beyond recovery (every verdict already collected stays
        collected — the caller's sequential fallback recomputes, it
        never double-counts).
        """
        tasks = list(tasks)
        if not self._slots:
            raise WorkerCrashError(
                "worker pool has no live workers", self.crashes, self.respawns
            )
        results: list = [None] * len(tasks)
        finished: set[int] = set()
        pending: list[int] = list(reversed(range(len(tasks))))
        self._dispatch(fn, tasks, pending)
        while len(finished) < len(tasks):
            try:
                message = self._results.get(timeout=0.05)
            except queue.Empty:
                self._reap(pending)
                self._dispatch(fn, tasks, pending)
                continue
            tag = message[0]
            if tag == "done":
                _, pid, index, value = message
                self._release(pid)
                # A task can legitimately complete twice: its first
                # worker died *after* answering but before the answer
                # was read, so the task was conservatively requeued.
                # First answer wins (both are the same deterministic
                # computation).
                if index not in finished:
                    finished.add(index)
                    results[index] = value
                self._dispatch(fn, tasks, pending)
            elif tag == "failed":
                _, pid, _, kind, text = message
                self._release(pid)
                raise _rebuild_exception(kind, text)
            elif tag == "init_failed":
                _, _, kind, text = message
                raise SolverError(
                    f"worker initialization failed: {kind}: {text}"
                )
        return results

    def _dispatch(self, fn: Callable, tasks: list, pending: list[int]) -> None:
        """Hand each idle worker its next task (one at a time per worker,
        so a crash forfeits at most one task)."""
        for slot in self._slots:
            if not pending:
                return
            if slot.busy is None:
                index = pending.pop()
                slot.busy = index
                slot.tasks.put((index, fn, tasks[index]))

    def _release(self, pid: int) -> None:
        """Mark the slot that answered from ``pid`` idle again."""
        for slot in self._slots:
            if slot.process.pid == pid:
                slot.busy = None
                return

    def _reap(self, pending: list[int]) -> None:
        """Collect dead workers: requeue their tasks, respawn replacements.

        Raises :class:`WorkerCrashError` when no worker survives and the
        respawn budget is spent — the unrecoverable case.
        """
        survivors = []
        for slot in self._slots:
            if slot.process.exitcode is None:
                survivors.append(slot)
                continue
            slot.process.join()
            self.crashes += 1
            if slot.busy is not None:
                self.requeues += 1
                pending.append(slot.busy)
            slot.tasks.close()
            slot.tasks.cancel_join_thread()
            if self.respawns < self._respawn_limit:
                self.respawns += 1
                survivors.append(self._spawn())
        self._slots = survivors
        if not survivors:
            raise WorkerCrashError(
                f"all workers died ({self.crashes} crash(es); "
                "respawn budget spent)",
                self.crashes,
                self.respawns,
            )

    def close(self) -> None:
        for slot in self._slots:
            slot.process.terminate()
        for slot in self._slots:
            slot.process.join(timeout=5.0)
            slot.tasks.close()
            slot.tasks.cancel_join_thread()
        self._slots = []
        self._results.close()
        self._results.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def effective_parallelism() -> int:
    """CPU cores actually available to this process.

    The one detection primitive every parallel gate derives from —
    benchmark speedup skips (``benchmarks/conftest.py``), the jobs
    sweeps of the differential fuzz harness, and the serving benchmarks
    all consult it, so local runs and CI's cgroup-limited 2-core runners
    skip (or downscale) the same way.  Prefers ``os.sched_getaffinity``
    (which sees CPU-set limits the way container runtimes apply them)
    and falls back to ``os.cpu_count()``.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


#: The ambient per-wave latency observer (None = nobody watching).  Set
#: by the service layer around a solve so the parallel dispatcher can
#: report wave timings without the solver depending on the metrics
#: module; travels through a ContextVar for the same reason the request
#: deadline does (per-executor-thread, no parameter threading).
_WAVE_OBSERVER: contextvars.ContextVar[Callable[[float, int], None] | None] = (
    contextvars.ContextVar("repro_wave_observer", default=None)
)


@contextmanager
def wave_observer_scope(observer: Callable[[float, int], None] | None):
    """Run a block with ``observer(elapsed_seconds, wave_width)`` called
    after every parallel wave dispatched inside it.

    The hook feeds the service's :class:`~repro.service.metrics.StatsCollector`
    (wave-latency histogram) and the ``--jobs auto`` controller; it is
    observational only — observer exceptions are swallowed, and solver
    results and :class:`CondSolveStats` are byte-identical with or
    without a scope open.
    """
    if observer is None:
        yield
        return
    token = _WAVE_OBSERVER.set(observer)
    try:
        yield
    finally:
        _WAVE_OBSERVER.reset(token)


def _notify_wave(elapsed: float, width: int) -> None:
    observer = _WAVE_OBSERVER.get()
    if observer is None:
        return
    try:
        observer(elapsed, width)
    except Exception:  # pragma: no cover - observers must not break solves
        pass


def parallel_sweep_allowed(jobs: int) -> bool:
    """Should a correctness sweep run a ``jobs``-worker configuration here?

    Worker counts up to 2 always run (pool-engagement coverage must
    survive single-core containers); beyond that, counts above twice the
    effective cores are pure oversubscription — they exercise no new
    schedule and dominate CI wall clock on 2-core runners — and are
    skipped.  Wall-clock *speedup* gates are stricter (they need
    ``effective_parallelism() >= jobs``; see ``benchmarks/conftest.py``).
    Both guards read :func:`effective_parallelism`, so local runs and CI
    runners skip the same way.
    """
    return jobs <= 2 or jobs <= 2 * effective_parallelism()


def fanout_map(
    fn: Callable,
    tasks: Sequence,
    jobs: int,
    initializer: Callable,
    payload: object,
) -> list:
    """One-shot fan-out of independent tasks over a :class:`WorkerPool`.

    The shared executor entry point for batch callers
    (:func:`repro.checkers.implication.implies_all`, the diagnostics
    audit): build a pool of at most ``min(jobs, len(tasks))`` workers,
    initialize each with ``payload``, map, tear down.  Results are in
    task order.  Callers gate on :meth:`WorkerPool.available` and fall
    back to their sequential loop when it is false.
    """
    workers = min(jobs, len(tasks))
    if workers < 2:
        raise SolverError("fanout_map needs >= 2 workers and >= 2 tasks")
    with WorkerPool(workers, initializer, payload) as pool:
        return pool.map(fn, tasks)


#: Per-process state of a branch worker, set by :func:`_init_branch_worker`
#: (runs once per worker under the fork context) and read by every
#: :func:`_branch_task` the worker executes.
_BRANCH_WORKER: dict = {}


def _init_branch_worker(payload: tuple) -> None:
    """Worker initializer: adopt the instance and build owned solver state."""
    cs, params = payload
    _BRANCH_WORKER["cs"] = cs
    _BRANCH_WORKER["params"] = params
    _BRANCH_WORKER["workspace"] = SolveWorkspace(cs.base)


#: Exception classes a worker may legitimately raise, shipped back by
#: name so the parent can decide *after* the wave whether a sibling's
#: feasible verdict makes the error moot (a feasible answer is sound
#: regardless of what happened on other branches).
_RAISABLE = {
    "ComplexityLimitError": ComplexityLimitError,
    "SolverError": SolverError,
    "BudgetExceededError": BudgetExceededError,
}


def _branch_task(task: tuple) -> tuple:
    """Solve one frontier subproblem inside a worker process.

    ``task`` is ``(assignment_items, seed_cuts)``: a propagated partial
    support assignment plus the shared pool's current cut records.  The
    worker merges the seeds into its local pool (dedup makes re-seeding
    across waves free), runs the ordinary sequential subtree search on
    its own workspace, and ships back the verdict, its work counters and
    the cuts it *discovered* (everything past the seed watermark).

    Expected solver exceptions (complexity budget, cut-loop divergence)
    are returned as ``("raised", ..., kind)`` rather than raised: the
    parent must see the whole wave before deciding, because a sibling's
    exact-checked feasible answer outranks this subtree's failure.
    """
    if fault_active("worker.kill"):
        os._exit(113)
    cs = _BRANCH_WORKER["cs"]
    params = _BRANCH_WORKER["params"]
    workspace = _BRANCH_WORKER["workspace"]
    assignment_items, seed_cuts = task
    workspace.pool.merge(seed_cuts)
    watermark = len(workspace.pool)
    stats = CondSolveStats()
    stats.assemblies = workspace.take_assembly_charge()

    def next_leaf_id() -> int:
        workspace.leaf_counter += 1
        return workspace.leaf_counter

    try:
        result = _dfs_search(
            cs,
            [(dict(assignment_items), None)],
            clause_index=workspace.clause_index(cs.clauses),
            assembled=workspace.assembled,
            pool=workspace.pool,
            exact_twin=workspace.exact_twin,
            next_leaf_id=next_leaf_id,
            stats=stats,
            **params,
        )
        status, values, message = result.status, result.values, result.message
        kind = ""
    except (ComplexityLimitError, SolverError, BudgetExceededError) as exc:
        status, values, message = "raised", {}, str(exc)
        kind = type(exc).__name__
    discovered = workspace.pool.export()[watermark:]
    return status, values, message, asdict(stats), discovered, kind


class _ClauseIndex:
    """Premise/alternative -> clause index, for worklist propagation.

    ``by_symbol`` watches every symbol occurrence (used for externally
    decided seeds, which may be ``False``); ``by_premise`` watches the
    premise only — sufficient for symbols the worklist itself derives,
    which are always ``True`` (a ``True`` alternative merely satisfies
    its clause, so those clauses need no re-examination).
    """

    def __init__(self, clauses: tuple[SupportClause, ...]):
        self.clauses = clauses
        by_symbol: dict[str, list[int]] = {}
        by_premise: dict[str, list[int]] = {}
        for index, clause in enumerate(clauses):
            by_symbol.setdefault(clause.premise, []).append(index)
            by_premise.setdefault(clause.premise, []).append(index)
            for alternative in clause.alternatives:
                by_symbol.setdefault(alternative, []).append(index)
        self.by_symbol = {
            symbol: tuple(indices) for symbol, indices in by_symbol.items()
        }
        self.by_premise = {
            symbol: tuple(indices) for symbol, indices in by_premise.items()
        }


def _propagate_indexed(
    index: _ClauseIndex,
    assignment: dict[str, bool | None],
    seeds: list[str],
    stats: CondSolveStats,
    disabled: frozenset[int] = frozenset(),
    extra_clause_ids: tuple[int, ...] = (),
) -> bool:
    """Worklist unit propagation from the seed symbols; False on conflict.

    Only clauses watching a changed symbol are re-examined, replacing the
    all-clauses rescan-until-fixpoint of the original implementation.
    Sound for the same reason: a clause's state only changes when one of
    its symbols (premise or alternative) changes value.  Seeds carry the
    full watch list (they may be ``False`` decisions, which shrink a
    clause's open alternatives); symbols derived *during* propagation are
    always ``True`` and only activate clauses premised on them.
    ``extra_clause_ids`` are examined unconditionally up front — callers
    resuming from a cached closure pass the clauses whose activation the
    closure did not see.
    """
    clauses = index.clauses
    by_symbol = index.by_symbol
    by_premise = index.by_premise
    visits = 0
    queue: list[tuple[str, bool]] = [(symbol, False) for symbol in seeds]
    pending = list(extra_clause_ids)
    conflict = False
    while pending or queue:
        if pending:
            scan = (pending.pop(),)
        else:
            symbol, derived = queue.pop()
            watchers = by_premise if derived else by_symbol
            scan = watchers.get(symbol, ())
        for clause_id in scan:
            if clause_id in disabled:
                continue  # clause belongs to a deactivated constraint
            clause = clauses[clause_id]
            visits += 1
            if assignment.get(clause.premise) is not True:
                continue
            satisfied = False
            open_alts: list[str] = []
            for alternative in clause.alternatives:
                value = assignment.get(alternative)
                if value is True:
                    satisfied = True
                    break
                if value is None:
                    open_alts.append(alternative)
            if satisfied:
                continue
            if not open_alts:
                conflict = True
                break
            if len(open_alts) == 1:
                assignment[open_alts[0]] = True
                queue.append((open_alts[0], True))
        if conflict:
            break
    stats.propagation_visits += visits
    return not conflict


def _propagate(
    cs: ConditionalSystem, assignment: dict[str, bool | None]
) -> bool:
    """Unit-propagate support clauses; False on conflict.

    Reference implementation (rescan to fixpoint), kept for the
    ``incremental=False`` path and as the differential oracle for
    :func:`_propagate_indexed`.
    """
    changed = True
    while changed:
        changed = False
        for clause in cs.clauses:
            if assignment.get(clause.premise) is not True:
                continue
            if any(assignment.get(a) is True for a in clause.alternatives):
                continue
            open_alts = [
                a for a in clause.alternatives if assignment.get(a) is None
            ]
            if not open_alts:
                return False
            if len(open_alts) == 1:
                assignment[open_alts[0]] = True
                changed = True
    return True


def _solve_leaf(
    cs: ConditionalSystem,
    leaf: LinearSystem,
    solve: Callable[[LinearSystem], SolveResult],
    stats: CondSolveStats,
    max_cut_rounds: int,
) -> SolveResult:
    """Solve a from-scratch leaf ILP, iterating connectivity cuts locally.

    Used by the ``incremental=False`` reference path; cuts found here are
    discarded when the leaf is abandoned.
    """
    for _ in range(max_cut_rounds):
        stats.leaves_solved += 1
        stats.assemblies += 1
        result = solve(leaf)
        if not result.feasible:
            return result
        unreachable = _unreachable_positive(cs, result.values)
        if not unreachable:
            return result
        cut = _connectivity_cut(cs, unreachable)
        if not cut:
            # No occurrence site can ever feed U from outside: with these
            # supports fixed positive, no tree exists.
            return SolveResult(
                "infeasible",
                message=f"positive types {sorted(unreachable)} cannot be connected",
            )
        stats.cuts_added += 1
        leaf.add_ge(cut, 1, label=f"connect:{','.join(sorted(unreachable)[:4])}")
    raise SolverError("connectivity cut loop did not converge")


def _solve_leaf_exact_cold(
    assembled: AssembledSystem,
    patches: Mapping[VarId, BoundPatch],
    active: set[int],
    stats: CondSolveStats,
    inactive_rows: frozenset[int] = frozenset(),
) -> SolveResult:
    """Cold certified solve on a materialized leaf (reference path)."""
    exact_stats = ExactStats()
    result = solve_exact(
        assembled.materialize(patches, active, inactive_rows),
        warm=False,
        stats=exact_stats,
    )
    stats.exact_nodes += exact_stats.nodes
    stats.exact_pivots += exact_stats.pivots
    return result


def _solve_leaf_assembled(
    cs: ConditionalSystem,
    assembled: AssembledSystem,
    pool: _CutPool,
    assignment: Mapping[str, bool],
    backend: str,
    stats: CondSolveStats,
    max_cut_rounds: int,
    leaf_id: int,
    exact_twin: _ExactTwin,
    exact_warm: bool,
    inactive_rows: frozenset[int] = frozenset(),
) -> SolveResult:
    """Solve a leaf by patching bounds on the assembled system.

    Connectivity cuts discovered here go into the shared pool (guarded by
    their unreachable set) so later leaves inherit them for free.  Both
    backends take the same ``(patches, active, inactive_rows)`` triple: the
    float engine patches its bound arrays and row bounds, the certified
    engine dual-simplex-patches a warm basis (``exact_warm=False`` falls
    back to a cold solve of the materialized leaf, the reference the fuzz
    harness checks against).
    """
    patches = _bound_patches(cs, assignment)
    present = {tau for tau, decided in assignment.items() if decided}
    # The foreign active set is fixed for the whole leaf (cuts added during
    # the rounds carry this leaf's id), so count the pool hit once.
    if pool.shared_hits(pool.active_for(present), leaf_id):
        stats.cut_pool_hits += 1

    def certify(active: set[int]) -> SolveResult:
        if exact_warm:
            return exact_twin.solve(patches, active, stats, inactive_rows)
        return _solve_leaf_exact_cold(assembled, patches, active, stats, inactive_rows)

    for _ in range(max_cut_rounds):
        stats.leaves_solved += 1
        active = pool.active_for(present)
        if backend == "exact":
            result = certify(active)
        else:
            stats.bound_patch_solves += 1
            result = assembled.solve_int(patches, active, inactive_rows)
            if result.status == "error":
                # Floating-point trouble: certify with the exact solver.
                result = certify(active)
        if not result.feasible:
            return result
        unreachable = _unreachable_positive(cs, result.values)
        if not unreachable:
            return result
        cut = _connectivity_cut(cs, unreachable)
        if not cut:
            return SolveResult(
                "infeasible",
                message=f"positive types {sorted(unreachable)} cannot be connected",
            )
        stats.cuts_added += 1
        guard = unreachable & set(cs.element_types)
        if not guard:  # pragma: no cover - totality makes this impossible
            raise SolverError("connectivity cut with no element-type guard")
        pool.add(
            cut,
            frozenset(guard),
            leaf_id,
            label=f"connect:{','.join(sorted(unreachable)[:4])}",
        )
    raise SolverError("connectivity cut loop did not converge")


def _make_solver(
    backend: str, exact_warm: bool, stats: CondSolveStats
) -> Callable[[LinearSystem], SolveResult]:
    """A robust solve function: scipy with exact fallback, or exact only.

    ``exact_warm`` selects basis reuse *within* each certified solve (the
    rebuild path constructs a fresh system per leaf, so there is no state
    to carry across calls); work counters land in ``stats``.
    """
    if backend not in ("exact", "scipy"):
        raise SolverError(f"unknown backend {backend!r}")

    def solve(system: LinearSystem) -> SolveResult:
        exact_stats = ExactStats()
        if backend == "exact":
            result = solve_exact(system, warm=exact_warm, stats=exact_stats)
        else:
            result = solve_milp_certified(
                system, exact_warm=exact_warm, exact_stats=exact_stats
            )
        stats.exact_nodes += exact_stats.nodes
        stats.exact_pivots += exact_stats.pivots
        stats.exact_warm_solves += exact_stats.warm_solves
        return result

    return solve


def solve_conditional_system(
    cs: ConditionalSystem,
    backend: str = "scipy",
    max_support_nodes: int = 20000,
    max_cut_rounds: int = 200,
    lp_prune: bool = True,
    incremental: bool = True,
    exact_warm: bool = True,
    active_rows: frozenset[int] | None = None,
    workspace: SolveWorkspace | None = None,
    inactive_clauses: frozenset[int] = frozenset(),
    jobs: int = 1,
) -> tuple[SolveResult, CondSolveStats]:
    """Decide the conditional system; return a realizable solution if any.

    The returned solution (when feasible) satisfies the active base rows,
    all conditionals, and the connectivity side condition — i.e. it is
    realizable as an XML tree by :mod:`repro.witness`.

    ``jobs`` fans independent support branches across a fork-based
    :class:`WorkerPool` of that many processes (DESIGN.md section 7).
    The *verdict* is identical to ``jobs=1`` — the frontier partitions
    the support completions exactly and every worker runs the same
    sequential subtree search — but work counters reflect the schedule
    (``workers_spawned``, ``parallel_waves``, ``cuts_merged``), and a
    feasible instance may return a different — equally valid, still
    exact-checked — witness.  The one carve-out is the resource budget:
    ``max_support_nodes`` bounds each worker's subtree individually, so
    near the budget a parallel run may complete a search the sequential
    run aborts with :class:`ComplexityLimitError` (it never flips a
    completed verdict).  Parallelism engages only when the search
    actually branches: instances decided by the root LP probe or the
    maximal-support shortcut, callers holding a ``workspace`` (single-
    owner state), and platforms without ``fork`` all take the sequential
    path unchanged.

    >>> trivial = LinearSystem()
    >>> _ = trivial.add_ge({("ext", "r"): 1}, 1)
    >>> cs_jobs = ConditionalSystem(
    ...     base=trivial, ext_var={"r": ("ext", "r")}, root="r",
    ...     element_types=("r",), edges=(),
    ... )
    >>> result, stats = solve_conditional_system(cs_jobs, jobs=4)
    >>> (result.status, stats.workers_spawned)   # decided pre-branching
    ('feasible', 0)

    ``active_rows`` selects the subset of ``cs.toggleable_rows`` to keep
    active for this call (``None`` = all of them; rows never registered as
    toggleable are always active), and ``inactive_clauses`` disables the
    support clauses (by index into ``cs.clauses``) contributed by the
    deactivated constraints — a clause from a deactivated constraint could
    wrongly prune a feasible completion, so callers must disable the two
    together; ``cs.forced_true`` must likewise be filtered by the caller
    (via ``dataclasses.replace``).  ``workspace`` shares the assembled
    system, the certified twin, the connectivity-cut pool and the clause
    index across calls — the diagnostics batch shape: one assembly, many
    row subsets.

    ``incremental=False`` selects the from-scratch reference path (one
    matrix assembly per solve, no cut sharing; deactivated rows are
    dropped from the rebuilt systems); ``exact_warm=False`` selects the
    cold per-node refactorization path of the certified backend.  All
    exist for differential testing and ablation, and must always agree
    with the defaults.

    >>> sys = LinearSystem()
    >>> blocked = sys.add_eq({("ext", "r"): 1}, 0, label="toggle-me")
    >>> sys.add_ge({("ext", "r"): 1}, 1)
    1
    >>> cs = ConditionalSystem(
    ...     base=sys, ext_var={"r": ("ext", "r")}, root="r",
    ...     element_types=("r",), edges=(),
    ...     toggleable_rows=frozenset({blocked}),
    ... )
    >>> solve_conditional_system(cs)[0].status          # ext == 0 and >= 1
    'infeasible'
    >>> result, stats = solve_conditional_system(cs, active_rows=frozenset())
    >>> (result.status, stats.assemblies)
    ('feasible', 1)
    """
    if backend not in ("scipy", "exact"):
        raise SolverError(f"unknown backend {backend!r}")
    stats = CondSolveStats()
    inactive_rows = (
        frozenset(cs.toggleable_rows - active_rows)
        if active_rows is not None
        else frozenset()
    )

    assignment: dict[str, bool | None] = {tau: None for tau in cs.element_types}
    for tau in cs.forced_true:
        assignment[tau] = True
    for tau in cs.forced_false:
        if assignment.get(tau) is True:
            return (
                SolveResult(
                    "infeasible",
                    message=f"type {tau} is both required and unusable",
                ),
                stats,
            )
        assignment[tau] = False
    assignment[cs.root] = True

    if incremental:
        try:
            return _solve_incremental(
                cs, assignment, backend, max_support_nodes, max_cut_rounds,
                lp_prune, stats, exact_warm, inactive_rows, workspace,
                inactive_clauses, jobs,
            )
        except WorkerCrashError as crash:
            # The pool was lost beyond recovery.  Degrade to the
            # sequential path *from scratch* (partial wave results and
            # merged cuts are discarded — re-deriving them is the cheap
            # price of the byte-identical-to-``jobs=1`` guarantee).
            result, seq_stats = solve_conditional_system(
                cs,
                backend=backend,
                max_support_nodes=max_support_nodes,
                max_cut_rounds=max_cut_rounds,
                lp_prune=lp_prune,
                incremental=incremental,
                exact_warm=exact_warm,
                active_rows=active_rows,
                workspace=workspace,
                inactive_clauses=inactive_clauses,
                jobs=1,
            )
            seq_stats.parallel_degraded = True
            seq_stats.workers_crashed += crash.crashes
            seq_stats.workers_respawned += crash.respawns
            return result, seq_stats
    # The from-scratch reference path stays sequential regardless of
    # ``jobs`` — it exists to be the simplest possible oracle.
    return _solve_rebuild(
        cs, assignment, backend, max_support_nodes, max_cut_rounds,
        lp_prune, stats, exact_warm, inactive_rows, inactive_clauses,
    )


def _branching_order(cs: ConditionalSystem) -> list[str]:
    """Constrained types first (their supports interact with Sigma), then
    DTD order — via a precomputed position map, not repeated .index()."""
    involved = set(cs.requires_if_present) | {
        clause.premise for clause in cs.clauses
    }
    position = {tau: i for i, tau in enumerate(cs.element_types)}
    return sorted(
        cs.element_types,
        key=lambda tau: (tau not in involved, position[tau]),
    )


def _maximal_support(
    cs: ConditionalSystem,
    clause_index: _ClauseIndex,
    assignment: Mapping[str, bool | None],
    stats: CondSolveStats,
    inactive_clauses: frozenset[int] = frozenset(),
) -> dict[str, bool | None] | None:
    """The maximal completion (everything undecided present), propagated;
    ``None`` when it conflicts or leaves a symbol undecided."""
    maximal = dict(assignment)
    for tau in cs.element_types:
        if maximal[tau] is None:
            maximal[tau] = True
    if _propagate_indexed(
        clause_index, maximal, list(cs.element_types), stats, inactive_clauses
    ) and all(value is not None for value in maximal.values()):
        return maximal
    return None


def _solve_incremental(
    cs: ConditionalSystem,
    assignment: dict[str, bool | None],
    backend: str,
    max_support_nodes: int,
    max_cut_rounds: int,
    lp_prune: bool,
    stats: CondSolveStats,
    exact_warm: bool,
    inactive_rows: frozenset[int],
    workspace: SolveWorkspace | None,
    inactive_clauses: frozenset[int],
    jobs: int = 1,
) -> tuple[SolveResult, CondSolveStats]:
    """Assemble-once/bound-patch support search (DESIGN.md section 4);
    with ``jobs > 1`` the branching phase fans out per section 7."""
    clause_index = (
        workspace.clause_index(cs.clauses)
        if workspace is not None
        else _ClauseIndex(cs.clauses)
    )
    maximal_view: dict[str, bool | None] | None | str = "unset"
    base_maximal: dict[str, bool | None] | None = None
    use_closure = workspace is not None
    active_toggle_clauses: tuple[int, ...] = ()
    if use_closure:
        # Resume from the cached always-active closure: overlay this
        # probe's forced supports and re-examine only its active
        # toggleable clauses (the closure was computed with all of them
        # disabled).
        closure_ok, closure, base_maximal = workspace.base_closures(
            cs, clause_index, stats
        )
        if not closure_ok:
            return (
                SolveResult("infeasible", message="support propagation conflict"),
                stats,
            )
        merged = dict(closure)
        seeds = []
        for tau, value in assignment.items():
            if value is not None and merged.get(tau) is None:
                merged[tau] = value
                seeds.append(tau)
        assignment = merged
        active_toggle_clauses = tuple(cs.toggleable_clauses - inactive_clauses)
    else:
        seeds = [tau for tau, value in assignment.items() if value is not None]
    if not _propagate_indexed(
        clause_index, assignment, seeds, stats, inactive_clauses,
        active_toggle_clauses,
    ):
        return (
            SolveResult("infeasible", message="support propagation conflict"),
            stats,
        )
    root_patches = _bound_patches(cs, assignment)

    if workspace is not None:
        if workspace.assembled.system is not cs.base:
            raise SolverError(
                "workspace was assembled from a different base system"
            )
        assembled = workspace.assembled
        exact_twin = workspace.exact_twin
        pool = workspace.pool
        stats.assemblies = workspace.take_assembly_charge()
        workspace.solve_calls += 1
    else:
        assembled = AssembledSystem(cs.base)
        stats.assemblies = assembled.assemblies
        exact_twin = _ExactTwin(assembled)
        pool = _CutPool(assembled, exact_twin)

    def next_leaf_id() -> int:
        if workspace is not None:
            workspace.leaf_counter += 1
            return workspace.leaf_counter
        nonlocal leaf_counter
        leaf_counter += 1
        return leaf_counter

    leaf_counter = 0

    # Single LP probe of the root relaxation: definite infeasibility
    # refutes every support completion at once, and an integral vertex
    # that passes the exact checks is already a realizable answer.
    root_probed = False
    if lp_prune and backend == "scipy":
        status, candidate = assembled.lp_probe(
            root_patches, set(), inactive_rows=inactive_rows, verified=True
        )
        stats.bound_patch_solves += 1
        root_probed = status != "unknown"
        if status == "infeasible":
            stats.lp_probe_decided = True
            return (
                SolveResult("infeasible", message="root LP relaxation infeasible"),
                stats,
            )
        if (
            status == "feasible"
            and candidate is not None  # verified: already exact-checked
            and _satisfies_conditionals(cs, candidate)
            and not _unreachable_positive(cs, candidate)
        ):
            stats.shortcut_hit = True
            stats.lp_probe_decided = True
            return SolveResult("feasible", candidate), stats

    # Shortcut: the maximal support (everything not forced out present) is
    # often feasible and found in one leaf solve.
    if maximal_view == "unset":
        if use_closure:
            # The cached all-present completion is fully decided; only the
            # probe's active toggleable clauses still need a conflict scan.
            if base_maximal is not None and _propagate_indexed(
                clause_index, dict(base_maximal), [], stats,
                inactive_clauses, active_toggle_clauses,
            ):
                maximal_view = dict(base_maximal)
            else:
                maximal_view = None
        else:
            maximal_view = _maximal_support(
                cs, clause_index, assignment, stats, inactive_clauses
            )
    if maximal_view is not None:
        result = _solve_leaf_assembled(
            cs, assembled, pool, maximal_view, backend, stats,  # type: ignore[arg-type]
            max_cut_rounds, next_leaf_id(), exact_twin, exact_warm,
            inactive_rows,
        )
        if result.feasible:
            stats.shortcut_hit = True
            return result, stats

    stack = [(assignment, None)]
    skip_first_lp = root_probed
    if jobs > 1 and workspace is None and WorkerPool.available():
        frontier = _frontier(
            cs, assignment, clause_index, stats, inactive_clauses,
            target=2 * jobs,
        )
        if len(frontier) >= 2:
            result = _solve_parallel(
                cs, frontier, pool, stats, backend, max_support_nodes,
                max_cut_rounds, lp_prune, exact_warm, inactive_rows,
                inactive_clauses, jobs,
            )
            return result, stats
        # The instance did not split: fall through to the sequential DFS,
        # seeded with the frontier (its expansion work — propagation and
        # node counts — is kept, not redone; an empty frontier means every
        # child conflicted, which the empty stack reports as infeasible).
        stack = [(entry, None) for entry in frontier]
        skip_first_lp = False  # the root probe covered the root, not these

    result = _dfs_search(
        cs,
        stack,
        clause_index=clause_index,
        assembled=assembled,
        pool=pool,
        exact_twin=exact_twin,
        next_leaf_id=next_leaf_id,
        stats=stats,
        backend=backend,
        max_support_nodes=max_support_nodes,
        max_cut_rounds=max_cut_rounds,
        lp_prune=lp_prune,
        exact_warm=exact_warm,
        inactive_rows=inactive_rows,
        inactive_clauses=inactive_clauses,
        skip_first_lp=skip_first_lp,
    )
    return result, stats


def _dfs_search(
    cs: ConditionalSystem,
    stack: list[tuple[dict[str, bool | None], str | None]],
    *,
    clause_index: _ClauseIndex,
    assembled: AssembledSystem,
    pool: _CutPool,
    exact_twin: _ExactTwin,
    next_leaf_id: Callable[[], int],
    stats: CondSolveStats,
    backend: str,
    max_support_nodes: int,
    max_cut_rounds: int,
    lp_prune: bool,
    exact_warm: bool,
    inactive_rows: frozenset[int],
    inactive_clauses: frozenset[int],
    skip_first_lp: bool = False,
) -> SolveResult:
    """Exhaust the support subtrees rooted at the given stack entries.

    The sequential DFS core, shared verbatim by the single-process path
    (one root entry) and by every parallel worker (one frontier
    subproblem per call, against the worker's own workspace).  Stack
    entries carry the symbol decided last, seeding propagation;
    ``skip_first_lp`` elides the first node's LP probe when the caller
    just probed the identical relaxation (the root LP probe).
    """
    order = _branching_order(cs)

    def undecided(current: Mapping[str, bool | None]) -> str | None:
        for tau in order:
            if current[tau] is None:
                return tau
        return None

    first_node = True
    while stack:
        current, decided = stack.pop()
        stats.dfs_nodes += 1
        if stats.dfs_nodes > max_support_nodes:
            raise ComplexityLimitError(
                f"support search exceeded {max_support_nodes} nodes"
            )
        delay = fault_seconds("solve.delay")
        if delay:
            time.sleep(delay)
        check_deadline()
        seeds = (
            [decided]
            if decided is not None
            else [tau for tau, value in current.items() if value is not None]
        )
        if not _propagate_indexed(
            clause_index, current, seeds, stats, inactive_clauses
        ):
            continue
        if lp_prune and not (first_node and skip_first_lp and len(pool) == 0):
            patches = _bound_patches(cs, current)
            decided_true = {
                tau for tau, value in current.items() if value is True
            }
            active = pool.active_for(decided_true)
            status, _ = assembled.lp_probe(
                patches, active, want_values=False, inactive_rows=inactive_rows
            )
            stats.bound_patch_solves += 1
            if status == "infeasible":
                stats.lp_prunes += 1
                first_node = False
                continue
        first_node = False
        choice = undecided(current)
        if choice is None:
            result = _solve_leaf_assembled(
                cs, assembled, pool, current, backend, stats,  # type: ignore[arg-type]
                max_cut_rounds, next_leaf_id(), exact_twin, exact_warm,
                inactive_rows,
            )
            if result.feasible:
                return result
            continue
        with_false = dict(current)
        with_false[choice] = False
        with_true = dict(current)
        with_true[choice] = True
        stack.append((with_false, choice))
        stack.append((with_true, choice))
    return SolveResult("infeasible", message="support search exhausted")


def _frontier(
    cs: ConditionalSystem,
    assignment: dict[str, bool | None],
    clause_index: _ClauseIndex,
    stats: CondSolveStats,
    inactive_clauses: frozenset[int],
    target: int,
) -> list[dict[str, bool | None]]:
    """Partition the remaining search space into >= ``target`` subproblems.

    Breadth-first expansion along the branching order, with unit
    propagation applied to every child (conflicting children are dropped,
    exactly as the DFS would drop them).  The returned assignments cover
    the support completions of ``assignment`` *exactly* — each completion
    extends precisely one frontier entry — so solving every entry is
    equivalent to the sequential search, whatever the dispatch order.

    Node accounting: each node is counted in ``stats.dfs_nodes`` exactly
    once — conflicted children here (they are dropped and never popped
    again), surviving entries when whoever searches them (a worker's
    subtree DFS, or the sequential fallback) pops them.
    """
    order = _branching_order(cs)

    def undecided(current: Mapping[str, bool | None]) -> str | None:
        for tau in order:
            if current[tau] is None:
                return tau
        return None

    pending: list[dict[str, bool | None]] = [dict(assignment)]
    decided: list[dict[str, bool | None]] = []
    while pending and len(pending) + len(decided) < target:
        current = pending.pop(0)
        choice = undecided(current)
        if choice is None:
            decided.append(current)
            continue
        for value in (True, False):
            child = dict(current)
            child[choice] = value
            if _propagate_indexed(
                clause_index, child, [choice], stats, inactive_clauses
            ):
                pending.append(child)
            else:
                stats.dfs_nodes += 1  # dropped here, never popped again
    return decided + pending


def _solve_parallel(
    cs: ConditionalSystem,
    frontier: list[dict[str, bool | None]],
    pool: _CutPool,
    stats: CondSolveStats,
    backend: str,
    max_support_nodes: int,
    max_cut_rounds: int,
    lp_prune: bool,
    exact_warm: bool,
    inactive_rows: frozenset[int],
    inactive_clauses: frozenset[int],
    jobs: int,
) -> SolveResult:
    """Fan the support search across a worker pool (DESIGN.md section 7).

    Takes the root's frontier of propagated subproblems (>= 2 entries;
    the caller built it with :func:`_frontier` and runs sequentially
    otherwise) and dispatches them in waves of ``jobs`` tasks.  Between
    waves the
    two-level cut pool is reconciled: worker-discovered cuts merge into
    the shared pool (guarded dedup on canonical coefficients + guard),
    and the next wave's tasks are seeded with the merged set, so a cut
    learned on one branch prunes siblings dispatched later.  A feasible
    verdict short-circuits after the wave that found it; infeasible
    requires every subproblem exhausted — the same exhaustiveness
    argument as the sequential DFS, so verdicts are schedule-independent.

    Error semantics: a subtree that exhausts its work budget (or hits a
    solver failure) does not abort the solve — the search continues, and
    the error is re-raised only if *no* subproblem produces a feasible
    answer (an exact-checked witness is sound regardless of sibling
    failures; an "infeasible" with an unexplored subtree is not).  The
    ``max_support_nodes`` budget bounds each worker's subtree search
    individually — a deliberate resource-policy difference from the
    sequential path's single global budget, so a parallel run may finish
    a search the sequential run would abort (never the reverse verdict).
    """
    params = dict(
        backend=backend,
        max_support_nodes=max_support_nodes,
        max_cut_rounds=max_cut_rounds,
        lp_prune=lp_prune,
        exact_warm=exact_warm,
        inactive_rows=inactive_rows,
        inactive_clauses=inactive_clauses,
    )
    workers = min(jobs, len(frontier))
    stats.workers_spawned = workers
    found: SolveResult | None = None
    pending_error: tuple[str, str] | None = None
    with WorkerPool(workers, _init_branch_worker, (cs, params)) as executor:
        for start in range(0, len(frontier), workers):
            check_deadline()
            wave = frontier[start:start + workers]
            stats.parallel_waves += 1
            seed = pool.export()
            tasks = [(tuple(entry.items()), seed) for entry in wave]
            wave_started = time.monotonic()
            try:
                outcomes = executor.map(_branch_task, tasks)
            finally:
                stats.workers_crashed = executor.crashes
                stats.workers_respawned = executor.respawns
                stats.tasks_requeued = executor.requeues
                _notify_wave(time.monotonic() - wave_started, len(wave))
            for status, values, message, worker_stats, fresh, kind in outcomes:
                stats.absorb(worker_stats)
                accepted, duplicates = pool.merge(fresh)
                stats.cuts_merged += accepted
                stats.cut_merge_duplicates += duplicates
                if status == "feasible" and found is None:
                    found = SolveResult(status, values, message)
                elif status == "raised" and pending_error is None:
                    pending_error = (kind, message)
            if found is not None:
                # An exact-checked feasible answer is sound whatever
                # happened on sibling branches — errors become moot.
                return found
    if pending_error is not None:
        kind, message = pending_error
        raise _RAISABLE.get(kind, SolverError)(message)
    return SolveResult("infeasible", message="support search exhausted")


def _solve_rebuild(
    cs: ConditionalSystem,
    assignment: dict[str, bool | None],
    backend: str,
    max_support_nodes: int,
    max_cut_rounds: int,
    lp_prune: bool,
    stats: CondSolveStats,
    exact_warm: bool,
    inactive_rows: frozenset[int] = frozenset(),
    inactive_clauses: frozenset[int] = frozenset(),
) -> tuple[SolveResult, CondSolveStats]:
    """From-scratch reference path: rebuild a LinearSystem per node."""
    if inactive_rows or inactive_clauses:
        # Deactivated rows and clauses are simply absent from every
        # rebuilt system — the rebuild twin of the toggles on the hot path.
        cs = replace(
            cs,
            base=cs.base.copy(drop_rows=inactive_rows),
            clauses=tuple(
                clause
                for i, clause in enumerate(cs.clauses)
                if i not in inactive_clauses
            ),
        )
    solve = _make_solver(backend, exact_warm, stats)

    if not _propagate(cs, assignment):
        return SolveResult("infeasible", message="support propagation conflict"), stats

    # Shortcut: the maximal support (everything not forced out present) is
    # often feasible and found in one leaf solve.
    maximal = dict(assignment)
    for tau in cs.element_types:
        if maximal[tau] is None:
            maximal[tau] = True
    if _propagate(cs, maximal) and all(v is not None for v in maximal.values()):
        result = _solve_leaf(
            cs, _leaf_rows(cs, maximal), solve, stats, max_cut_rounds  # type: ignore[arg-type]
        )
        if result.feasible:
            stats.shortcut_hit = True
            return result, stats

    order = _branching_order(cs)

    def undecided(current: Mapping[str, bool | None]) -> str | None:
        for tau in order:
            if current[tau] is None:
                return tau
        return None

    stack: list[dict[str, bool | None]] = [assignment]
    while stack:
        current = stack.pop()
        stats.dfs_nodes += 1
        if stats.dfs_nodes > max_support_nodes:
            raise ComplexityLimitError(
                f"support search exceeded {max_support_nodes} nodes"
            )
        check_deadline()
        if not _propagate(cs, current):
            continue
        if lp_prune:
            stats.assemblies += 1
            if lp_infeasible(_partial_rows(cs, current)):
                stats.lp_prunes += 1
                continue
        choice = undecided(current)
        if choice is None:
            result = _solve_leaf(
                cs, _leaf_rows(cs, current), solve, stats, max_cut_rounds  # type: ignore[arg-type]
            )
            if result.feasible:
                return result, stats
            continue
        with_false = dict(current)
        with_false[choice] = False
        with_true = dict(current)
        with_true[choice] = True
        stack.append(with_false)
        stack.append(with_true)
    return SolveResult("infeasible", message="support search exhausted"), stats
