"""Exact integer linear programming over rationals, warm-started.

A bounded-variable **revised dual simplex** on :class:`fractions.Fraction`
arithmetic with depth-first branch and bound for integrality.  No floating
point anywhere, so answers are certified — this is the oracle the scipy
backend is cross-checked against in tests, and the fallback when a rounded
HiGHS solution fails exact verification.

The core design mirrors :mod:`repro.ilp.assembled` (DESIGN.md section 5):
every row ``a.x <sense> b`` is stored once as the equality ``a.x + s = b``
with the sense encoded in the *bounds* of the slack ``s``, so every search
delta — a branching bound ``x_j <= floor(v)`` / ``x_j >= ceil(v)``, a
support patch from :mod:`repro.ilp.condsys`, or the (de)activation of a
pooled connectivity cut — is a variable-bound change, never a new row.
Bound changes preserve dual feasibility of the current basis, so each
branch-and-bound child re-solves by a handful of dual-simplex pivots
warm-started from its parent's factorized basis instead of a fresh
two-phase solve.  ``warm=False`` refactorizes from the all-slack basis at
every node — the cold reference path the differential fuzz harness
(:mod:`tests.test_differential_fuzz`) cross-checks against.

Termination of branch and bound is guaranteed by bounding every variable
with the Papadimitriou small-solution bound (see :mod:`repro.ilp.bounds`):
if any solution exists, one exists within the bound, so searching the
bounded box is complete.  A work budget guards running time — both
branch-and-bound *nodes* and dual-simplex *pivots* are counted, so a
pathological bound-patch sequence cannot spin inside a single node —
and exceeding it raises :class:`SolverError` rather than returning a
wrong answer.

An :class:`ExactAssembledSystem` carries a live factorized basis across
calls and is therefore **single-owner state**, never shared between
processes: the parallel executor (DESIGN.md section 7) lazily builds
one per worker (through each worker's own ``SolveWorkspace``), and cut
rows learned elsewhere arrive as records replayed through ``add_cut``,
which extends the live factorization exactly like a locally learned cut.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor, gcd

from repro.errors import SolverError
from repro.ilp.bounds import papadimitriou_bound
from repro.ilp.model import (
    EQ,
    GE,
    LE,
    BoundPatch,
    LinearSystem,
    SolveResult,
    VarId,
)

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: Dual-simplex pivots allowed per branch-and-bound node (on average):
#: ``pivot_limit`` defaults to ``node_limit * _PIVOTS_PER_NODE``.
_PIVOTS_PER_NODE = 64

#: Consecutive degenerate pivots before the entering rule falls back from
#: largest-pivot tie-breaking to Bland's rule (which cannot cycle).
_BLAND_AFTER = 24


@dataclass
class ExactStats:
    """Work counters for the exact backend (shared across solves)."""

    #: Branch-and-bound nodes expanded.
    nodes: int = 0
    #: Dual-simplex pivots performed.
    pivots: int = 0
    #: LP re-solves served warm (basis carried over from a previous node).
    warm_solves: int = 0
    #: Basis refactorizations from scratch (cold starts + repairs).
    cold_restarts: int = 0


class _Budget:
    """Node and pivot budget; exhausting either raises :class:`SolverError`."""

    def __init__(self, node_limit: int, pivot_limit: int | None):
        self.node_limit = node_limit
        self.pivot_limit = (
            node_limit * _PIVOTS_PER_NODE if pivot_limit is None else pivot_limit
        )
        self.nodes = 0
        self.pivots = 0

    def spend_node(self) -> None:
        self.nodes += 1
        if self.nodes > self.node_limit:
            raise SolverError(
                f"exact branch-and-bound exceeded {self.node_limit} nodes"
            )

    def spend_pivot(self) -> None:
        self.pivots += 1
        if self.pivots > self.pivot_limit:
            raise SolverError(
                f"exact branch-and-bound exceeded {self.pivot_limit} "
                "dual-simplex pivots"
            )


class _RevisedDualSimplex:
    """Bounded-variable revised dual simplex over Fractions.

    Columns ``[0, n)`` are the structural variables (cost 1 each — the
    solver minimizes their sum so feasible answers make small witness
    trees); column ``n + i`` is the slack of row ``i`` (cost 0).  Every
    row is the equality ``a.x + s_i = rhs_i``; senses, branching bounds
    and cut activation all live in the per-solve bound arrays.

    The basis inverse is kept explicitly (dense ``m x m`` Fractions) and
    updated in place by pivots; :meth:`append_row` extends a live
    factorization with the new slack basic, so learning a connectivity
    cut never discards the basis.  Any state the engine is left in is
    dual feasible, hence a valid warm start for *any* subsequent bound
    assignment — the invariant the branch-and-bound driver relies on.
    """

    def __init__(self, num_struct: int):
        self.n = num_struct
        self.rhs: list[Fraction] = []
        #: Structural coefficients per row and per column (both views).
        self.row_coeffs: list[dict[int, Fraction]] = []
        self.col_rows: list[dict[int, Fraction]] = [
            {} for _ in range(num_struct)
        ]
        self.basis: list[int] = []
        self.basis_pos: list[int] = []
        self.at_upper: list[bool] = []
        self.binv: list[list[Fraction]] = []
        #: Reduced costs per column.  A function of the basis only — bound
        #: patches never touch it — so it warm-starts along with ``binv``.
        self.d: list[Fraction] = []
        self._ready = False
        self._last_basic_values: list[Fraction] = []

    # -- shape -------------------------------------------------------------

    @property
    def m(self) -> int:
        return len(self.rhs)

    @property
    def ncols(self) -> int:
        return self.n + self.m

    # -- rows --------------------------------------------------------------

    def append_row(self, coeffs: Mapping[int, Fraction], rhs: Fraction) -> None:
        """Append ``coeffs . x + s = rhs``; extends a live basis in place.

        ``B_new = [[B, 0], [a_B, 1]]`` (the new slack basic in the new
        row), so ``B_new^-1 = [[B^-1, 0], [-a_B B^-1, 1]]`` — the warm
        factorization survives cut learning.
        """
        row = {j: c for j, c in coeffs.items() if c}
        index = self.m
        self.row_coeffs.append(row)
        self.rhs.append(rhs)
        for j, c in row.items():
            self.col_rows[j][index] = c
        slack = self.n + index
        if self._ready:
            a_basic = [
                row.get(col, _ZERO) if col < self.n else _ZERO
                for col in self.basis
            ]
            new_row = [
                -sum(
                    a_basic[p] * self.binv[p][q] for p in range(index) if a_basic[p]
                )
                for q in range(index)
            ]
            new_row.append(_ONE)
            for binv_row in self.binv:
                binv_row.append(_ZERO)
            self.binv.append(new_row)
            self.basis_pos.append(index)
            self.at_upper.append(False)
            self.basis.append(slack)
            # The new slack is basic with cost 0, so ``y`` gains a zero
            # component and every existing reduced cost is unchanged.
            self.d.append(_ZERO)

    # -- basis lifecycle ---------------------------------------------------

    def reset(self) -> None:
        """Cold start: all-slack basis, structural columns at lower bound.

        Always dual feasible for the min-sum objective (reduced costs are
        the unit costs, all ``>= 0``, with every nonbasic at its lower
        bound).
        """
        m = self.m
        self.basis = [self.n + i for i in range(m)]
        self.binv = [
            [_ONE if p == q else _ZERO for q in range(m)] for p in range(m)
        ]
        self.basis_pos = [-1] * self.n + list(range(m))
        self.at_upper = [False] * self.ncols
        self.d = [_ONE] * self.n + [_ZERO] * m
        self._ready = True

    def _basic_values(
        self, lower: list[Fraction | None], upper: list[Fraction | None]
    ) -> list[Fraction]:
        """``x_B = B^-1 (rhs - N x_N)`` with nonbasics at their bound."""
        q = list(self.rhs)
        for j in range(self.ncols):
            if self.basis_pos[j] >= 0:
                continue
            value = upper[j] if self.at_upper[j] else lower[j]
            if value is None:  # pragma: no cover - statuses keep bounds finite
                raise SolverError("nonbasic variable without a finite bound")
            if not value:
                continue
            if j >= self.n:
                q[j - self.n] -= value
            else:
                for i, c in self.col_rows[j].items():
                    q[i] -= c * value
        nonzero = [i for i, value in enumerate(q) if value]
        return [
            sum(row[i] * q[i] for i in nonzero if row[i]) or _ZERO
            for row in self.binv
        ]

    def _tableau_column(self, entering: int) -> list[Fraction]:
        """``t = B^-1 A_entering`` — the entering variable's column."""
        m = self.m
        if entering >= self.n:
            i = entering - self.n
            return [self.binv[p][i] for p in range(m)]
        col = self.col_rows[entering]
        return [
            sum(self.binv[p][i] * c for i, c in col.items() if self.binv[p][i])
            or _ZERO
            for p in range(m)
        ]

    def _pivot(self, r: int, entering: int, t: list[Fraction]) -> None:
        """Replace the basic variable of row ``r`` by ``entering``."""
        m = self.m
        pivot_value = t[r]
        if pivot_value != 1:
            self.binv[r] = [value / pivot_value for value in self.binv[r]]
        pivot_row = self.binv[r]
        for p in range(m):
            if p == r or not t[p]:
                continue
            factor = t[p]
            other = self.binv[p]
            for q in range(m):
                if pivot_row[q]:
                    other[q] -= factor * pivot_row[q]
        leaving = self.basis[r]
        self.basis_pos[leaving] = -1
        self.basis[r] = entering
        self.basis_pos[entering] = r

    # -- solving -----------------------------------------------------------

    def _settle_statuses(
        self, lower: list[Fraction | None], upper: list[Fraction | None]
    ) -> bool:
        """Restore the dual-feasible parking of every nonbasic column.

        Bound patches can remove the bound a nonbasic sits on (cut
        toggles) or *unfix* a column that was pinned ``lower == upper``
        under the previous patches — a fixed column carries no dual sign
        condition, so its reduced cost may be arbitrary when it widens.
        Each nonbasic must end on a finite bound whose dual sign matches
        its reduced cost (``>= 0`` at lower, ``<= 0`` at upper); a bound
        flip achieves that for free.  When neither side works the basis
        is refactorized cold (rare) and ``False`` is returned so the
        caller books the solve as a cold restart.
        """
        for j in range(self.ncols):
            if self.basis_pos[j] >= 0:
                continue
            low, high = lower[j], upper[j]
            if low is not None and low == high:
                continue  # fixed: both sides finite, no sign condition
            reduced = self.d[j]
            if self.at_upper[j]:
                if high is None or reduced > 0:
                    if low is None or reduced < 0:
                        self.reset()
                        return False
                    self.at_upper[j] = False
            else:
                if low is None or reduced < 0:
                    if high is None or reduced > 0:
                        self.reset()
                        return False
                    self.at_upper[j] = True
        return True

    def solve(
        self,
        lower: list[Fraction | None],
        upper: list[Fraction | None],
        budget: _Budget,
        stats: ExactStats,
        warm: bool,
    ) -> str:
        """Dual simplex to optimality; ``"optimal"`` or ``"infeasible"``.

        Leaving row: smallest basic column index among bound violations.
        Entering: minimum dual ratio, ties broken by largest pivot
        magnitude; after ``_BLAND_AFTER`` consecutive dual-degenerate
        pivots the tie-break falls back to smallest column index (the
        dual Bland rule, which cannot cycle).  The pivot budget backstops
        termination — it raises rather than ever returning a wrong
        status.
        """
        if not warm or not self._ready or len(self.basis) != self.m:
            self.reset()
            stats.cold_restarts += 1
        elif self._settle_statuses(lower, upper):
            stats.warm_solves += 1
        else:  # dual-infeasible parking forced a repair refactorization
            stats.cold_restarts += 1
        x_basic = self._basic_values(lower, upper)
        fixed = [
            lower[j] is not None and upper[j] is not None and lower[j] == upper[j]
            for j in range(self.ncols)
        ]
        stalled = 0  # consecutive dual-degenerate pivots -> Bland fallback
        while True:
            leave_row = -1
            leave_col = self.ncols
            below = False
            for p in range(self.m):
                col = self.basis[p]
                value = x_basic[p]
                low, high = lower[col], upper[col]
                if low is not None and value < low:
                    if col < leave_col:
                        leave_row, leave_col, below = p, col, True
                elif high is not None and value > high:
                    if col < leave_col:
                        leave_row, leave_col, below = p, col, False
            if leave_row < 0:
                self._last_basic_values = x_basic
                return "optimal"
            budget.spend_pivot()
            stats.pivots += 1
            # Sparse pivot row: alpha_j = binv[r] . A_j for every column.
            rho = self.binv[leave_row]
            alpha: dict[int, Fraction] = {}
            for i, rho_i in enumerate(rho):
                if not rho_i:
                    continue
                alpha[self.n + i] = rho_i
                for j, c in self.row_coeffs[i].items():
                    value = alpha.get(j, _ZERO) + rho_i * c
                    if value:
                        alpha[j] = value
                    else:
                        alpha.pop(j, None)
            best_j = -1
            best_ratio: Fraction | None = None
            best_alpha = _ZERO
            bland = stalled >= _BLAND_AFTER
            for j, alpha_j in alpha.items():
                if self.basis_pos[j] >= 0 or fixed[j]:
                    continue
                if below:
                    # x_B[r] must increase: at-lower entering increases
                    # (needs alpha < 0), at-upper entering decreases
                    # (needs alpha > 0).
                    ok = (alpha_j < 0) if not self.at_upper[j] else (alpha_j > 0)
                else:
                    ok = (alpha_j > 0) if not self.at_upper[j] else (alpha_j < 0)
                if not ok:
                    continue
                ratio = abs(self.d[j]) / abs(alpha_j)
                if best_ratio is None or ratio < best_ratio:
                    better = True
                elif ratio > best_ratio:
                    better = False
                elif bland:
                    better = j < best_j
                else:
                    # Largest pivot magnitude among ties (then smallest
                    # index) keeps the factorization sparse and stable.
                    magnitude = abs(alpha_j)
                    better = magnitude > best_alpha or (
                        magnitude == best_alpha and j < best_j
                    )
                if better:
                    best_ratio = ratio
                    best_j = j
                    best_alpha = abs(alpha_j)
            if best_j < 0:
                return "infeasible"
            # Incremental primal update: the entering variable moves by
            # delta off its bound, driving the leaving basic exactly onto
            # the bound it violated; x_B shifts along the tableau column.
            t = self._tableau_column(best_j)
            target = lower[leave_col] if below else upper[leave_col]
            delta = (x_basic[leave_row] - target) / t[leave_row]
            entering_value = (
                upper[best_j] if self.at_upper[best_j] else lower[best_j]
            )
            if delta:
                for p in range(self.m):
                    if t[p]:
                        x_basic[p] -= delta * t[p]
            x_basic[leave_row] = entering_value + delta
            # Dual update: theta is the dual step length; the leaving
            # column picks up -theta, every other nonbasic shifts along
            # the pivot row.  Basic columns stay at zero by construction.
            # A zero theta is a dual-degenerate pivot — only those can
            # participate in a cycle, so they feed the Bland fallback.
            theta = self.d[best_j] / alpha[best_j]
            stalled = 0 if theta else stalled + 1
            if theta:
                for j, alpha_j in alpha.items():
                    if self.basis_pos[j] < 0:
                        self.d[j] -= theta * alpha_j
            self.d[best_j] = _ZERO
            self._pivot(leave_row, best_j, t)
            self.d[leave_col] = -theta
            # The leaving variable rests on the bound it violated.
            self.at_upper[leave_col] = not below

    def solution(
        self, lower: list[Fraction | None], upper: list[Fraction | None]
    ) -> list[Fraction]:
        """Structural variable values at the last optimal basis."""
        values = []
        for j in range(self.n):
            pos = self.basis_pos[j]
            if pos >= 0:
                values.append(self._last_basic_values[pos])
            else:
                bound = upper[j] if self.at_upper[j] else lower[j]
                values.append(bound if bound is not None else _ZERO)
        return values


class ExactAssembledSystem:
    """A certified twin of :class:`repro.ilp.assembled.AssembledSystem`.

    Assembled once from a :class:`LinearSystem`; every solve supplies
    variable-bound patches plus the set of active cut indices, exactly
    like the float backend, so :func:`repro.ilp.condsys._solve_leaf_assembled`
    can hand either backend the same patch lists.  The revised-simplex
    basis persists across calls: consecutive leaf solves of a support
    search warm-start each other, and within one call every
    branch-and-bound child warm-starts from its parent's basis.
    """

    def __init__(self, system: LinearSystem):
        self._system = system
        self._n = system.num_vars
        self._engine = _RevisedDualSimplex(self._n)
        self._senses: list[str] = []
        #: Base rows no integer point can satisfy (gcd test), with their
        #: indices — consulted per solve so a *deactivated* row never
        #: refutes a system it is not part of.
        self._gcd_rows: list[tuple[int, str]] = []
        for index, row in enumerate(system.rows):
            merged: dict[int, Fraction] = {}
            for var, coeff in row.coeffs:
                j = system.index_of(var)
                merged[j] = merged.get(j, _ZERO) + Fraction(coeff)
            self._engine.append_row(merged, Fraction(row.rhs))
            self._senses.append(row.sense)
            if row.sense == EQ and row.coeffs:
                divisor = 0
                for _, coeff in row.coeffs:
                    divisor = gcd(divisor, abs(coeff))
                if divisor > 1 and row.rhs % divisor != 0:
                    self._gcd_rows.append((index, f"gcd cut on row {row.pretty()}"))
        self._num_base_rows = system.num_rows
        self._cut_rhs: list[int] = []
        self._max_cut_abs = 1
        self._base_max_abs = system.max_abs_value()
        self.stats = ExactStats()

    # -- shape -------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._n

    @property
    def num_cuts(self) -> int:
        return len(self._cut_rhs)

    @property
    def system(self) -> LinearSystem:
        return self._system

    # -- cut pool ----------------------------------------------------------

    def add_cut(self, coeffs: Mapping[VarId, int], rhs: int, label: str = "") -> int:
        """Append a ``sum(coeffs) >= rhs`` row; returns its pool index.

        The row is appended to the live factorization (new slack basic),
        so a warm basis survives; activation is controlled per solve by
        the ``active`` argument, which widens or narrows the slack's
        bounds — never a matrix change.
        """
        merged: dict[int, Fraction] = {}
        for var, coeff in coeffs.items():
            j = self._system.index_of(var)
            merged[j] = merged.get(j, _ZERO) + Fraction(coeff)
            self._max_cut_abs = max(self._max_cut_abs, abs(int(coeff)))
        self._max_cut_abs = max(self._max_cut_abs, abs(int(rhs)))
        self._engine.append_row(merged, Fraction(rhs))
        self._senses.append(GE)
        self._cut_rhs.append(int(rhs))
        return len(self._cut_rhs) - 1

    # -- bounds ------------------------------------------------------------

    def _structural_bounds(
        self, patches: Mapping[VarId, BoundPatch]
    ) -> tuple[list[Fraction], list[Fraction], int]:
        """Patched structural boxes; unbounded columns get the
        Papadimitriou bound so branch and bound is complete."""
        lower = [_ZERO] * self._n
        upper: list[Fraction | None] = [None] * self._n
        for var in self._system.variables:
            bound = self._system.upper(var)
            if bound is not None:
                upper[self._system.index_of(var)] = Fraction(bound)
        patch_lowers = 0
        max_patch = 1
        for var, (low, high) in patches.items():
            j = self._system.index_of(var)
            if low is not None:
                value = Fraction(low)
                if value > lower[j]:
                    lower[j] = value
                if low > 0:
                    patch_lowers += 1
                max_patch = max(max_patch, abs(low))
            if high is not None:
                value = Fraction(high)
                if upper[j] is None or value < upper[j]:
                    upper[j] = value
                max_patch = max(max_patch, abs(high))
        rows_effective = self._num_base_rows + self.num_cuts + patch_lowers
        max_abs = max(self._base_max_abs, self._max_cut_abs, max_patch)
        default = Fraction(
            papadimitriou_bound(self._n, rows_effective, max_abs)
        )
        filled = [default if value is None else value for value in upper]
        return lower, filled, patch_lowers

    def _column_bounds(
        self,
        patches: Mapping[VarId, BoundPatch],
        active: set[int],
        inactive_rows: frozenset[int] = frozenset(),
    ) -> tuple[list[Fraction | None], list[Fraction | None]]:
        """Full bound arrays (structural + slacks) for one solve.

        Active rows encode their sense in the slack box; a deactivated
        row's slack — a pool cut not in ``active``, or a toggleable base
        row named by ``inactive_rows`` — gets the box implied by the
        structural boxes, which constrains nothing but keeps every bound
        finite.  Either way the factorization is untouched: (de)activation
        is purely a slack-bound change.
        """
        struct_lower, struct_upper, _ = self._structural_bounds(patches)
        lower: list[Fraction | None] = list(struct_lower)
        upper: list[Fraction | None] = list(struct_upper)
        engine = self._engine
        for i, sense in enumerate(self._senses):
            cut_index = i - self._num_base_rows
            deactivated = (
                cut_index not in active if cut_index >= 0 else i in inactive_rows
            )
            if deactivated:
                # Implied activity range of the row over the current box.
                low_activity = _ZERO
                high_activity = _ZERO
                for j, c in engine.row_coeffs[i].items():
                    if c > 0:
                        low_activity += c * struct_lower[j]
                        high_activity += c * struct_upper[j]
                    else:
                        low_activity += c * struct_upper[j]
                        high_activity += c * struct_lower[j]
                rhs = engine.rhs[i]
                lower.append(rhs - high_activity)
                upper.append(rhs - low_activity)
            elif sense == LE:
                lower.append(_ZERO)
                upper.append(None)
            elif sense == GE:
                lower.append(None)
                upper.append(_ZERO)
            else:
                lower.append(_ZERO)
                upper.append(_ZERO)
        return lower, upper

    # -- solving -----------------------------------------------------------

    def solve_int(
        self,
        patches: Mapping[VarId, BoundPatch],
        active: set[int] | frozenset[int] | None = None,
        node_limit: int = 5000,
        pivot_limit: int | None = None,
        warm: bool = True,
        inactive_rows: frozenset[int] = frozenset(),
    ) -> SolveResult:
        """Certified integer solve under bound patches and active cuts.

        ``inactive_rows`` deactivates the named base rows for this solve
        (slack-box relaxation on the live factorization — the toggleable
        constraint rows of DESIGN.md section 6).  Returns the first
        integral solution of the depth-first search — small in practice
        (the LP objective is the sum of all variables) but not certified
        minimal: alternate optimal LP vertices can steer different
        branchings.  ``warm=False`` refactorizes the basis at every
        branch-and-bound node (the cold reference path); the default
        carries the parent's basis into each child and across calls.
        """
        active = set(active or ())
        if self._n == 0:
            for i, row in enumerate(self._system.rows):
                if i not in inactive_rows and not row.evaluate({}):
                    return SolveResult("infeasible", message="constant row violated")
            return SolveResult("feasible", {})
        for gcd_row, message in self._gcd_rows:
            if gcd_row not in inactive_rows:
                return SolveResult("infeasible", message=message)

        base_lower, base_upper = self._column_bounds(patches, active, inactive_rows)
        # Crossing boxes are infeasible outright — the dual simplex only
        # polices *basic* variables against their bounds, so a nonbasic
        # parked on one side of an empty box would go unnoticed.
        for low, high in zip(base_lower, base_upper):
            if low is not None and high is not None and low > high:
                return SolveResult("infeasible", message="empty variable box")
        budget = _Budget(node_limit, pivot_limit)
        engine = self._engine
        stats = self.stats

        stack: list[tuple[tuple[int, bool, Fraction], ...]] = [()]
        while stack:
            extra = stack.pop()
            budget.spend_node()
            stats.nodes += 1
            lower = list(base_lower)
            upper = list(base_upper)
            empty = False
            for j, is_upper, bound in extra:
                if is_upper:
                    if upper[j] is None or bound < upper[j]:
                        upper[j] = bound
                else:
                    if lower[j] is None or bound > lower[j]:
                        lower[j] = bound
                if (
                    lower[j] is not None
                    and upper[j] is not None
                    and lower[j] > upper[j]
                ):
                    empty = True
                    break
            if empty:
                continue
            status = engine.solve(lower, upper, budget, stats, warm)
            if status == "infeasible":
                continue
            solution = engine.solution(lower, upper)
            fractional = next(
                (
                    index
                    for index, value in enumerate(solution)
                    if value.denominator != 1
                ),
                None,
            )
            if fractional is None:
                values = {
                    var: int(solution[self._system.index_of(var)])
                    for var in self._system.variables
                }
                return SolveResult("feasible", values)
            value = solution[fractional]
            stack.append(extra + ((fractional, False, Fraction(ceil(value))),))
            stack.append(extra + ((fractional, True, Fraction(floor(value))),))
        return SolveResult("infeasible", message="branch and bound exhausted")


def solve_exact(
    system: LinearSystem,
    node_limit: int = 5000,
    warm: bool = True,
    pivot_limit: int | None = None,
    stats: ExactStats | None = None,
) -> SolveResult:
    """Certified feasibility check of the integer system.

    The LP objective is the sum of all variables, so the first integral
    solution the search finds is small (small solutions make small witness
    trees).  Every variable without an explicit upper bound receives the
    Papadimitriou bound, which makes branch and bound complete; the node
    and pivot budgets guard time and raise :class:`SolverError` when
    exhausted.  ``warm=False`` selects the cold per-node refactorization
    path kept for differential testing.
    """
    assembled = ExactAssembledSystem(system)
    if stats is not None:
        assembled.stats = stats
    return assembled.solve_int(
        {}, node_limit=node_limit, pivot_limit=pivot_limit, warm=warm
    )
