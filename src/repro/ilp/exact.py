"""Exact integer linear programming over rationals.

A self-contained two-phase simplex on :class:`fractions.Fraction` tableaus
(Bland's rule, hence guaranteed termination) with depth-first branch and
bound for integrality. No floating point anywhere, so answers are certified
— this is the oracle the scipy backend is cross-checked against in tests,
and the fallback when a rounded HiGHS solution fails exact verification.

Termination of branch and bound is guaranteed by bounding every variable
with the Papadimitriou small-solution bound (see :mod:`repro.ilp.bounds`):
if any solution exists, one exists within the bound, so searching the
bounded box is complete. A node budget guards running time; exceeding it
raises :class:`SolverError` rather than returning a wrong answer.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil, floor, gcd

from repro.errors import SolverError
from repro.ilp.bounds import papadimitriou_bound
from repro.ilp.model import EQ, GE, LE, LinearSystem, SolveResult


class _Simplex:
    """Two-phase dense simplex over Fractions with Bland's rule."""

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        self.rows: list[list[Fraction]] = []  # coefficients per structural var
        self.senses: list[str] = []
        self.rhs: list[Fraction] = []

    def add(self, coeffs: dict[int, Fraction], sense: str, rhs: Fraction) -> None:
        dense = [Fraction(0)] * self.num_vars
        for index, coeff in coeffs.items():
            dense[index] += coeff
        self.rows.append(dense)
        self.senses.append(sense)
        self.rhs.append(rhs)

    def solve(self, objective: list[Fraction]) -> tuple[str, list[Fraction] | None]:
        """Minimize ``objective``; returns (status, solution).

        Status is ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
        """
        m = len(self.rows)
        # Slack/surplus columns: one per inequality row.
        slack_cols = [i for i, sense in enumerate(self.senses) if sense != EQ]
        n_slack = len(slack_cols)
        n_total = self.num_vars + n_slack + m  # + artificials
        art_start = self.num_vars + n_slack
        tableau: list[list[Fraction]] = []
        basis: list[int] = []
        slack_index = {row: self.num_vars + k for k, row in enumerate(slack_cols)}
        for i in range(m):
            line = [Fraction(0)] * (n_total + 1)
            for j in range(self.num_vars):
                line[j] = self.rows[i][j]
            if self.senses[i] == LE:
                line[slack_index[i]] = Fraction(1)
            elif self.senses[i] == GE:
                line[slack_index[i]] = Fraction(-1)
            line[n_total] = self.rhs[i]
            if line[n_total] < 0:
                line = [-value for value in line]
            line[art_start + i] = Fraction(1)
            tableau.append(line)
            basis.append(art_start + i)

        def pivot(row: int, col: int) -> None:
            pivot_value = tableau[row][col]
            if pivot_value != 1:
                tableau[row] = [value / pivot_value for value in tableau[row]]
            pivot_row = tableau[row]
            # Tableau rows are sparse in practice; touching only the pivot
            # row's nonzero columns avoids multiplying walls of zeros.
            nonzero_cols = [j for j, value in enumerate(pivot_row) if value != 0]
            for other in range(m):
                if other == row:
                    continue
                factor = tableau[other][col]
                if factor != 0:
                    other_row = tableau[other]
                    for j in nonzero_cols:
                        other_row[j] -= factor * pivot_row[j]
            basis[row] = col

        def run_phase(cost: list[Fraction], allowed: int) -> Fraction:
            """Minimize cost over columns [0, allowed); returns optimum."""
            while True:
                # Reduced costs: z_j - c_j for basic representation.
                duals = [cost[basis[i]] for i in range(m)]
                entering = -1
                for j in range(allowed):
                    reduced = cost[j] - sum(
                        duals[i] * tableau[i][j] for i in range(m)
                    )
                    if reduced < 0:
                        entering = j
                        break  # Bland: first improving column
                if entering < 0:
                    objective_value = sum(
                        duals[i] * tableau[i][n_total] for i in range(m)
                    )
                    return objective_value
                leaving = -1
                best_ratio: Fraction | None = None
                for i in range(m):
                    coeff = tableau[i][entering]
                    if coeff > 0:
                        ratio = tableau[i][n_total] / coeff
                        if (
                            best_ratio is None
                            or ratio < best_ratio
                            or (ratio == best_ratio and basis[i] < basis[leaving])
                        ):
                            best_ratio = ratio
                            leaving = i
                if leaving < 0:
                    raise _Unbounded()
                pivot(leaving, entering)

        # Phase 1: drive artificials to zero.
        phase1_cost = [Fraction(0)] * n_total
        for j in range(art_start, n_total):
            phase1_cost[j] = Fraction(1)
        try:
            phase1_value = run_phase(phase1_cost, n_total)
        except _Unbounded:  # pragma: no cover - phase 1 is bounded below by 0
            raise SolverError("phase 1 reported unbounded") from None
        if phase1_value > 0:
            return "infeasible", None
        # Pivot artificials out of the basis where possible.
        for i in range(m):
            if basis[i] >= art_start:
                for j in range(art_start):
                    if tableau[i][j] != 0:
                        pivot(i, j)
                        break
        # Phase 2 over structural + slack columns only.
        phase2_cost = [Fraction(0)] * n_total
        for j in range(self.num_vars):
            phase2_cost[j] = objective[j]
        try:
            run_phase(phase2_cost, art_start)
        except _Unbounded:
            return "unbounded", None
        solution = [Fraction(0)] * self.num_vars
        n_total_col = n_total
        for i in range(m):
            if basis[i] < self.num_vars:
                solution[basis[i]] = tableau[i][n_total_col]
        return "optimal", solution


class _Unbounded(Exception):
    """Internal: the current phase detected an unbounded direction."""


def _solve_lp(
    system: LinearSystem,
    extra: list[tuple[int, str, int]],
) -> tuple[str, list[Fraction] | None]:
    """LP relaxation of ``system`` plus branching bounds ``extra``.

    ``extra`` entries are ``(var_index, sense, bound)``.
    """
    simplex = _Simplex(system.num_vars)
    for row in system.rows:
        simplex.add(
            {system.index_of(var): Fraction(coeff) for var, coeff in row.coeffs},
            row.sense,
            Fraction(row.rhs),
        )
    for var in system.variables:
        bound = system.upper(var)
        if bound is not None:
            simplex.add({system.index_of(var): Fraction(1)}, LE, Fraction(bound))
    for index, sense, bound in extra:
        simplex.add({index: Fraction(1)}, sense, Fraction(bound))
    objective = [Fraction(1)] * system.num_vars
    return simplex.solve(objective)


def solve_exact(system: LinearSystem, node_limit: int = 5000) -> SolveResult:
    """Certified feasibility check of the integer system.

    Minimizes the sum of all variables (small solutions make small witness
    trees). Every variable without an explicit upper bound receives the
    Papadimitriou bound, which makes branch and bound complete; the node
    budget guards time and raises :class:`SolverError` when exhausted.
    """
    if system.num_vars == 0:
        for row in system.rows:
            if not row.evaluate({}):
                return SolveResult("infeasible", message="constant row violated")
        return SolveResult("feasible", {})

    # GCD preprocessing: an equality whose coefficients share a divisor that
    # does not divide the right-hand side is unsatisfiable over integers.
    for row in system.rows:
        if row.sense == EQ and row.coeffs:
            divisor = 0
            for _, coeff in row.coeffs:
                divisor = gcd(divisor, abs(coeff))
            if divisor > 1 and row.rhs % divisor != 0:
                return SolveResult(
                    "infeasible", message=f"gcd cut on row {row.pretty()}"
                )

    default_bound = papadimitriou_bound(
        system.num_vars, system.num_rows, system.max_abs_value()
    )
    bounded = system.copy()
    for var in bounded.variables:
        if bounded.upper(var) is None:
            bounded.set_upper(var, default_bound)

    nodes = 0
    stack: list[list[tuple[int, str, int]]] = [[]]
    while stack:
        extra = stack.pop()
        nodes += 1
        if nodes > node_limit:
            raise SolverError(
                f"exact branch-and-bound exceeded {node_limit} nodes"
            )
        status, solution = _solve_lp(bounded, extra)
        if status == "infeasible":
            continue
        if status == "unbounded":  # pragma: no cover - bounds forbid this
            raise SolverError("bounded system reported unbounded")
        assert solution is not None
        fractional = next(
            (
                index
                for index, value in enumerate(solution)
                if value.denominator != 1
            ),
            None,
        )
        if fractional is None:
            values = {
                var: int(solution[bounded.index_of(var)])
                for var in bounded.variables
            }
            return SolveResult("feasible", values)
        value = solution[fractional]
        down = extra + [(fractional, LE, floor(value))]
        up = extra + [(fractional, GE, ceil(value))]
        stack.append(up)
        stack.append(down)
    return SolveResult("infeasible", message="branch and bound exhausted")
