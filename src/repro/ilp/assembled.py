"""Assemble-once linear systems with patchable variable bounds.

The support search of :mod:`repro.ilp.condsys` explores many variants of
*one* base system ``Psi(D, Sigma)``: every per-node delta — ``support:tau``
(``ext >= 1``), ``absent:tau`` (``ext == 0``) and the ``attr-total`` rows —
is a *variable-bound* change, never a new matrix row.  Rebuilding a fresh
matrix per node (the pre-incremental design) therefore wasted almost all of
its time re-densifying identical coefficients and re-validating them through
``scipy.optimize``'s per-call machinery.

:class:`AssembledSystem` assembles the base matrix exactly once (sparse CSR,
so there is no dense size cap) and serves every subsequent solve by patching
the variable-bound arrays:

* with the vendored HiGHS binding (``scipy.optimize._highspy``) available,
  two persistent solver instances (one integer, one LP relaxation) hold the
  model; each solve is a ``changeColsBounds`` + ``run`` round-trip, and
  connectivity cuts learned during the search are appended with ``addRow``
  and switched on/off per solve through their row bounds;
* otherwise a portable fallback drives the public ``scipy.optimize.milp``
  entry point with the cached sparse matrix — still assemble-once, just with
  scipy's per-call validation cost.

**Toggleable rows** (DESIGN.md section 6) extend the same discipline to the
*base* rows: a solve may name ``inactive_rows`` — base-row indices whose
bounds are relaxed to ``(-inf, inf)`` for that solve, exactly the mechanism
that switches pooled connectivity cuts on and off.  The encoders register
each ``C_Sigma`` row (and each negated-constraint row) under its stable row
index, so diagnostics can probe any constraint subset by bound flips on the
one assembled system instead of re-encoding it per subset.

An :class:`AssembledSystem` — like the persistent HiGHS instances it
drives — is **single-owner state**: it is never shared across processes
or threads.  The parallel executor (DESIGN.md section 7) gives every
worker its own instance (each fork worker assembles its own from the
pickled base system; ``SolveWorkspace.clone()`` is the same ownership
rule for same-process callers) and moves only cut *records* between
owners under the pool's dedup/merge policy.

>>> from repro.ilp.model import LinearSystem
>>> sys = LinearSystem()
>>> sys.add_ge({"x": 1}, 1, label="always")
0
>>> blocking = sys.add_le({"x": 1}, 0, label="toggleable")   # forces x <= 0
>>> assembled = AssembledSystem(sys)
>>> assembled.solve_int({}).status                  # both rows: 1 <= x <= 0
'infeasible'
>>> result = assembled.solve_int({}, inactive_rows=frozenset({blocking}))
>>> (result.status, result.values["x"], assembled.assemblies)
('feasible', 1, 1)

Exactness is preserved by the same discipline as the one-shot backend: every
floating-point solution is rounded and re-checked exactly against the
integer rows (base, cuts, and patched bounds); a failed check degrades to
``"error"`` so callers fall back to the rational simplex, never to a wrong
answer.  LP answers are only trusted when definitely infeasible, or when the
rounded vertex passes the exact check.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import SolverError
from repro.ilp.model import (
    EQ,
    GE,
    LE,
    BoundPatch,
    LinearSystem,
    Row,
    SolveResult,
    VarId,
)

try:  # pragma: no cover - exercised indirectly by every solver test
    from scipy.optimize._highspy import _core as _highs
except ImportError:  # pragma: no cover - environment without vendored HiGHS
    _highs = None


def assemble_arrays(system: LinearSystem):
    """Sparse CSR triplets and bound arrays for a :class:`LinearSystem`.

    Returns ``(indptr, indices, data, row_lower, row_upper, var_lower,
    var_upper)``.  Duplicate variable mentions within a row are merged, like
    the dense assembly's ``+=`` did.
    """
    num_rows = system.num_rows
    indptr = np.zeros(num_rows + 1, dtype=np.int32)
    indices: list[int] = []
    data: list[float] = []
    row_lower = np.full(num_rows, -np.inf)
    row_upper = np.full(num_rows, np.inf)
    for i, row in enumerate(system.rows):
        merged: dict[int, int] = {}
        for var, coeff in row.coeffs:
            j = system.index_of(var)
            merged[j] = merged.get(j, 0) + coeff
        for j in sorted(merged):
            indices.append(j)
            data.append(float(merged[j]))
        indptr[i + 1] = len(indices)
        if row.sense == LE:
            row_upper[i] = row.rhs
        elif row.sense == GE:
            row_lower[i] = row.rhs
        elif row.sense == EQ:
            row_lower[i] = row.rhs
            row_upper[i] = row.rhs
        else:  # pragma: no cover - defensive
            raise SolverError(f"unknown row sense {row.sense!r}")
    var_lower = np.zeros(system.num_vars)
    var_upper = np.full(system.num_vars, np.inf)
    for var in system.variables:
        bound = system.upper(var)
        if bound is not None:
            var_upper[system.index_of(var)] = float(bound)
    return (
        indptr,
        np.array(indices, dtype=np.int32),
        np.array(data, dtype=np.float64),
        row_lower,
        row_upper,
        var_lower,
        var_upper,
    )


class _HighsInstance:
    """One persistent HiGHS model: pass once, then patch bounds and re-run."""

    def __init__(self, assembled: "AssembledSystem", integer: bool):
        self._n = assembled.num_vars
        h = _highs._Highs()
        for name, value in (
            ("output_flag", False),
            ("log_to_console", False),
            ("threads", 1),
        ):
            try:
                h.setOptionValue(name, value)
            except Exception:  # pragma: no cover - option-name drift
                pass
        lp = _highs.HighsLp()
        lp.num_col_ = assembled.num_vars
        lp.num_row_ = assembled.num_base_rows
        lp.col_cost_ = np.ones(assembled.num_vars)
        lp.col_lower_ = self._finite(assembled.base_var_lower)
        lp.col_upper_ = self._finite(assembled.base_var_upper)
        lp.row_lower_ = self._finite(assembled.base_row_lower)
        lp.row_upper_ = self._finite(assembled.base_row_upper)
        matrix = _highs.HighsSparseMatrix()
        matrix.format_ = _highs.MatrixFormat.kRowwise
        matrix.num_col_ = assembled.num_vars
        matrix.num_row_ = assembled.num_base_rows
        matrix.start_ = assembled.indptr
        matrix.index_ = assembled.indices
        matrix.value_ = assembled.data
        lp.a_matrix_ = matrix
        if integer:
            lp.integrality_ = np.array(
                [_highs.HighsVarType.kInteger] * assembled.num_vars
            )
        if h.passModel(lp) == _highs.HighsStatus.kError:
            raise SolverError("HiGHS rejected the assembled model")
        self._h = h
        self._all_cols = np.arange(assembled.num_vars, dtype=np.int32)
        self._num_rows = assembled.num_base_rows

    @staticmethod
    def _finite(array: np.ndarray) -> np.ndarray:
        """Replace +/-inf with HiGHS's own infinity sentinel."""
        out = np.asarray(array, dtype=np.float64).copy()
        out[out == np.inf] = _highs.kHighsInf
        out[out == -np.inf] = -_highs.kHighsInf
        return out

    def add_row(self, coeffs: Mapping[int, float], lower: float) -> None:
        """Append a ``>= lower`` row (a connectivity cut)."""
        cols = np.array(sorted(coeffs), dtype=np.int32)
        vals = np.array([float(coeffs[j]) for j in sorted(coeffs)])
        status = self._h.addRow(lower, _highs.kHighsInf, len(cols), cols, vals)
        if status == _highs.HighsStatus.kError:  # pragma: no cover - defensive
            raise SolverError("HiGHS rejected an appended cut row")
        self._num_rows += 1

    def set_row_bounds(self, row: int, lower: float, upper: float) -> None:
        """(De)activate a row in place by moving its bounds.

        Deactivation relaxes both sides to infinity; reactivation restores
        the assembled bounds — never a matrix change.
        """
        self._h.changeRowBounds(
            row,
            lower if lower != -np.inf else -_highs.kHighsInf,
            upper if upper != np.inf else _highs.kHighsInf,
        )

    def solve(
        self, var_lower: np.ndarray, var_upper: np.ndarray
    ) -> tuple[str, np.ndarray | None]:
        """Re-solve under patched variable bounds.

        Returns ``("optimal", x)``, ``("infeasible", None)`` or
        ``("unknown", None)`` — anything numerically doubtful is "unknown".
        """
        h = self._h
        h.changeColsBounds(
            self._n, self._all_cols, self._finite(var_lower), self._finite(var_upper)
        )
        if h.run() == _highs.HighsStatus.kError:
            return "unknown", None
        status = h.getModelStatus()
        if status == _highs.HighsModelStatus.kOptimal:
            return "optimal", np.asarray(h.getSolution().col_value)
        if status == _highs.HighsModelStatus.kInfeasible:
            return "infeasible", None
        return "unknown", None


class AssembledSystem:
    """A base system assembled once, solved many times under bound patches.

    The matrix never changes except by *appending* cut rows; each solve
    supplies per-variable bound patches and the set of active cut indices.
    Cut rows stay in the model permanently and are deactivated by relaxing
    their lower bound to ``-inf``, so activation is O(pool) bound flips,
    never a re-assembly.
    """

    def __init__(self, system: LinearSystem):
        self._system = system
        (
            self.indptr,
            self.indices,
            self.data,
            self.base_row_lower,
            self.base_row_upper,
            self.base_var_lower,
            self.base_var_upper,
        ) = assemble_arrays(system)
        self.assemblies = 1
        self._cut_rows: list[Row] = []
        self._cut_coeffs: list[dict[int, float]] = []
        self._int_engine: _HighsInstance | None = None
        self._lp_engine: _HighsInstance | None = None
        self._engine_cut_state: dict[int, list[bool]] = {}
        #: Base rows currently deactivated, per engine (0=int, 1=lp).
        self._engine_inactive_rows: dict[int, set[int]] = {0: set(), 1: set()}
        self._scipy_matrix = None  # lazy csr for the fallback engine
        self._base_csr = None  # lazy csr of the base rows (vector checks)
        self._max_abs_coeff = float(np.max(np.abs(self.data))) if self.data.size else 1.0

    # -- shape ---------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._system.num_vars

    @property
    def num_base_rows(self) -> int:
        return len(self.base_row_lower)

    @property
    def num_cuts(self) -> int:
        return len(self._cut_rows)

    @property
    def system(self) -> LinearSystem:
        """The underlying base system (shared, not copied)."""
        return self._system

    # -- cut pool ------------------------------------------------------------

    def add_cut(self, coeffs: Mapping[VarId, int], rhs: int, label: str = "") -> int:
        """Append a ``sum(coeffs) >= rhs`` row; returns its pool index."""
        row = Row(tuple(coeffs.items()), GE, int(rhs), label)
        by_index: dict[int, float] = {}
        for var, coeff in coeffs.items():
            j = self._system.index_of(var)
            by_index[j] = by_index.get(j, 0.0) + float(coeff)
        self._cut_rows.append(row)
        self._cut_coeffs.append(by_index)
        for engine_id, engine in (
            (0, self._int_engine),
            (1, self._lp_engine),
        ):
            if engine is not None:
                engine.add_row(by_index, float(rhs))
                self._engine_cut_state[engine_id].append(True)
        self._scipy_matrix = None
        return len(self._cut_rows) - 1

    def cut_row(self, index: int) -> Row:
        return self._cut_rows[index]

    # -- solving -------------------------------------------------------------

    def _patched_bounds(
        self, patches: Mapping[VarId, BoundPatch]
    ) -> tuple[np.ndarray, np.ndarray]:
        lower = self.base_var_lower.copy()
        upper = self.base_var_upper.copy()
        index_of = self._system.index_of
        for var, (lo, hi) in patches.items():
            j = index_of(var)
            if lo is not None and lo > lower[j]:
                lower[j] = float(lo)
            if hi is not None and hi < upper[j]:
                upper[j] = float(hi)
        return lower, upper

    def _engine(self, integer: bool) -> _HighsInstance:
        if integer:
            if self._int_engine is None:
                self._int_engine = _HighsInstance(self, integer=True)
                self._engine_cut_state[0] = [True] * self.num_cuts
                self._engine_inactive_rows[0] = set()
                for i, coeffs in enumerate(self._cut_coeffs):
                    self._int_engine.add_row(coeffs, float(self._cut_rows[i].rhs))
            return self._int_engine
        if self._lp_engine is None:
            self._lp_engine = _HighsInstance(self, integer=False)
            self._engine_cut_state[1] = [True] * self.num_cuts
            self._engine_inactive_rows[1] = set()
            for i, coeffs in enumerate(self._cut_coeffs):
                self._lp_engine.add_row(coeffs, float(self._cut_rows[i].rhs))
        return self._lp_engine

    def _apply_cut_activation(self, integer: bool, active: frozenset[int] | set[int]) -> None:
        engine = self._engine(integer)
        state = self._engine_cut_state[0 if integer else 1]
        for i in range(self.num_cuts):
            want = i in active
            if state[i] != want:
                engine.set_row_bounds(
                    self.num_base_rows + i,
                    float(self._cut_rows[i].rhs) if want else -np.inf,
                    np.inf,
                )
                state[i] = want

    def _apply_row_activation(
        self, integer: bool, inactive: frozenset[int] | set[int]
    ) -> None:
        """Sync the engine's base-row bounds with the requested toggle set.

        Deactivated rows get ``(-inf, inf)`` bounds (constrain nothing);
        reactivated rows get their assembled bounds back.  Only the
        difference against the engine's current state is patched, so a
        sequence of solves over similar subsets costs O(changes) flips.
        """
        engine = self._engine(integer)
        state = self._engine_inactive_rows[0 if integer else 1]
        for i in state - set(inactive):
            engine.set_row_bounds(
                i, float(self.base_row_lower[i]), float(self.base_row_upper[i])
            )
        for i in set(inactive) - state:
            engine.set_row_bounds(i, -np.inf, np.inf)
        self._engine_inactive_rows[0 if integer else 1] = set(inactive)

    def _solve_raw(
        self,
        patches: Mapping[VarId, BoundPatch],
        active: set[int],
        integer: bool,
        inactive_rows: frozenset[int],
    ) -> tuple[str, np.ndarray | None, tuple[np.ndarray, np.ndarray]]:
        bounds = self._patched_bounds(patches)
        lower, upper = bounds
        if np.any(lower > upper):
            return "infeasible", None, bounds
        if _highs is not None:
            self._apply_cut_activation(integer, active)
            self._apply_row_activation(integer, inactive_rows)
            status, x = self._engine(integer).solve(lower, upper)
        else:
            status, x = self._scipy_solve(
                lower, upper, active, integer, inactive_rows
            )
        return status, x, bounds

    def _scipy_solve(
        self,
        var_lower: np.ndarray,
        var_upper: np.ndarray,
        active: set[int],
        integer: bool,
        inactive_rows: frozenset[int] = frozenset(),
    ) -> tuple[str, np.ndarray | None]:  # pragma: no cover - fallback engine
        from scipy.optimize import Bounds, LinearConstraint, milp
        from scipy.sparse import csr_array, vstack

        if self._scipy_matrix is None:
            base = csr_array(
                (self.data, self.indices, self.indptr),
                shape=(self.num_base_rows, self.num_vars),
            )
            if self._cut_coeffs:
                cut_rows = []
                for coeffs in self._cut_coeffs:
                    dense = np.zeros(self.num_vars)
                    for j, c in coeffs.items():
                        dense[j] = c
                    cut_rows.append(dense)
                base = csr_array(vstack([base, csr_array(np.array(cut_rows))]))
            self._scipy_matrix = base
        base_lower = self.base_row_lower.copy()
        base_upper = self.base_row_upper.copy()
        for i in inactive_rows:
            base_lower[i] = -np.inf
            base_upper[i] = np.inf
        row_lower = np.concatenate(
            [
                base_lower,
                np.array(
                    [
                        float(self._cut_rows[i].rhs) if i in active else -np.inf
                        for i in range(self.num_cuts)
                    ]
                ),
            ]
        )
        row_upper = np.concatenate([base_upper, np.full(self.num_cuts, np.inf)])
        constraints = (
            LinearConstraint(self._scipy_matrix, row_lower, row_upper)
            if self._scipy_matrix.shape[0]
            else ()
        )
        integrality = np.ones(self.num_vars) if integer else np.zeros(self.num_vars)
        result = milp(
            c=np.ones(self.num_vars),
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(var_lower, var_upper),
        )
        if result.status == 2:
            return "infeasible", None
        if result.x is None:
            return "unknown", None
        return "optimal", result.x

    def _values_from(self, x: np.ndarray) -> dict[VarId, int]:
        # Variables are registered in column order, so a single rint +
        # tolist + zip replaces a per-variable index_of/round loop.
        ints = np.rint(np.asarray(x)).astype(np.int64).tolist()
        return dict(zip(self._system.variables, ints))

    def _vector_check(
        self,
        x: np.ndarray,
        patches: Mapping[VarId, BoundPatch],
        active: set[int],
        inactive_rows: frozenset[int],
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> bool | None:
        """Exact feasibility of a rounded integer point, vectorized.

        All coefficients and the rounded values are integers, and integer
        arithmetic in float64 is exact below 2**53, so the CSR residual
        *is* the exact row activity whenever the magnitude guard holds.
        Returns ``None`` when it does not — the caller falls back to the
        pure-Python exact check — and ``True``/``False`` otherwise.
        ``bounds`` reuses already-patched variable-bound arrays.
        """
        max_x = float(np.abs(x).max()) if x.size else 0.0
        if (max_x + 1.0) * (self._max_abs_coeff + 1.0) * max(self.num_vars, 1) >= 2.0**53:
            return None
        lower, upper = bounds if bounds is not None else self._patched_bounds(patches)
        if np.any(x < lower) or np.any(x > upper):
            return False
        if self._base_csr is None:
            from scipy.sparse import csr_array

            self._base_csr = csr_array(
                (self.data, self.indices, self.indptr),
                shape=(self.num_base_rows, self.num_vars),
            )
        residual = self._base_csr @ x
        bad = (residual < self.base_row_lower) | (residual > self.base_row_upper)
        if bad.any():
            violated = set(np.nonzero(bad)[0].tolist())
            if not violated <= inactive_rows:
                return False
        for i in active:
            total = sum(c * x[j] for j, c in self._cut_coeffs[i].items())
            if total < self._cut_rows[i].rhs:
                return False
        return True

    def check_values(
        self,
        values: Mapping[VarId, int],
        patches: Mapping[VarId, BoundPatch],
        active: set[int],
        inactive_rows: frozenset[int] = frozenset(),
    ) -> list[str]:
        """Exact violations of base rows, patched bounds and active cuts.

        Deactivated base rows (``inactive_rows``) are exempt, exactly like
        inactive pool cuts.
        """
        problems = [
            row.pretty() for row in self._system.check(values, skip_rows=inactive_rows)
        ]
        for var, (lo, hi) in patches.items():
            value = values.get(var, 0)
            if lo is not None and value < lo:
                problems.append(f"{var} >= {lo} [patch]")
            if hi is not None and value > hi:
                problems.append(f"{var} <= {hi} [patch]")
        for i in active:
            row = self._cut_rows[i]
            if not row.evaluate(values):
                problems.append(row.pretty())
        return problems

    def solve_int(
        self,
        patches: Mapping[VarId, BoundPatch],
        active: set[int] | None = None,
        inactive_rows: frozenset[int] = frozenset(),
    ) -> SolveResult:
        """Integer solve under bound patches; exact-checked like solve_milp.

        ``inactive_rows`` deactivates the named base rows for this solve
        (toggleable constraint rows; see the module docstring).  Status
        ``"error"`` means the float solution failed the exact check or the
        solver gave a doubtful status — callers fall back to the rational
        simplex on a materialized system.
        """
        active = active or set()
        if self.num_vars == 0:
            for i, row in enumerate(self._system.rows):
                if i not in inactive_rows and not row.evaluate({}):
                    return SolveResult("infeasible", message="constant row violated")
            return SolveResult("feasible", {})
        status, x, bounds = self._solve_raw(patches, active, True, inactive_rows)
        if status == "infeasible":
            return SolveResult("infeasible", message="patched system infeasible")
        if status != "optimal" or x is None:
            return SolveResult("error", message="incremental solve inconclusive")
        rounded = np.rint(x)
        if self._vector_check(rounded, patches, active, inactive_rows, bounds):
            return SolveResult("feasible", self._values_from(rounded))
        # Failed or magnitude-voided vector check: the pure-Python exact
        # check is authoritative and names the violated rows.
        values = self._values_from(x)
        violated = self.check_values(values, patches, active, inactive_rows)
        if violated:
            return SolveResult(
                "error",
                message="rounded incremental solution violates: "
                + "; ".join(violated[:3]),
            )
        return SolveResult("feasible", values)

    def lp_probe(
        self,
        patches: Mapping[VarId, BoundPatch],
        active: set[int] | None = None,
        want_values: bool = True,
        inactive_rows: frozenset[int] = frozenset(),
        verified: bool = False,
    ) -> tuple[str, dict[VarId, int] | None]:
        """LP relaxation under bound patches.

        Returns ``("infeasible", None)`` only when definitely infeasible
        (sound for pruning), ``("feasible", candidate)`` with the rounded
        vertex, or ``("unknown", None)``.  Pruning callers that only need
        the status pass ``want_values=False`` to skip building the
        candidate dict.  With ``verified=True`` the rounded vertex is
        exact-checked against the active rows and patched bounds before
        being returned — ``("feasible", None)`` then means the relaxation
        is feasible but its rounded vertex is not an integer solution.
        """
        active = active or set()
        if self.num_vars == 0:
            bad = any(
                i not in inactive_rows and not row.evaluate({})
                for i, row in enumerate(self._system.rows)
            )
            return ("infeasible", None) if bad else ("feasible", {})
        status, x, bounds = self._solve_raw(patches, active, False, inactive_rows)
        if status == "infeasible":
            return "infeasible", None
        if status == "optimal" and x is not None:
            if not want_values:
                return "feasible", None
            rounded = np.rint(x)
            if not verified:
                return "feasible", self._values_from(rounded)
            passed = self._vector_check(
                rounded, patches, active, inactive_rows, bounds
            )
            if passed is None:  # magnitude guard: authoritative slow check
                values = self._values_from(rounded)
                passed = not self.check_values(
                    values, patches, active, inactive_rows
                )
                return "feasible", (values if passed else None)
            return "feasible", (self._values_from(rounded) if passed else None)
        return "unknown", None

    def materialize(
        self,
        patches: Mapping[VarId, BoundPatch],
        active: set[int] | None = None,
        inactive_rows: frozenset[int] = frozenset(),
    ) -> LinearSystem:
        """An equivalent standalone :class:`LinearSystem` (for the exact
        backend and for fallbacks when a float solve is inconclusive)."""
        leaf = self._system.copy(drop_rows=inactive_rows)
        for var, (lo, hi) in patches.items():
            if lo is not None and lo > 0:
                leaf.add_ge({var: 1}, lo, label="patch-lower")
            if hi is not None:
                leaf.set_upper(var, hi)
        for i in sorted(active or ()):
            row = self._cut_rows[i]
            leaf.add_ge(dict(row.coeffs), row.rhs, label=row.label)
        return leaf
