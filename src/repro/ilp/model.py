"""Solver-independent integer linear systems.

Variables are arbitrary hashable identifiers (the encoders use tuples such
as ``("ext", "teacher")`` or ``("occ", 1, "subject", "teach")``), all
implicitly integer and nonnegative — the paper's systems only ever count
nodes and values. Rows are linear constraints with integer coefficients.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

#: Variable identifiers are arbitrary hashables.
VarId = Hashable

#: Row senses.
LE, GE, EQ = "<=", ">=", "=="

#: Variable-bound patch ``(lower, upper)``; ``None`` leaves that side
#: untouched.  The shared currency of the incremental backends: both
#: :class:`repro.ilp.assembled.AssembledSystem` and
#: :class:`repro.ilp.exact.ExactAssembledSystem` take the same patch maps.
BoundPatch = tuple[int | None, int | None]


def canonical_coeffs(coeffs: Mapping[VarId, int]) -> tuple[tuple[VarId, int], ...]:
    """A deterministic, order-independent rendering of a coefficient map.

    Zero coefficients are dropped and the remaining terms are sorted by
    their ``repr`` (variable identifiers are arbitrary hashables — tuples
    of mixed arity — so they are not directly comparable).  Two coefficient
    maps describe the same linear form iff their canonical renderings are
    equal, which is what the connectivity-cut merge policy keys on when
    deduplicating cuts discovered independently by parallel workers.

    >>> canonical_coeffs({"b": 2, "a": 1, "c": 0}) == canonical_coeffs({"a": 1, "b": 2})
    True
    """
    return tuple(
        sorted(((var, coeff) for var, coeff in coeffs.items() if coeff), key=repr)
    )


@dataclass(frozen=True)
class Row:
    """One linear constraint ``sum(coeffs[v] * v) sense rhs``."""

    coeffs: tuple[tuple[VarId, int], ...]
    sense: str
    rhs: int
    label: str = ""

    def evaluate(self, values: Mapping[VarId, int]) -> bool:
        """Does an assignment satisfy this row? (Missing variables count 0.)"""
        total = sum(coeff * values.get(var, 0) for var, coeff in self.coeffs)
        if self.sense == LE:
            return total <= self.rhs
        if self.sense == GE:
            return total >= self.rhs
        return total == self.rhs

    def pretty(self) -> str:
        """Human-readable rendering for diagnostics."""
        terms = " + ".join(
            (f"{coeff}*{var}" if coeff != 1 else f"{var}") for var, coeff in self.coeffs
        )
        suffix = f"   [{self.label}]" if self.label else ""
        return f"{terms or '0'} {self.sense} {self.rhs}{suffix}"


class LinearSystem:
    """A growing system of integer linear constraints.

    All variables are integer and bounded below by 0; optional upper bounds
    may be attached per variable. The system is deliberately dumb — it only
    stores rows; solving lives in the backends.

    ``add_eq``/``add_le``/``add_ge`` return the new row's index — stable for
    the system's lifetime, and the identifier under which toggleable rows
    are (de)activated on the assembled backends.

    >>> sys = LinearSystem()
    >>> sys.add_eq({"x": 1, "y": -1}, 0)
    0
    >>> sys.add_ge({"x": 1}, 2)
    1
    >>> sys.num_vars, sys.num_rows
    (2, 2)
    """

    def __init__(self) -> None:
        self._index: dict[VarId, int] = {}
        self._order: list[VarId] = []
        self._rows: list[Row] = []
        self._upper: dict[VarId, int] = {}

    # -- variables ---------------------------------------------------------

    def ensure_var(self, var: VarId) -> VarId:
        """Register a variable (idempotent) and return its identifier."""
        if var not in self._index:
            self._index[var] = len(self._order)
            self._order.append(var)
        return var

    @property
    def variables(self) -> tuple[VarId, ...]:
        """All registered variables in registration order."""
        return tuple(self._order)

    @property
    def num_vars(self) -> int:
        return len(self._order)

    def index_of(self, var: VarId) -> int:
        """Dense column index of a variable (for matrix assembly)."""
        return self._index[var]

    def set_upper(self, var: VarId, bound: int) -> None:
        """Attach an upper bound to a variable (tightening only)."""
        self.ensure_var(var)
        current = self._upper.get(var)
        self._upper[var] = bound if current is None else min(current, bound)

    def upper(self, var: VarId) -> int | None:
        """The upper bound of a variable, if any."""
        return self._upper.get(var)

    # -- rows ---------------------------------------------------------------

    def _add(self, coeffs: Mapping[VarId, int], sense: str, rhs: int, label: str) -> int:
        cleaned = tuple(
            (self.ensure_var(var), int(coeff))
            for var, coeff in coeffs.items()
            if coeff != 0
        )
        self._rows.append(Row(cleaned, sense, int(rhs), label))
        return len(self._rows) - 1

    def add_eq(self, coeffs: Mapping[VarId, int], rhs: int, label: str = "") -> int:
        """Add ``sum(coeffs) == rhs``; returns the row's stable index."""
        return self._add(coeffs, EQ, rhs, label)

    def add_le(self, coeffs: Mapping[VarId, int], rhs: int, label: str = "") -> int:
        """Add ``sum(coeffs) <= rhs``; returns the row's stable index."""
        return self._add(coeffs, LE, rhs, label)

    def add_ge(self, coeffs: Mapping[VarId, int], rhs: int, label: str = "") -> int:
        """Add ``sum(coeffs) >= rhs``; returns the row's stable index."""
        return self._add(coeffs, GE, rhs, label)

    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    # -- utilities ----------------------------------------------------------

    def copy(self, drop_rows: "frozenset[int] | set[int]" = frozenset()) -> "LinearSystem":
        """Independent copy (rows are immutable and shared).

        ``drop_rows`` omits the rows with those indices — the rebuild-path
        twin of deactivating toggleable rows on an assembled system.  All
        variables stay registered either way, so column indices are stable.
        """
        clone = LinearSystem()
        clone._index = dict(self._index)
        clone._order = list(self._order)
        if drop_rows:
            clone._rows = [
                row for i, row in enumerate(self._rows) if i not in drop_rows
            ]
        else:
            clone._rows = list(self._rows)
        clone._upper = dict(self._upper)
        return clone

    def check(
        self,
        values: Mapping[VarId, int],
        skip_rows: "frozenset[int] | set[int]" = frozenset(),
    ) -> list[Row]:
        """Rows violated by an assignment (empty list = satisfied).

        Also enforces nonnegativity and upper bounds.  ``skip_rows`` are
        exempt from the check (deactivated toggleable rows).
        """
        violated = [
            row
            for i, row in enumerate(self._rows)
            if i not in skip_rows and not row.evaluate(values)
        ]
        for var in self._order:
            value = values.get(var, 0)
            if value < 0:
                violated.append(Row(((var, 1),), GE, 0, f"{var} >= 0"))
            bound = self._upper.get(var)
            if bound is not None and value > bound:
                violated.append(Row(((var, 1),), LE, bound, f"{var} <= {bound}"))
        return violated

    def max_abs_value(self) -> int:
        """Largest absolute coefficient or right-hand side (>= 1).

        Input to the Papadimitriou small-solution bound.
        """
        largest = 1
        for row in self._rows:
            largest = max(largest, abs(row.rhs))
            for _, coeff in row.coeffs:
                largest = max(largest, abs(coeff))
        return largest

    def pretty(self) -> str:
        """Multi-line rendering of the whole system."""
        return "\n".join(row.pretty() for row in self._rows)


@dataclass
class SolveResult:
    """Outcome of a solve call.

    ``status`` is ``"feasible"``, ``"infeasible"`` or ``"error"``; a
    feasible result carries integer values for every variable (defaulting
    to 0 for variables a backend eliminated).
    """

    status: str
    values: dict[VarId, int] = field(default_factory=dict)
    message: str = ""

    @property
    def feasible(self) -> bool:
        return self.status == "feasible"

    @property
    def infeasible(self) -> bool:
        return self.status == "infeasible"
