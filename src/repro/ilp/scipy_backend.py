"""MILP solving via scipy (HiGHS).

The backend minimizes the sum of all variables by default — the paper only
needs feasibility, and minimal solutions give small witness trees. Because
HiGHS works in floating point, every reported solution is rounded and then
re-checked *exactly* against the integer system; a solution that fails the
exact check is reported as an error rather than trusted (callers fall back
to the exact backend).

LP relaxations (used for pruning in the support search) are exposed through
:func:`lp_infeasible`; only a definite "infeasible" answer is ever used to
prune, so numerical trouble degrades performance, not correctness.

Assembly is sparse (CSR via :func:`repro.ilp.assembled.assemble_arrays`),
so there is no dense-size refusal any more; for the hot support-search
path, prefer :class:`repro.ilp.assembled.AssembledSystem`, which assembles
once and re-solves under variable-bound patches.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, linprog, milp
from scipy.sparse import csr_array

from repro.errors import SolverError
from repro.ilp.assembled import assemble_arrays
from repro.ilp.model import LinearSystem, SolveResult, VarId


def _assemble(system: LinearSystem):
    """Build the sparse constraint matrix, row bounds and variable bounds."""
    indptr, indices, data, lower, upper, var_lower, var_upper = assemble_arrays(
        system
    )
    matrix = csr_array(
        (data, indices, indptr), shape=(system.num_rows, system.num_vars)
    )
    return matrix, lower, upper, var_lower, var_upper


def solve_milp(
    system: LinearSystem,
    objective: Mapping[VarId, float] | None = None,
    binary_vars: frozenset[VarId] | set[VarId] | None = None,
) -> SolveResult:
    """Solve the integer system; minimize ``objective`` (default: sum of vars).

    ``binary_vars`` get bounds ``[0, 1]`` (used by the big-M strategy).
    The returned values are exact-checked; on mismatch the status is
    ``"error"`` so callers can fall back to the exact backend.
    """
    if system.num_vars == 0:
        # Degenerate: rows without variables are constant checks.
        for row in system.rows:
            if not row.evaluate({}):
                return SolveResult("infeasible", message="constant row violated")
        return SolveResult("feasible", {})
    matrix, lower, upper, var_lower, var_upper = _assemble(system)
    if binary_vars:
        for var in binary_vars:
            var_upper[system.index_of(var)] = 1.0
    cost = np.ones(system.num_vars)
    if objective is not None:
        cost = np.zeros(system.num_vars)
        for var, coeff in objective.items():
            cost[system.index_of(var)] = coeff
    constraints = (
        LinearConstraint(matrix, lower, upper) if system.num_rows else ()
    )
    result = milp(
        c=cost,
        constraints=constraints,
        integrality=np.ones(system.num_vars),
        bounds=Bounds(var_lower, var_upper),
    )
    if result.status == 2:
        return SolveResult("infeasible", message=result.message)
    if result.x is None:
        return SolveResult("error", message=f"milp failed: {result.message}")
    values = {
        var: int(round(result.x[system.index_of(var)])) for var in system.variables
    }
    violated = system.check(values)
    if violated:
        detail = "; ".join(row.pretty() for row in violated[:3])
        return SolveResult("error", message=f"rounded solution violates: {detail}")
    return SolveResult("feasible", values)


def solve_milp_certified(
    system: LinearSystem,
    exact_warm: bool = True,
    exact_stats=None,
) -> SolveResult:
    """:func:`solve_milp` with the certified re-verification fallback.

    When HiGHS's rounded solution fails the exact integer check (or the
    solver reports a doubtful status), the instance is re-solved by the
    rational simplex of :mod:`repro.ilp.exact` — warm-started branch and
    bound by default, or the cold reference path with ``exact_warm=False``.
    ``exact_stats`` (an :class:`repro.ilp.exact.ExactStats`) collects the
    fallback's node/pivot counters when provided.  Unlike
    :func:`solve_milp`, no objective override or binary restriction is
    accepted: the certified fallback only solves the default min-sum
    feasibility form, and advertising more would silently change meaning
    on the fallback path.
    """
    result = solve_milp(system)
    if result.status != "error":
        return result
    from repro.ilp.exact import solve_exact

    return solve_exact(system, warm=exact_warm, stats=exact_stats)


def lp_infeasible(system: LinearSystem) -> bool:
    """Is the LP *relaxation* definitely infeasible?

    Used only for pruning: ``True`` must imply the integer system has no
    solution (LP relaxation infeasible implies ILP infeasible). Any doubt
    (numerical failure, success, unboundedness) returns ``False``.
    """
    if system.num_vars == 0:
        return any(not row.evaluate({}) for row in system.rows)
    try:
        matrix, lower, upper, var_lower, var_upper = _assemble(system)
    except SolverError:  # pragma: no cover - sparse assembly cannot overflow
        return False
    # linprog wants split equality/inequality form; use milp-style bounds by
    # doubling rows: lower <= Ax <= upper  ==>  Ax <= upper, -Ax <= -lower.
    a_ub_parts = []
    b_ub_parts = []
    finite_upper = np.isfinite(upper)
    if finite_upper.any():
        a_ub_parts.append(matrix[finite_upper])
        b_ub_parts.append(upper[finite_upper])
    finite_lower = np.isfinite(lower)
    if finite_lower.any():
        a_ub_parts.append(-matrix[finite_lower])
        b_ub_parts.append(-lower[finite_lower])
    if a_ub_parts:
        from scipy.sparse import vstack

        a_ub = csr_array(vstack(a_ub_parts))
        b_ub = np.concatenate(b_ub_parts)
    else:
        a_ub = None
        b_ub = None
    result = linprog(
        c=np.zeros(system.num_vars),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=list(zip(var_lower, var_upper)),
        method="highs",
    )
    return result.status == 2
