"""AST for DTD content-model regular expressions.

The grammar follows Definition 2.1 of Fan & Libkin:

    alpha ::= S | tau' | epsilon | alpha "|" alpha | alpha "," alpha | alpha*

with the two standard DTD conveniences ``alpha+`` and ``alpha?`` included as
first-class nodes (they desugar to ``alpha, alpha*`` and ``alpha | epsilon``
during DTD simplification).

All nodes are immutable and hashable; concatenation and union are n-ary
(with at least two children) to keep parsed trees flat and readable. The
string type ``S`` of the paper is represented by :class:`Text` and appears
in word-level APIs as the sentinel symbol :data:`TEXT_SYMBOL`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sentinel symbol used for the string type ``S`` in words over the content
#: model alphabet. Element-type names never collide with it because ``#`` is
#: not a valid name character.
TEXT_SYMBOL = "#PCDATA"


class Regex:
    """Base class of all content-model expression nodes."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - exercised via subclasses
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The empty word (``EMPTY`` in DTD syntax)."""

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True, slots=True)
class Text(Regex):
    """The string type ``S`` (``#PCDATA`` in DTD syntax)."""

    def __str__(self) -> str:
        return TEXT_SYMBOL


@dataclass(frozen=True, slots=True)
class Name(Regex):
    """A reference to an element type."""

    symbol: str

    def __str__(self) -> str:
        return self.symbol


def _wrap(item: Regex) -> str:
    """Parenthesize compound children for unambiguous printing."""
    if isinstance(item, (Concat, Union)):
        return f"({item})"
    return str(item)


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    """Ordered concatenation ``alpha1, alpha2, ...`` (two or more items)."""

    items: tuple[Regex, ...]

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise ValueError("Concat requires at least two items")

    def __str__(self) -> str:
        return ", ".join(_wrap(item) for item in self.items)


@dataclass(frozen=True, slots=True)
class Union(Regex):
    """Choice ``alpha1 | alpha2 | ...`` (two or more items)."""

    items: tuple[Regex, ...]

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise ValueError("Union requires at least two items")

    def __str__(self) -> str:
        return " | ".join(_wrap(item) for item in self.items)


@dataclass(frozen=True, slots=True)
class Star(Regex):
    """Kleene closure ``alpha*``."""

    item: Regex

    def __str__(self) -> str:
        return f"{_wrap(self.item)}*"


@dataclass(frozen=True, slots=True)
class Plus(Regex):
    """One-or-more ``alpha+`` (sugar for ``alpha, alpha*``)."""

    item: Regex

    def __str__(self) -> str:
        return f"{_wrap(self.item)}+"


@dataclass(frozen=True, slots=True)
class Optional(Regex):
    """Zero-or-one ``alpha?`` (sugar for ``alpha | EMPTY``)."""

    item: Regex

    def __str__(self) -> str:
        return f"{_wrap(self.item)}?"


#: Shared instance of the empty-word expression.
EPSILON = Epsilon()

#: Shared instance of the string-type expression.
TEXT = Text()


def concat(*items: Regex) -> Regex:
    """Build a concatenation, collapsing the 0- and 1-item cases.

    ``concat()`` is :data:`EPSILON`; ``concat(a)`` is ``a``. Useful when
    assembling expressions programmatically.
    """
    if not items:
        return EPSILON
    if len(items) == 1:
        return items[0]
    return Concat(tuple(items))


def union(*items: Regex) -> Regex:
    """Build a union, collapsing the 1-item case.

    ``union(a)`` is ``a``; at least one item is required.
    """
    if not items:
        raise ValueError("union requires at least one item")
    if len(items) == 1:
        return items[0]
    return Union(tuple(items))
