"""Bounded enumeration of words in a content-model language.

Used by the brute-force semi-decision procedures (and as a test oracle):
enumerate all words of ``L(expr)`` up to a length bound, shortest first.
The language may be infinite; the bound keeps enumeration finite.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.regex.ast import (
    TEXT_SYMBOL,
    Concat,
    Epsilon,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Text,
    Union,
)


def _words(expr: Regex, max_len: int) -> set[tuple[str, ...]]:
    """All words of ``L(expr)`` with length at most ``max_len``."""
    if max_len < 0:
        return set()
    if isinstance(expr, Epsilon):
        return {()}
    if isinstance(expr, Text):
        return {(TEXT_SYMBOL,)} if max_len >= 1 else set()
    if isinstance(expr, Name):
        return {(expr.symbol,)} if max_len >= 1 else set()
    if isinstance(expr, Union):
        result: set[tuple[str, ...]] = set()
        for item in expr.items:
            result |= _words(item, max_len)
        return result
    if isinstance(expr, Concat):
        result = {()}
        for item in expr.items:
            grown: set[tuple[str, ...]] = set()
            for prefix in result:
                room = max_len - len(prefix)
                for suffix in _words(item, room):
                    grown.add(prefix + suffix)
            result = grown
            if not result:
                return set()
        return result
    if isinstance(expr, Star):
        result = {()}
        frontier = {()}
        while True:
            grown = set()
            for prefix in frontier:
                room = max_len - len(prefix)
                for suffix in _words(expr.item, room):
                    if suffix:
                        candidate = prefix + suffix
                        if candidate not in result:
                            grown.add(candidate)
            if not grown:
                return result
            result |= grown
            frontier = grown
    if isinstance(expr, Plus):
        return _words(Concat((expr.item, Star(expr.item))), max_len)
    if isinstance(expr, Optional):
        return _words(expr.item, max_len) | {()}
    raise TypeError(f"unknown regex node {expr!r}")


def words_up_to(expr: Regex, max_len: int) -> Iterator[tuple[str, ...]]:
    """Yield all words of ``L(expr)`` up to ``max_len``, shortest first.

    >>> from repro.regex.parser import parse_content_model
    >>> sorted(words_up_to(parse_content_model("(a, b?)"), 2))
    [('a',), ('a', 'b')]
    """
    yield from sorted(_words(expr, max_len), key=lambda w: (len(w), w))
