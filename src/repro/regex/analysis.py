"""Structural analyses of content-model expressions.

These are the regex-level building blocks for the DTD-level algorithms of
Section 3.3 of the paper:

* :func:`nullable` / :func:`alphabet` — basic structure;
* :func:`can_derive_over` — can the expression derive *some* word using only
  an allowed symbol set? This powers DTD productivity (emptiness) checking,
  Theorem 3.5(1);
* :func:`saturating_count` — the maximum total "weight" of a derivable word,
  saturated at 2, where each symbol carries a weight in ``{0, 1, 2}``. This
  powers ``can_have_two`` (Lemma 3.6): weights are each symbol's saturated
  capability of producing the target type in its subtree;
* :func:`min_weight_word` — the minimum total weight of a derivable word,
  used to detect types that are *forced* to occur (mandatory descendants).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.regex.ast import (
    TEXT_SYMBOL,
    Concat,
    Epsilon,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Text,
    Union,
)

#: Saturation cap for occurrence counting: the algorithms only ever need to
#: distinguish "none", "exactly one is possible" and "two or more".
SATURATE_AT = 2


def nullable(expr: Regex) -> bool:
    """Does ``expr`` accept the empty word?"""
    if isinstance(expr, (Epsilon, Star, Optional)):
        return True
    if isinstance(expr, (Text, Name)):
        return False
    if isinstance(expr, Concat):
        return all(nullable(item) for item in expr.items)
    if isinstance(expr, Union):
        return any(nullable(item) for item in expr.items)
    if isinstance(expr, Plus):
        return nullable(expr.item)
    raise TypeError(f"unknown regex node {expr!r}")


def alphabet(expr: Regex) -> frozenset[str]:
    """All symbols occurring in ``expr`` (including :data:`TEXT_SYMBOL`)."""
    if isinstance(expr, Epsilon):
        return frozenset()
    if isinstance(expr, Text):
        return frozenset([TEXT_SYMBOL])
    if isinstance(expr, Name):
        return frozenset([expr.symbol])
    if isinstance(expr, (Concat, Union)):
        result: frozenset[str] = frozenset()
        for item in expr.items:
            result |= alphabet(item)
        return result
    if isinstance(expr, (Star, Plus, Optional)):
        return alphabet(expr.item)
    raise TypeError(f"unknown regex node {expr!r}")


def can_derive_over(expr: Regex, allowed: frozenset[str] | set[str]) -> bool:
    """Can ``expr`` derive some word whose symbols all lie in ``allowed``?

    ``allowed`` must include :data:`TEXT_SYMBOL` if text is permitted (it
    always is when checking DTD productivity, since text nodes need no
    further derivation).
    """
    if isinstance(expr, Epsilon):
        return True
    if isinstance(expr, Text):
        return TEXT_SYMBOL in allowed
    if isinstance(expr, Name):
        return expr.symbol in allowed
    if isinstance(expr, Concat):
        return all(can_derive_over(item, allowed) for item in expr.items)
    if isinstance(expr, Union):
        return any(can_derive_over(item, allowed) for item in expr.items)
    if isinstance(expr, (Star, Optional)):
        return True
    if isinstance(expr, Plus):
        return can_derive_over(expr.item, allowed)
    raise TypeError(f"unknown regex node {expr!r}")


def _saturate(value: int) -> int:
    return min(value, SATURATE_AT)


def saturating_count(expr: Regex, weights: Mapping[str, int]) -> int | None:
    """Maximum total weight of a derivable word, saturated at 2.

    ``weights`` maps symbols to values in ``{0, 1, 2}``; symbols missing from
    the mapping are *non-derivable* (dead): a concatenation containing a dead
    symbol contributes nothing, a union skips dead branches. Returns ``None``
    when ``expr`` cannot derive any word at all over the weighted alphabet.

    For ``can_have_two`` the weight of a symbol ``a`` is the saturated
    maximum number of target-type nodes in any tree rooted at an ``a``
    element (computed by the DTD-level fixpoint).
    """
    if isinstance(expr, Epsilon):
        return 0
    if isinstance(expr, Text):
        return weights.get(TEXT_SYMBOL, 0) if TEXT_SYMBOL in weights else None
    if isinstance(expr, Name):
        if expr.symbol not in weights:
            return None
        return _saturate(weights[expr.symbol])
    if isinstance(expr, Concat):
        total = 0
        for item in expr.items:
            value = saturating_count(item, weights)
            if value is None:
                return None
            total = _saturate(total + value)
        return total
    if isinstance(expr, Union):
        best: int | None = None
        for item in expr.items:
            value = saturating_count(item, weights)
            if value is not None:
                best = value if best is None else max(best, value)
        return best
    if isinstance(expr, Star):
        value = saturating_count(expr.item, weights)
        if value is None or value == 0:
            return 0
        return SATURATE_AT
    if isinstance(expr, Plus):
        value = saturating_count(expr.item, weights)
        if value is None:
            return None
        if value == 0:
            return 0
        return SATURATE_AT
    if isinstance(expr, Optional):
        value = saturating_count(expr.item, weights)
        return 0 if value is None else value
    raise TypeError(f"unknown regex node {expr!r}")


def min_weight_word(expr: Regex, weights: Mapping[str, int]) -> int | None:
    """Minimum total weight of a derivable word (no saturation).

    Symbols missing from ``weights`` are dead, as in
    :func:`saturating_count`. Returns ``None`` when nothing is derivable.
    With weight 1 on a target type and 0 elsewhere this computes whether the
    type is *unavoidable* below an element; with all weights 1 it gives the
    minimum number of children.
    """
    if isinstance(expr, Epsilon):
        return 0
    if isinstance(expr, Text):
        return weights.get(TEXT_SYMBOL) if TEXT_SYMBOL in weights else None
    if isinstance(expr, Name):
        return weights.get(expr.symbol) if expr.symbol in weights else None
    if isinstance(expr, Concat):
        total = 0
        for item in expr.items:
            value = min_weight_word(item, weights)
            if value is None:
                return None
            total += value
        return total
    if isinstance(expr, Union):
        best: int | None = None
        for item in expr.items:
            value = min_weight_word(item, weights)
            if value is not None:
                best = value if best is None else min(best, value)
        return best
    if isinstance(expr, (Star, Optional)):
        return 0
    if isinstance(expr, Plus):
        return min_weight_word(expr.item, weights)
    raise TypeError(f"unknown regex node {expr!r}")
