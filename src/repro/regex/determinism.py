"""One-unambiguity (determinism) of content models.

The XML 1.0 standard requires content models to be *deterministic*
("1-unambiguous"): while reading a children sequence left to right, the
next child must match at most one position of the expression. The paper's
model deliberately ignores this (it changes nothing about the constraint
interaction), but a faithful DTD toolkit should be able to check it —
real DTDs that violate it are rejected by validating parsers.

Brüggemann-Klein's criterion on the Glushkov automaton: an expression is
1-unambiguous iff no two distinct *first* positions carry the same symbol
and, for every position, no two distinct follow positions carry the same
symbol.
"""

from __future__ import annotations

from repro.regex.ast import Regex
from repro.regex.glushkov import GlushkovAutomaton


def nondeterminism_witnesses(expr: Regex) -> list[str]:
    """Symbols witnessing nondeterminism (empty list = deterministic).

    >>> from repro.regex.parser import parse_content_model
    >>> nondeterminism_witnesses(parse_content_model("(a, b)"))
    []
    >>> nondeterminism_witnesses(parse_content_model("((a, b) | (a, c))"))
    ['a']
    """
    automaton = GlushkovAutomaton(expr)
    symbols = automaton._symbols  # noqa: SLF001 - same-package access
    follow = automaton._follow  # noqa: SLF001
    first = automaton._first  # noqa: SLF001
    witnesses: set[str] = set()

    def check(positions) -> None:
        seen: dict[str, int] = {}
        for position in positions:
            symbol = symbols[position]
            if symbol in seen and seen[symbol] != position:
                witnesses.add(symbol)
            seen[symbol] = position

    check(sorted(first))
    for position in range(len(symbols)):
        check(sorted(follow[position]))
    return sorted(witnesses)


def is_deterministic(expr: Regex) -> bool:
    """Is the content model 1-unambiguous (XML-standard deterministic)?

    >>> from repro.regex.parser import parse_content_model
    >>> is_deterministic(parse_content_model("(a*, b)"))
    True
    >>> is_deterministic(parse_content_model("(a*, a)"))
    False
    """
    return not nondeterminism_witnesses(expr)
