"""Brzozowski-derivative matcher for content models.

This is the *reference* matcher: simple enough to be obviously correct, used
in tests as an oracle against the Glushkov automaton that the validator uses
in production. Smart constructors keep derivatives small so property tests
stay fast.

Words are sequences of symbols: element-type names, with the string type
``S`` represented by :data:`repro.regex.ast.TEXT_SYMBOL`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.regex.ast import (
    EPSILON,
    TEXT_SYMBOL,
    Concat,
    Epsilon,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Text,
    Union,
)


class _Empty(Regex):
    """The empty *language* (no words at all) — internal to derivatives."""

    __slots__ = ()

    def __str__(self) -> str:
        return "<empty>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Empty)

    def __hash__(self) -> int:
        return hash(_Empty)


_EMPTY = _Empty()


def nullable(expr: Regex) -> bool:
    """Does ``expr`` accept the empty word?"""
    if isinstance(expr, (Epsilon, Star)):
        return True
    if isinstance(expr, Optional):
        return True
    if isinstance(expr, (Text, Name, _Empty)):
        return False
    if isinstance(expr, Concat):
        return all(nullable(item) for item in expr.items)
    if isinstance(expr, Union):
        return any(nullable(item) for item in expr.items)
    if isinstance(expr, Plus):
        return nullable(expr.item)
    raise TypeError(f"unknown regex node {expr!r}")


def _concat2(left: Regex, right: Regex) -> Regex:
    if isinstance(left, _Empty) or isinstance(right, _Empty):
        return _EMPTY
    if isinstance(left, Epsilon):
        return right
    if isinstance(right, Epsilon):
        return left
    left_items = left.items if isinstance(left, Concat) else (left,)
    right_items = right.items if isinstance(right, Concat) else (right,)
    return Concat(left_items + right_items)


def _union2(left: Regex, right: Regex) -> Regex:
    if isinstance(left, _Empty):
        return right
    if isinstance(right, _Empty):
        return left
    if left == right:
        return left
    left_items = left.items if isinstance(left, Union) else (left,)
    right_items = right.items if isinstance(right, Union) else (right,)
    # Deduplicate while preserving order to bound derivative growth.
    seen: list[Regex] = []
    for item in left_items + right_items:
        if item not in seen:
            seen.append(item)
    if len(seen) == 1:
        return seen[0]
    return Union(tuple(seen))


def derivative(expr: Regex, symbol: str) -> Regex:
    """Brzozowski derivative of ``expr`` with respect to ``symbol``."""
    if isinstance(expr, (Epsilon, _Empty)):
        return _EMPTY
    if isinstance(expr, Text):
        return EPSILON if symbol == TEXT_SYMBOL else _EMPTY
    if isinstance(expr, Name):
        return EPSILON if symbol == expr.symbol else _EMPTY
    if isinstance(expr, Union):
        result: Regex = _EMPTY
        for item in expr.items:
            result = _union2(result, derivative(item, symbol))
        return result
    if isinstance(expr, Concat):
        head, tail = expr.items[0], expr.items[1:]
        rest: Regex = tail[0] if len(tail) == 1 else Concat(tail)
        result = _concat2(derivative(head, symbol), rest)
        if nullable(head):
            result = _union2(result, derivative(rest, symbol))
        return result
    if isinstance(expr, Star):
        return _concat2(derivative(expr.item, symbol), expr)
    if isinstance(expr, Plus):
        return _concat2(derivative(expr.item, symbol), Star(expr.item))
    if isinstance(expr, Optional):
        return derivative(expr.item, symbol)
    raise TypeError(f"unknown regex node {expr!r}")


def matches(expr: Regex, word: Iterable[str]) -> bool:
    """Does ``word`` (a sequence of symbols) belong to ``L(expr)``?

    >>> from repro.regex.parser import parse_content_model
    >>> matches(parse_content_model("(subject, subject)"), ["subject", "subject"])
    True
    >>> matches(parse_content_model("(subject, subject)"), ["subject"])
    False
    """
    current = expr
    for symbol in word:
        current = derivative(current, symbol)
        if isinstance(current, _Empty):
            return False
    return nullable(current)
