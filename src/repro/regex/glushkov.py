"""Glushkov position automaton for content models.

The validator checks, for every element, that the sequence of its children's
labels belongs to the language of the element type's content model
(Definition 2.2). The Glushkov construction yields an epsilon-free NFA whose
states are the *positions* (leaf occurrences) of the expression; simulation
runs in ``O(|word| * |positions|^2)`` worst case and much faster in practice
because follow sets are small for DTD-style expressions.

The automaton is built once per element type and cached by the validator.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.regex.ast import (
    TEXT_SYMBOL,
    Concat,
    Epsilon,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Text,
    Union,
)


@dataclass(frozen=True)
class _Factors:
    """Glushkov factors of a subexpression over position indices."""

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


class GlushkovAutomaton:
    """Position automaton recognizing the language of a content model.

    >>> from repro.regex.parser import parse_content_model
    >>> auto = GlushkovAutomaton(parse_content_model("(a, b)*"))
    >>> auto.accepts(["a", "b", "a", "b"])
    True
    >>> auto.accepts(["a", "a"])
    False
    """

    def __init__(self, expr: Regex):
        self._expr = expr
        self._symbols: list[str] = []
        self._follow: list[set[int]] = []
        factors = self._build(expr)
        self._nullable = factors.nullable
        self._first = frozenset(factors.first)
        self._last = frozenset(factors.last)

    @property
    def expression(self) -> Regex:
        """The content model this automaton was built from."""
        return self._expr

    @property
    def position_count(self) -> int:
        """Number of positions (symbol occurrences) in the expression."""
        return len(self._symbols)

    def _new_position(self, symbol: str) -> int:
        self._symbols.append(symbol)
        self._follow.append(set())
        return len(self._symbols) - 1

    def _build(self, expr: Regex) -> _Factors:
        if isinstance(expr, Epsilon):
            return _Factors(True, frozenset(), frozenset())
        if isinstance(expr, Text):
            pos = self._new_position(TEXT_SYMBOL)
            return _Factors(False, frozenset([pos]), frozenset([pos]))
        if isinstance(expr, Name):
            pos = self._new_position(expr.symbol)
            return _Factors(False, frozenset([pos]), frozenset([pos]))
        if isinstance(expr, Union):
            parts = [self._build(item) for item in expr.items]
            return _Factors(
                any(part.nullable for part in parts),
                frozenset().union(*(part.first for part in parts)),
                frozenset().union(*(part.last for part in parts)),
            )
        if isinstance(expr, Concat):
            parts = [self._build(item) for item in expr.items]
            # Follow links: at each factor boundary the last positions of the
            # (nullable-extended) prefix connect to the first positions of
            # the next factor.
            for i in range(len(parts) - 1):
                suffix_first = parts[i + 1].first
                j = i
                while True:
                    for pos in parts[j].last:
                        self._follow[pos].update(suffix_first)
                    if j == 0 or not parts[j].nullable:
                        break
                    j -= 1
            nullable = all(part.nullable for part in parts)
            first: set[int] = set()
            for part in parts:
                first |= part.first
                if not part.nullable:
                    break
            last: set[int] = set()
            for part in reversed(parts):
                last |= part.last
                if not part.nullable:
                    break
            return _Factors(nullable, frozenset(first), frozenset(last))
        if isinstance(expr, (Star, Plus)):
            part = self._build(expr.item)
            for pos in part.last:
                self._follow[pos].update(part.first)
            nullable = True if isinstance(expr, Star) else part.nullable
            return _Factors(nullable, part.first, part.last)
        if isinstance(expr, Optional):
            part = self._build(expr.item)
            return _Factors(True, part.first, part.last)
        raise TypeError(f"unknown regex node {expr!r}")

    def accepts(self, word: Sequence[str] | Iterable[str]) -> bool:
        """Does the symbol sequence ``word`` belong to the language?"""
        word = list(word)
        if not word:
            return self._nullable
        current: set[int] = {pos for pos in self._first if self._symbols[pos] == word[0]}
        if not current:
            return False
        for symbol in word[1:]:
            nxt: set[int] = set()
            for pos in current:
                for succ in self._follow[pos]:
                    if self._symbols[succ] == symbol:
                        nxt.add(succ)
            if not nxt:
                return False
            current = nxt
        return any(pos in self._last for pos in current)
