"""Parser for DTD content-model syntax.

Accepts the concrete syntax used in ``<!ELEMENT ...>`` declarations:

* ``EMPTY`` — the empty word;
* ``(#PCDATA)`` or ``#PCDATA`` — string content;
* element-type names (XML name characters: letters, digits, ``.-_:``);
* ``,`` (sequence), ``|`` (choice), postfix ``*``, ``+``, ``?``;
* parentheses for grouping.

Mixed-content declarations such as ``(#PCDATA | a | b)*`` are parsed as
ordinary expressions (``#PCDATA`` is just the :class:`~repro.regex.ast.Text`
leaf). ``ANY`` is rejected: the paper's model has no counterpart for it.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.regex.ast import (
    EPSILON,
    TEXT,
    Concat,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Union,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<pcdata>\#PCDATA)
  | (?P<name>[A-Za-z_:][A-Za-z0-9._:\-]*)
  | (?P<punct>[(),|*+?])
    """,
    re.VERBOSE,
)

#: Token sentinel appended at end of input.
_END = ("end", "", -1)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    """Split ``text`` into ``(kind, value, position)`` tokens."""
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} in content model", pos)
        if match.lastgroup != "ws":
            kind = match.lastgroup or "punct"
            tokens.append((kind, match.group(), pos))
        pos = match.end()
    tokens.append(_END)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list.

    Grammar (standard DTD content-particle structure, with the usual
    restriction that ``,`` and ``|`` may not be mixed at one level):

        expr    := seq
        seq     := choice ("," choice)*
        choice  := postfix ("|" postfix)*
        postfix := atom ("*" | "+" | "?")?
        atom    := NAME | #PCDATA | EMPTY | "(" expr ")"
    """

    def __init__(self, tokens: list[tuple[str, str, int]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> tuple[str, str, int]:
        return self._tokens[self._index]

    def _advance(self) -> tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        kind, got, pos = self._peek()
        if kind == "punct" and got == value:
            self._advance()
            return
        raise ParseError(f"expected {value!r}, found {got or 'end of input'!r}", pos)

    def parse(self) -> Regex:
        expr = self._parse_level()
        kind, value, pos = self._peek()
        if kind != "end":
            raise ParseError(f"unexpected trailing input {value!r}", pos)
        return expr

    def _parse_level(self) -> Regex:
        """Parse one level, allowing either ``,`` or ``|`` but not both."""
        first = self._parse_postfix()
        kind, value, _ = self._peek()
        if kind == "punct" and value in {",", "|"}:
            separator = value
            items = [first]
            while True:
                kind, value, pos = self._peek()
                if kind != "punct" or value not in {",", "|"}:
                    break
                if value != separator:
                    raise ParseError(
                        "cannot mix ',' and '|' at the same level; use parentheses", pos
                    )
                self._advance()
                items.append(self._parse_postfix())
            if separator == ",":
                return Concat(tuple(items))
            return Union(tuple(items))
        return first

    def _parse_postfix(self) -> Regex:
        expr = self._parse_atom()
        while True:
            kind, value, _ = self._peek()
            if kind == "punct" and value in {"*", "+", "?"}:
                self._advance()
                if value == "*":
                    expr = Star(expr)
                elif value == "+":
                    expr = Plus(expr)
                else:
                    expr = Optional(expr)
                continue
            return expr

    def _parse_atom(self) -> Regex:
        kind, value, pos = self._advance()
        if kind == "pcdata":
            return TEXT
        if kind == "name":
            if value == "EMPTY":
                return EPSILON
            if value == "ANY":
                raise ParseError("ANY content is not supported by the paper's model", pos)
            return Name(value)
        if kind == "punct" and value == "(":
            expr = self._parse_level()
            self._expect(")")
            return expr
        raise ParseError(f"unexpected token {value or 'end of input'!r}", pos)


def parse_content_model(text: str) -> Regex:
    """Parse a DTD content model into a :class:`~repro.regex.ast.Regex`.

    >>> str(parse_content_model("(teach, research)"))
    'teach, research'
    >>> str(parse_content_model("(#PCDATA)"))
    '#PCDATA'
    >>> str(parse_content_model("EMPTY"))
    'EMPTY'
    """
    stripped = text.strip()
    if not stripped:
        raise ParseError("empty content model")
    return _Parser(_tokenize(stripped)).parse()
