"""Regular expressions for DTD content models.

A DTD maps each element type to a regular expression over element-type names
and the string type ``S`` (``#PCDATA``), per Definition 2.1 of the paper:

    alpha ::= S | tau | epsilon | alpha "|" alpha | alpha "," alpha | alpha*

This package provides the expression AST (:mod:`repro.regex.ast`), a parser
for the concrete DTD content-model syntax (:mod:`repro.regex.parser`), two
independent matchers — Brzozowski derivatives (:mod:`repro.regex.derivatives`,
used as a test oracle) and a Glushkov position automaton
(:mod:`repro.regex.glushkov`, used by the validator) — and the structural
analyses needed by the decision procedures (:mod:`repro.regex.analysis`).
"""

from repro.regex.ast import (
    EPSILON,
    TEXT,
    TEXT_SYMBOL,
    Concat,
    Epsilon,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Text,
    Union,
)
from repro.regex.analysis import (
    alphabet,
    can_derive_over,
    nullable,
    saturating_count,
)
from repro.regex.derivatives import matches as matches_derivative
from repro.regex.determinism import is_deterministic, nondeterminism_witnesses
from repro.regex.glushkov import GlushkovAutomaton
from repro.regex.parser import parse_content_model

__all__ = [
    "Regex",
    "Epsilon",
    "Text",
    "Name",
    "Concat",
    "Union",
    "Star",
    "Plus",
    "Optional",
    "EPSILON",
    "TEXT",
    "TEXT_SYMBOL",
    "parse_content_model",
    "matches_derivative",
    "GlushkovAutomaton",
    "is_deterministic",
    "nondeterminism_witnesses",
    "nullable",
    "alphabet",
    "can_derive_over",
    "saturating_count",
]
