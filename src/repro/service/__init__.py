"""Long-lived checking service: resident sessions over the one-shot core.

The paper's checkers decide one ``(DTD, Sigma)`` question per call; real
XML tooling asks *streams* of questions against specifications that
change rarely.  This package turns the pipeline into a resident engine
(DESIGN.md section 8):

* :class:`~repro.service.session.SpecSession` — one specification's
  cached state: the parsed spec, its canonical fingerprint, a response
  cache, and (in ``"warm"`` mode) per-query solver workspaces plus the
  session-level connectivity-cut pool;
* :class:`~repro.service.registry.SessionRegistry` — the cross-request
  cache: sessions keyed by ``(DTD, Sigma)`` fingerprint with LRU +
  byte-budget eviction;
* :class:`~repro.service.server.CheckingServer` — the asyncio front end
  (``repro serve``): line-delimited JSON over stdio or a localhost TCP
  socket, with a per-session batcher that coalesces concurrent
  ``implies`` requests into single ``implies_all`` fan-outs;
* :class:`~repro.service.client.ServiceClient` — a small synchronous
  client for scripts, benchmarks and the README quickstart;
* :class:`~repro.service.fleet.FleetRouter` — the distributed fleet's
  shard router (``repro fleet``): sessions consistent-hashed across N
  backend servers, ``implies_all`` batches fanned out in waves, dead
  backends rerouted with byte-identical answers (DESIGN.md section 11);
* :mod:`~repro.service.persist` — crash-safe session snapshots
  (atomic writes, self-verifying envelope, corrupt file = cold start);
* :mod:`~repro.service.faults` — the deterministic fault-injection
  registry behind the chaos suite (DESIGN.md section 9).

The CLI's ``check``/``implies``/``diagnose`` commands are thin clients
of the same session API, so the service and the one-shot path cannot
drift: a request replayed through ``repro serve`` returns byte-identical
verdicts, witnesses and solver stats to the direct
:class:`~repro.checkers.config.CheckerConfig` path
(``tests/test_service_differential.py`` enforces this).
"""

__all__ = [
    "CheckingServer",
    "FleetRouter",
    "ServiceClient",
    "SessionRegistry",
    "SpecSession",
    "load_snapshot",
    "save_snapshot",
]

#: Exported name -> defining submodule.  Resolution is lazy (PEP 562) so
#: that the CLI's one-shot commands — thin clients of the session layer
#: only — never pay for importing the asyncio server or its thread-pool
#: machinery on their cold path (the exact path the serving benchmarks
#: compare against).
_EXPORTS = {
    "CheckingServer": "repro.service.server",
    "FleetRouter": "repro.service.fleet",
    "ServiceClient": "repro.service.client",
    "SessionRegistry": "repro.service.registry",
    "SpecSession": "repro.service.session",
    "load_snapshot": "repro.service.persist",
    "save_snapshot": "repro.service.persist",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
