"""One specification's resident state: the ``SpecSession``.

A session pins one ``(DTD, Sigma)`` pair — identified by its canonical
:func:`~repro.encoding.combined.spec_fingerprint` — and answers
``check`` / ``implies`` / ``diagnose`` / ``repair`` / ``validate``
requests against it, dispatching each solve through the
:mod:`repro.api` facade.  Requests and responses are JSON-ready dicts (the wire form of
``repro serve``), so a session *is* the service engine; the asyncio
layer only schedules calls into it.

Two reuse modes:

* ``"replay"`` (default) — deterministic cross-request caching only:
  the parsed spec, its validation, the per-DTD ``Psi_DN`` encoding
  block, and a bounded response cache keyed by the full request.  A
  novel request runs the *exact* one-shot checker path, so every
  response is byte-identical to the direct
  :class:`~repro.checkers.config.CheckerConfig` call — repeats are
  served from the cache, stats included.
* ``"warm"`` — additionally keeps per-query
  :class:`~repro.ilp.condsys.SolveWorkspace`\\ s (assembled HiGHS
  matrix + lazily-built exact twin) in a bounded LRU, and carries the
  session-level connectivity-cut pool into every new workspace.  A
  repeated ``implies`` that misses the response cache re-solves by
  bound patches on the warm assembly; novel queries start from the
  accumulated cuts.  Verdicts and witnesses stay correct (cuts are
  structurally valid for every constraint set over the same DTD, and
  all witnesses are re-verified), but the solver *work counters* then
  reflect the warm state rather than a cold start.

Sessions are single-owner: a :class:`threading.RLock` serializes
requests, and warm workspaces are claimed through
:meth:`~repro.ilp.condsys.SolveWorkspace.checkout` so an ownership bug
raises instead of racing.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace

from repro import api
from repro.checkers.config import DEFAULT_CONFIG, CheckerConfig
from repro.checkers.consistency import check_consistency, check_consistency_encoded
from repro.checkers.implication import implies_all, implies_validated
from repro.checkers.results import ConsistencyResult
from repro.constraints.ast import Constraint
from repro.constraints.classes import (
    ConstraintClass,
    classify,
    validate_constraints,
)
from repro.constraints.parser import parse_constraint
from repro.constraints.satisfaction import violations
from repro.dtd.model import DTD
from repro.encoding.combined import (
    build_encoding,
    canonical_spec,
    spec_fingerprint,
)
from repro.errors import ReproError
from repro.ilp.condsys import SolveWorkspace, wave_observer_scope
from repro.service.metrics import AdaptiveJobsController, StatsCollector
from repro.xmltree.parse import parse_xml
from repro.xmltree.serialize import tree_to_string
from repro.xmltree.validate import conforms

#: The reuse modes a session can run in.
MODES = ("replay", "warm")

#: CheckerConfig fields a request may override per call.
_CONFIG_FIELDS = frozenset(f.name for f in fields(CheckerConfig))


@dataclass
class SessionStats:
    """Counters for one session's cross-request behaviour."""

    requests: int = 0
    cache_hits: int = 0
    workspaces_built: int = 0
    workspaces_reused: int = 0
    workspaces_dropped: int = 0
    cuts_carried: int = 0
    batch_requests: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "workspaces_built": self.workspaces_built,
            "workspaces_reused": self.workspaces_reused,
            "workspaces_dropped": self.workspaces_dropped,
            "cuts_carried": self.cuts_carried,
            "batch_requests": self.batch_requests,
        }


def merge_config(base: CheckerConfig, overrides: dict | None) -> CheckerConfig:
    """``base`` with a request's config overrides applied.

    Unknown keys raise :class:`ReproError` (a client typo must not be
    silently ignored — it would change which answer the client thinks
    it asked for).
    """
    if not overrides:
        return base
    unknown = set(overrides) - _CONFIG_FIELDS
    if unknown:
        names = ", ".join(sorted(unknown))
        raise ReproError(f"unknown config override(s): {names}")
    return replace(base, **overrides)


def _error_payload(exc: Exception) -> dict:
    """The canonical error body — one rendering for singles and batches.

    The protocol layer wraps the same body into error responses, so a
    query that fails inside a coalesced batch answers byte-identically
    to the same query sent alone.  Failure modes with a stable wire
    contract (deadlines, load shedding) carry a ``wire_type`` class
    attribute that replaces the Python class name, and an optional
    ``retry_after`` hint (seconds) rides along for shed requests.
    """
    error: dict = {
        "type": getattr(exc, "wire_type", None) or type(exc).__name__,
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"error": error}


class SpecSession:
    """Resident checking state for one ``(DTD, Sigma)`` specification.

    >>> from repro.dtd.model import DTD
    >>> from repro.constraints.parser import parse_constraints
    >>> d = DTD.build("db", {"db": "(item*)", "item": "EMPTY"},
    ...               attrs={"item": ["id"]})
    >>> session = SpecSession(d, parse_constraints("item.id -> item"))
    >>> session.check()["consistent"]
    True
    >>> first = session.implies("item.id -> item")
    >>> first["implied"], session.stats.cache_hits
    (True, 0)
    >>> session.implies("item.id -> item") == first   # served from cache
    True
    >>> session.stats.cache_hits
    1
    """

    def __init__(
        self,
        dtd: DTD,
        constraints: list[Constraint] | tuple[Constraint, ...] = (),
        config: CheckerConfig | None = None,
        mode: str = "replay",
        max_cached_responses: int = 512,
        max_workspaces: int = 32,
        max_response_bytes: int = 64 * 1024 * 1024,
        auto_jobs: bool = False,
        collector: StatsCollector | None = None,
    ):
        if mode not in MODES:
            raise ReproError(f"unknown session mode {mode!r} (use one of {MODES})")
        self.dtd = dtd
        self.sigma = list(constraints)
        #: The facade value the session dispatches through: every
        #: non-warm solve goes `session -> repro.api -> engine`, the
        #: same path a library caller takes.
        self.spec = api.Spec(dtd=dtd, constraints=tuple(constraints))
        validate_constraints(dtd, self.sigma)
        self.config = config or DEFAULT_CONFIG
        self.mode = mode
        self.fingerprint = spec_fingerprint(dtd, self.sigma)
        self.stats = SessionStats()
        #: ``--jobs auto``: requests without an explicit jobs override
        #: solve at the controller's current level (see
        #: :meth:`_effective_config`); ``False`` leaves the fixed-jobs
        #: path byte-for-byte untouched.
        self.auto_jobs = bool(auto_jobs)
        #: Optional :class:`~repro.service.metrics.StatsCollector` the
        #: session pushes wave latencies and pool counters into.
        self.collector = collector
        self._jobs_controller: AdaptiveJobsController | None = None
        self._spec_bytes = len(canonical_spec(dtd, self.sigma).encode("utf-8"))
        self._max_cached_responses = max_cached_responses
        self._max_workspaces = max_workspaces
        #: Per-session cap on the response cache's resident bytes (keys
        #: included), so one session cannot grow unboundedly between the
        #: registry's admission-time budget scans.
        self._max_response_bytes = max_response_bytes
        self._lock = threading.RLock()
        #: request key -> rendered response JSON (the byte-identity store).
        self._responses: "OrderedDict[tuple, str]" = OrderedDict()
        self._response_bytes = 0
        #: warm mode: workspace key -> (encoding, SolveWorkspace).
        self._workspaces: "OrderedDict[tuple, tuple]" = OrderedDict()
        #: warm mode: session-level cut pool, keyed for dedup.
        self._cut_records: dict[tuple, object] = {}

    # -- bookkeeping --------------------------------------------------------

    def approx_bytes(self) -> int:
        """Rough resident size, the registry's eviction currency.

        Sums the canonical spec text, the cached responses (keys
        included — a ``validate`` key retains the whole document text),
        and a per-workspace estimate from the base system's shape (rows
        and columns of the assembled matrix plus pooled cuts).  An
        estimate is enough: eviction needs relative weight, not
        accounting.  Takes the session lock: callers (the registry's
        eviction scan, the ``stats`` op) run on other threads than the
        executor thread mutating the warm-workspace LRU.
        """
        with self._lock:
            total = self._spec_bytes + self._response_bytes
            for encoding, workspace in self._workspaces.values():
                base = encoding.condsys.base
                total += 48 * base.num_rows + 24 * base.num_vars
                total += 64 * len(workspace.pool)
            return total

    def service_stats(self) -> dict[str, int]:
        """The session's cross-request counters plus cache occupancy."""
        with self._lock:
            payload = self.stats.as_dict()
            payload["cached_responses"] = len(self._responses)
            payload["warm_workspaces"] = len(self._workspaces)
            payload["cut_records"] = len(self._cut_records)
            payload["approx_bytes"] = self.approx_bytes()
            if self._jobs_controller is not None:
                payload["effective_jobs"] = self._jobs_controller.current()
            return payload

    @property
    def jobs_controller(self) -> AdaptiveJobsController:
        """The session's adaptive-jobs controller (created on first use)."""
        if self._jobs_controller is None:
            self._jobs_controller = AdaptiveJobsController(collector=self.collector)
        return self._jobs_controller

    def _effective_config(self, overrides: dict | None) -> CheckerConfig:
        """:func:`merge_config` plus resolution of ``"jobs": "auto"``.

        The adaptive marker — from a per-request override or the
        session-wide ``auto_jobs`` flag — becomes the controller's
        *current* concrete level before the config object is built, so
        :class:`~repro.checkers.config.CheckerConfig` (and every response
        cache key derived from it) only ever holds plain ints and the
        fixed-jobs path is untouched.
        """
        auto = bool(overrides) and overrides.get("jobs") == "auto"
        if auto:
            overrides = dict(overrides)
        elif self.auto_jobs and not (overrides and "jobs" in overrides):
            overrides = dict(overrides or {})
            auto = True
        if auto:
            overrides["jobs"] = self.jobs_controller.current()
        return merge_config(self.config, overrides)

    @contextmanager
    def _solve_scope(self):
        """Instrument one genuinely-solved request (cache hits skip this).

        Opens a :func:`~repro.ilp.condsys.wave_observer_scope` so parallel
        waves report their latency, and times the whole solve for the
        adaptive-jobs controller — on every exit path, including solver
        errors (a budget-exceeded solve was slow; the controller should
        hear about it).
        """
        controller = self._jobs_controller
        collector = self.collector
        if controller is None and collector is None:
            yield
            return

        def observe(seconds: float, width: int) -> None:
            if controller is not None:
                controller.observe_wave(seconds, width)
            if collector is not None:
                collector.observe_wave(seconds)

        started = time.perf_counter()
        try:
            with wave_observer_scope(observe):
                yield
        finally:
            if controller is not None:
                controller.observe_solve(time.perf_counter() - started)

    def _absorb(self, payload: dict) -> dict:
        """Forward a solved payload's pool counters to the collector."""
        if self.collector is not None:
            self.collector.absorb_solver_stats(payload.get("stats"))
        return payload

    @staticmethod
    def _entry_bytes(key: tuple, rendered: str) -> int:
        """One cache entry's weight: response JSON plus the key itself
        (a ``validate`` key retains the entire document text)."""
        return len(rendered) + sum(len(str(part)) for part in key)

    def _remember(self, key: tuple, payload: dict) -> dict:
        """Record a response; return the cache's canonical copy."""
        rendered = json.dumps(payload, sort_keys=True)
        self._responses[key] = rendered
        self._response_bytes += self._entry_bytes(key, rendered)
        while len(self._responses) > 1 and (
            len(self._responses) > self._max_cached_responses
            or self._response_bytes > self._max_response_bytes
        ):
            dropped_key, dropped = self._responses.popitem(last=False)
            self._response_bytes -= self._entry_bytes(dropped_key, dropped)
        return json.loads(rendered)

    def _recall(self, key: tuple) -> dict | None:
        rendered = self._responses.get(key)
        if rendered is None:
            return None
        self._responses.move_to_end(key)
        self.stats.cache_hits += 1
        return json.loads(rendered)

    # -- request entry points ----------------------------------------------

    def check(self, config: dict | None = None) -> dict:
        """Consistency of the session's specification."""
        with self._lock:
            self.stats.requests += 1
            effective = self._effective_config(config)
            key = ("check", effective)
            cached = self._recall(key)
            if cached is not None:
                return cached
            with self._solve_scope():
                if self.mode == "warm":
                    result = self._warm_consistency(
                        self.dtd, self.sigma, effective, workspace_key=("check",)
                    )
                else:
                    result = api.check(self.spec, config=effective)
            payload = {
                "consistent": result.consistent,
                "method": result.method,
                "message": result.message,
                "stats": dict(result.stats),
                "witness": (
                    tree_to_string(result.witness)
                    if result.witness is not None
                    else None
                ),
            }
            return self._absorb(self._remember(key, payload))

    def implies(self, phi: str | Constraint, config: dict | None = None) -> dict:
        """Is ``phi`` implied by the session's specification?"""
        with self._lock:
            self.stats.requests += 1
            return self._implies_locked(phi, self._effective_config(config))

    def implies_batch(self, phis: list, config: dict | None = None) -> list[dict]:
        """Batch implication — the coalesced form the server's batcher uses.

        Per-query responses are identical to asking :meth:`implies` one
        by one (``implies_all`` runs the same validated per-query path),
        but the batch validates once, shares the per-DTD encoding block,
        and — with ``jobs > 1`` in the session config — fans the misses
        across the PR-4 worker pool in one ``implies_all`` call.
        """
        with self._lock:
            self.stats.requests += 1
            self.stats.batch_requests += 1
            effective = self._effective_config(config)
            responses: list[dict] = []
            misses: list[tuple[int, Constraint]] = []
            for phi in phis:
                try:
                    parsed = self._parse_phi(phi)
                except ReproError as exc:
                    responses.append(_error_payload(exc))
                    continue
                key = ("implies", str(parsed), effective)
                cached = self._recall(key)
                if cached is None:
                    misses.append((len(responses), parsed))
                responses.append(cached)  # placeholder when None
            if len(misses) > 1 and self.mode != "warm":
                # The coalesced path: one ``implies_all`` call over the
                # batch's *distinct* missed queries — it validates once,
                # shares the per-DTD encoding block, and fans over the
                # PR-4 worker pool when ``jobs > 1``; queries repeated
                # within the batch are solved once and the duplicates
                # replay the recorded response (counted as cache hits,
                # exactly as the sequential loop would have served
                # them).  Any ReproError from the batch call (an
                # undecidable query poisons it whole) falls back to the
                # per-query loop below, which isolates errors per
                # request.
                unique: dict[str, Constraint] = {}
                for _, parsed in misses:
                    unique.setdefault(str(parsed), parsed)
                try:
                    with self._solve_scope():
                        results = implies_all(
                            self.dtd, self.sigma, list(unique.values()), effective
                        )
                except ReproError:
                    pass
                else:
                    first: dict[str, dict] = {}
                    for parsed, result in zip(unique.values(), results):
                        key = ("implies", str(parsed), effective)
                        first[str(parsed)] = self._absorb(
                            self._remember(key, self._implication_payload(result))
                        )
                    for index, parsed in misses:
                        payload = first.pop(str(parsed), None)
                        if payload is None:  # an intra-batch repeat
                            payload = self._recall(("implies", str(parsed), effective))
                        responses[index] = payload
                    misses = []
            for index, parsed in misses:
                try:
                    responses[index] = self._implies_locked(parsed, effective)
                except ReproError as exc:
                    responses[index] = _error_payload(exc)
            return responses

    def diagnose(
        self,
        config: dict | None = None,
        rebuild: bool = False,
        mus_method: str = "quickxplain",
    ) -> dict:
        """Specification health report (MUS / redundancy audit)."""
        with self._lock:
            self.stats.requests += 1
            effective = self._effective_config(config)
            key = ("diagnose", bool(rebuild), mus_method, effective)
            cached = self._recall(key)
            if cached is not None:
                return cached
            with self._solve_scope():
                report = api.diagnose(
                    self.spec,
                    config=effective,
                    toggled=not rebuild,
                    mus_method=mus_method,
                )
            payload = {
                "consistent": report.consistent,
                "dtd_satisfiable": report.dtd_satisfiable,
                "mus": [str(phi) for phi in report.mus],
                "redundant": [str(phi) for phi in report.redundant],
                "summary": report.summary(),
                "stats": report.stats.as_dict(),
            }
            return self._absorb(self._remember(key, payload))

    def repair(
        self,
        config: dict | None = None,
        core_method: str = "quickxplain",
        rebuild: bool = False,
        weights: dict | None = None,
    ) -> dict:
        """A minimum-weight repair of the session's specification.

        ``weights`` is the wire form of the engine's weight mapping:
        action-family name (``"delete"`` / ``"loosen"`` / ``"drop"``)
        to a positive integer.  Responses are cached like every other
        op — the key covers the filter, the engine, the weights and the
        effective config, so a repeat is a byte replay.
        """
        with self._lock:
            self.stats.requests += 1
            effective = self._effective_config(config)
            weight_key = tuple(sorted((weights or {}).items()))
            key = ("repair", core_method, bool(rebuild), weight_key, effective)
            cached = self._recall(key)
            if cached is not None:
                return cached
            try:
                with self._solve_scope():
                    result = api.repair(
                        self.spec,
                        config=effective,
                        weights=weights,
                        core_method=core_method,
                        toggled=not rebuild,
                    )
            except ValueError as exc:
                # A bad weights mapping is a client error, not a crash:
                # surface it with the structured wire contract.
                raise ReproError(str(exc)) from None
            payload = result.as_dict()
            payload["summary"] = result.summary()
            if self.collector is not None:
                self.collector.absorb_repair_stats(payload)
            return self._absorb(self._remember(key, payload))

    def validate(self, document: str) -> dict:
        """Does a concrete document conform to the DTD and satisfy Sigma?"""
        with self._lock:
            self.stats.requests += 1
            key = ("validate", document)
            cached = self._recall(key)
            if cached is not None:
                return cached
            tree = parse_xml(document)
            report = conforms(tree, self.dtd)
            violated = violations(tree, self.sigma)
            payload = {
                "conforms": bool(report),
                "errors": list(report.errors),
                "satisfies": not violated,
                "violations": [str(phi) for phi in violated],
            }
            return self._remember(key, payload)

    def describe(self) -> dict:
        """The session's identity card (the ``open`` response)."""
        return {
            "fingerprint": self.fingerprint,
            "root": self.dtd.root,
            "element_types": len(self.dtd.element_types),
            "constraints": len(self.sigma),
            "mode": self.mode,
        }

    # -- persistence (repro.service.persist) --------------------------------

    def export_persistent(self) -> tuple[list[tuple[tuple, str]], list]:
        """The session state worth surviving a restart, in insertion order.

        Two pieces: the rendered response cache (the byte-identity store
        — replaying a rendered string is what makes a restored session's
        answers byte-identical) and the portable cut records (so a warm
        session's accumulated connectivity cuts keep pruning after the
        restart).  Warm workspaces are deliberately *not* exported: they
        hold live solver handles (HiGHS instances, exact factorizations)
        that cannot meaningfully cross a process boundary, and rebuilding
        one from the restored cut records is exactly the cold-start path
        the differential suite pins.
        """
        with self._lock:
            return (
                list(self._responses.items()),
                list(self._cut_records.values()),
            )

    def restore_persistent(
        self, responses: list[tuple[tuple, str]], cuts: list
    ) -> None:
        """Adopt a snapshot's response cache and cut records (cold caches
        only — never called on a session that has already answered)."""
        with self._lock:
            for key, rendered in responses:
                if key in self._responses:
                    continue
                self._responses[key] = rendered
                self._response_bytes += self._entry_bytes(key, rendered)
            for record in cuts:
                self._cut_records.setdefault(record.key, record)

    # -- fleet cut transport (repro.service.fleet) ---------------------------

    def export_cuts_wire(self) -> dict:
        """The session's cut pool in portable form (the ``export_cuts`` op).

        The fleet router pulls these at wave boundaries and pushes the
        union back through :meth:`adopt_cuts_wire`, so shards solving
        chunks of one ``implies_all`` share connectivity cuts exactly as
        the in-process worker pool merges them between waves.  Packed
        with the snapshot encoding
        (:func:`~repro.service.persist.pack_value`), and never cached:
        the pool grows between calls.
        """
        from repro.service import persist

        with self._lock:
            self.stats.requests += 1
            return {
                "cuts": [
                    persist.pack_value(record)
                    for record in self._cut_records.values()
                ]
            }

    def adopt_cuts_wire(self, packed: list) -> dict:
        """Merge foreign packed cut records (the ``adopt_cuts`` op).

        Set-union under the canonical record key, like
        :meth:`~repro.ilp.condsys._CutPool.merge`: duplicates are
        counted, never re-adopted, so the sync is idempotent and
        order-independent.  Adopted records seed the next warm
        workspace; replay-mode sessions accept them too (their pools
        simply stay unused until a warm restart restores them).
        """
        from repro.ilp.condsys import CutRecord
        from repro.service import persist

        adopted = duplicates = 0
        with self._lock:
            self.stats.requests += 1
            for item in packed:
                record = persist.unpack_value(item)
                if not isinstance(record, CutRecord):
                    raise ReproError(
                        "adopt_cuts entries must be packed cut records"
                    )
                if record.key in self._cut_records:
                    duplicates += 1
                else:
                    self._cut_records[record.key] = record
                    adopted += 1
        return {"adopted": adopted, "duplicates": duplicates}

    # -- internals ----------------------------------------------------------

    def _parse_phi(self, phi: str | Constraint) -> Constraint:
        return parse_constraint(phi) if isinstance(phi, str) else phi

    def _implication_payload(self, result) -> dict:
        return {
            "implied": result.implied,
            "method": result.method,
            "message": result.message,
            "stats": dict(result.stats),
            "counterexample": (
                tree_to_string(result.counterexample)
                if result.counterexample is not None
                else None
            ),
        }

    def _implies_locked(self, phi: str | Constraint, effective: CheckerConfig) -> dict:
        parsed = self._parse_phi(phi)
        key = ("implies", str(parsed), effective)
        cached = self._recall(key)
        if cached is not None:
            return cached
        validate_constraints(self.dtd, [*self.sigma, parsed])
        consistency = self._warm_probe if self.mode == "warm" else None
        with self._solve_scope():
            result = implies_validated(
                self.dtd, self.sigma, parsed, effective, consistency
            )
        return self._absorb(self._remember(key, self._implication_payload(result)))

    def _warm_probe(
        self, dtd: DTD, constraints: list[Constraint], config: CheckerConfig
    ) -> ConsistencyResult:
        """Negation-consistency probe served from warm per-query state.

        Keyed by the probe's final constraint (the negated query — the
        rest is always the session's Sigma), so a repeated query lands
        on its own warm workspace and re-solves by bound patches.
        """
        marker = str(constraints[-1]) if constraints else ""
        return self._warm_consistency(
            dtd, constraints, config, workspace_key=("implies", marker)
        )

    def _warm_consistency(
        self,
        dtd: DTD,
        constraints: list[Constraint],
        config: CheckerConfig,
        workspace_key: tuple,
    ) -> ConsistencyResult:
        """Consistency with per-query workspace + session cut carry-over."""
        cls = classify(constraints)
        if cls in (ConstraintClass.EMPTY, ConstraintClass.K, ConstraintClass.K_FK):
            # Linear-time fragments and the undecidable refusal: nothing
            # for a workspace to amortize — take the one-shot path.
            return check_consistency(dtd, constraints, config)
        key = (*workspace_key, config.max_setrep_attrs)
        entry = self._workspaces.get(key)
        if entry is None:
            encoding = build_encoding(
                dtd, constraints, max_setrep_attrs=config.max_setrep_attrs
            )
            workspace = SolveWorkspace(encoding.condsys.base)
            accepted, _ = workspace.adopt_cuts(self._cut_records.values())
            self.stats.cuts_carried += accepted
            self.stats.workspaces_built += 1
            self._workspaces[key] = entry = (encoding, workspace)
            while len(self._workspaces) > self._max_workspaces:
                self._workspaces.popitem(last=False)
                self.stats.workspaces_dropped += 1
        else:
            self._workspaces.move_to_end(key)
            self.stats.workspaces_reused += 1
        encoding, workspace = entry
        with workspace.checkout():
            result = check_consistency_encoded(encoding, config, workspace)
        for record in workspace.export_cuts():
            self._cut_records.setdefault(record.key, record)
        return result
