"""Crash-safe session snapshots: the service's state that survives restarts.

A long-lived ``repro serve`` process accumulates value that is expensive
to lose: per-spec response caches (the byte-identity store behind the
warm-service speedups) and the connectivity-cut records a warm session
has learned.  This module persists exactly that — and nothing live —
to one JSON snapshot file:

* **atomic writes** — the snapshot is rendered to a sibling temp file
  and moved into place with ``os.replace``, so a crash mid-write leaves
  the previous snapshot intact, never a torn file;
* **self-verifying envelope** — ``{"version", "checksum", "payload"}``
  with a SHA-256 over the canonical payload rendering; a version skew,
  checksum mismatch, truncation, or plain junk makes :func:`load_snapshot`
  return *zero sessions restored*, never raise — a corrupt snapshot is a
  cold start, not an outage (DESIGN.md section 9);
* **portable contents only** — rendered response strings (replayed
  verbatim, so restored answers are byte-identical to the pre-restart
  session's) and :class:`~repro.ilp.condsys.CutRecord`\\ s (plain data,
  re-adopted into fresh workspaces).  Live solver handles (HiGHS
  instances, exact factorizations) are rebuilt on demand, exactly as a
  cold session would.

The ``persist.corrupt`` fault point (:mod:`repro.service.faults`)
deliberately garbles the file *after* the atomic rename, so the chaos
suite can prove the load path's corruption tolerance end to end.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict

from repro.checkers.config import CheckerConfig
from repro.dtd.serializer import dtd_to_string
from repro.errors import ReproError
from repro.ilp.condsys import CutRecord
from repro.service.faults import fault_active

__all__ = [
    "SNAPSHOT_VERSION",
    "save_snapshot",
    "load_snapshot",
    "pack_value",
    "unpack_value",
]

#: Bump on any change to the payload shape; a mismatched snapshot is
#: silently treated as absent (cold start), never migrated in place.
SNAPSHOT_VERSION = 1


# -- value packing -----------------------------------------------------------
#
# Response-cache keys are tuples mixing strings, bools, ints and
# CheckerConfig instances; cut records carry nested tuples and frozensets.
# JSON has none of those, so every value travels as a ``[tag, ...]`` pair
# and is rebuilt exactly (tuple identity matters: the restored keys must
# compare equal to the keys live requests build).


def _pack(value) -> list:
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["fl", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, tuple):
        return ["t", [_pack(item) for item in value]]
    if isinstance(value, frozenset):
        packed = [_pack(item) for item in value]
        packed.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return ["f", packed]
    if isinstance(value, CheckerConfig):
        return ["config", asdict(value)]
    if isinstance(value, CutRecord):
        return [
            "cut",
            _pack(value.coeffs),
            _pack(value.guard),
            value.label,
        ]
    raise ReproError(f"cannot persist value of type {type(value).__name__}")


def _unpack(encoded: list):
    tag, *rest = encoded
    if tag in ("b", "i", "fl", "s"):
        return rest[0]
    if tag == "t":
        return tuple(_unpack(item) for item in rest[0])
    if tag == "f":
        return frozenset(_unpack(item) for item in rest[0])
    if tag == "config":
        return CheckerConfig(**rest[0])
    if tag == "cut":
        coeffs, guard, label = rest
        return CutRecord(coeffs=_unpack(coeffs), guard=_unpack(guard), label=label)
    raise ReproError(f"unknown persisted value tag {tag!r}")


def pack_value(value) -> list:
    """One value in the snapshot's portable ``[tag, ...]`` form.

    The same encoding the snapshot file uses also carries
    :class:`~repro.ilp.condsys.CutRecord`\\ s over the fleet's wire
    (the ``export_cuts`` / ``adopt_cuts`` protocol ops): packed values
    are JSON-ready and rebuild exactly on the other side.
    """
    return _pack(value)


def unpack_value(encoded: list):
    """Rebuild a value from its portable form; raises on junk."""
    if not isinstance(encoded, list) or not encoded:
        raise ReproError("packed value must be a non-empty list")
    return _unpack(encoded)


# -- snapshot assembly -------------------------------------------------------


def snapshot_payload(registry) -> dict:
    """The registry's persistent state as a JSON-ready payload."""
    sessions = []
    for fingerprint in registry.fingerprints():
        session = registry.get(fingerprint)
        if session is None:  # evicted between the two calls
            continue
        responses, cuts = session.export_persistent()
        sessions.append(
            {
                "fingerprint": session.fingerprint,
                "dtd": dtd_to_string(session.dtd),
                "root": session.dtd.root,
                "constraints": [str(phi) for phi in session.sigma],
                "responses": [[_pack(key), rendered] for key, rendered in responses],
                "cuts": [_pack(record) for record in cuts],
            }
        )
    return {"mode": registry.mode, "sessions": sessions}


def _checksum(payload: dict) -> str:
    rendered = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(rendered).hexdigest()


def save_snapshot(registry, path: str) -> int:
    """Atomically write the registry's snapshot; return sessions saved.

    Crash-safety: the envelope is written to a temp file in the target
    directory and moved into place with ``os.replace`` (atomic on POSIX),
    so readers only ever observe the old snapshot or the complete new
    one.  The ``persist.corrupt`` fault point garbles the file after the
    rename — the chaos suite's handle on the corruption-tolerance story.
    """
    payload = snapshot_payload(registry)
    envelope = {
        "version": SNAPSHOT_VERSION,
        "checksum": _checksum(payload),
        "payload": payload,
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=".repro-snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except FileNotFoundError:
            pass
        raise
    if fault_active("persist.corrupt"):
        with open(path, "r+", encoding="utf-8") as handle:
            handle.seek(0)
            handle.write("{corrupted")
    return len(payload["sessions"])


def load_snapshot(registry, path: str) -> int:
    """Restore sessions from ``path`` into ``registry``; return how many.

    Deliberately forgiving: a missing file, unreadable JSON, version
    skew, checksum mismatch, or an individually malformed session entry
    all mean *that state is not restored* — the service cold-starts the
    affected sessions and keeps serving.  Nothing here raises on bad
    snapshot bytes.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            envelope = json.load(handle)
        if envelope.get("version") != SNAPSHOT_VERSION:
            return 0
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            return 0
        if envelope.get("checksum") != _checksum(payload):
            return 0
    except (OSError, ValueError):
        return 0
    restored = 0
    for entry in payload.get("sessions", ()):
        try:
            session = registry.session_for(
                entry["dtd"],
                "\n".join(entry["constraints"]),
                root=entry["root"],
            )
            if session.fingerprint != entry["fingerprint"]:
                continue  # the spec no longer canonicalizes the same way
            responses = [
                (_unpack(key), rendered) for key, rendered in entry["responses"]
            ]
            cuts = [_unpack(record) for record in entry["cuts"]]
            session.restore_persistent(responses, cuts)
            restored += 1
        except Exception:  # noqa: BLE001 - one bad entry must not spread
            continue
    return restored
