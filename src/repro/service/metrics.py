"""Central metrics: one collector for every counter the service emits.

Before this module, observability counters were scattered across three
stats dicts — :class:`~repro.service.server.ServerStats`, the registry's
``stats()`` payload (which *merged* registry counters with per-session
aggregates into one flat dict), and the solver's
:class:`~repro.ilp.condsys.CondSolveStats` riding on responses.  The
:class:`StatsCollector` absorbs them behind namespaced keys —
``server.*``, ``registry.*``, ``session.*``, ``pool.*`` — so no key can
shadow another, and adds the two things a scrape surface needs that
point-in-time dicts cannot give:

* **latency histograms** — fixed-bucket per-op request latency plus the
  parallel pool's per-wave latency (:class:`LatencyHistogram`);
* **monotone session aggregates** — evicted sessions are *retired* into
  the collector (:meth:`StatsCollector.retire_session`), so
  ``session.requests`` and friends never step backwards when the LRU
  sheds a resident session.

The rendered surface is the Prometheus text exposition format
(:func:`render_prometheus`), served at ``GET /metrics`` by the HTTP
front end; the scrape is a pure read (no locks shared with the solver
hot path beyond the collector's own mutex).  The shape follows scrapy's
engine/stats split: components push increments into one process-wide
collector; the exporter only ever reads.

This module also closes the adaptive-parallelism loop
(:class:`AdaptiveJobsController`): observed per-wave latency grows or
shrinks a session's effective ``jobs``, complementing the server's
adaptive batch width (DESIGN.md section 10).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass

from repro.ilp.condsys import effective_parallelism

#: Histogram bucket upper bounds, in seconds.  Spaced for a service whose
#: warm cache hits answer in well under a millisecond and whose cold
#: branch-and-bound solves run seconds: sub-ms resolution at the fast
#: end, coarse decades at the slow end, ``+Inf`` implied.
HISTOGRAM_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """One documented metric: wire key, exposition name, type, help."""

    key: str
    name: str
    kind: str
    help: str


def _spec(key: str, kind: str, help_text: str) -> MetricSpec:
    name = "repro_" + key.replace(".", "_")
    if kind == COUNTER:
        name += "_total"
    return MetricSpec(key=key, name=name, kind=kind, help=help_text)


#: Every documented scalar metric, keyed by its namespaced wire name.
#: The ``stats`` op's ``counters`` payload and the ``/metrics`` scrape
#: are both generated from (supersets of) this table, and
#: ``tests/test_service_metrics.py`` round-trips it: each entry must be
#: present in a scrape, carry this type, and — for counters — be
#: monotone across scrapes.
METRICS: dict[str, MetricSpec] = {
    spec.key: spec
    for spec in (
        # -- server.*: the front end (admission, batching, lifecycle) --
        _spec("server.requests", COUNTER, "Requests received (all ops)."),
        _spec("server.responses", COUNTER, "Responses written."),
        _spec("server.errors", COUNTER, "Responses carrying ok=false."),
        _spec("server.batches", COUNTER, "Session-queue drains dispatched."),
        _spec(
            "server.batches_coalesced",
            COUNTER,
            "Drains that coalesced 2+ implies into one implies_all.",
        ),
        _spec(
            "server.batch_width_sum",
            COUNTER,
            "Total requests across all drained batches.",
        ),
        _spec(
            "server.requests_shed",
            COUNTER,
            "Requests answered overloaded by admission control.",
        ),
        _spec(
            "server.connections_shed",
            COUNTER,
            "Connections shed at the connection cap.",
        ),
        _spec(
            "server.deadline_expired",
            COUNTER,
            "Requests answered budget_exceeded.",
        ),
        _spec(
            "server.sessions_restored",
            COUNTER,
            "Sessions restored from a state snapshot.",
        ),
        _spec("server.snapshots_saved", COUNTER, "State snapshots written."),
        _spec(
            "server.batch_width",
            GAUGE,
            "Widest batch drained so far (high-water mark).",
        ),
        _spec("server.inflight", GAUGE, "Requests currently admitted."),
        _spec("server.connections", GAUGE, "Open client connections."),
        _spec(
            "server.batch_limit",
            GAUGE,
            "Current adaptive batch width limit.",
        ),
        _spec(
            "server.accepting",
            GAUGE,
            "1 while admitting requests, 0 once shutdown began.",
        ),
        # -- registry.*: the cross-request session cache ---------------
        _spec("registry.sessions_opened", COUNTER, "Sessions built (cache misses)."),
        _spec("registry.session_hits", COUNTER, "Fingerprint cache hits."),
        _spec("registry.sessions_evicted", COUNTER, "Sessions evicted (LRU/bytes)."),
        _spec("registry.sessions", GAUGE, "Resident sessions."),
        _spec("registry.approx_bytes", GAUGE, "Approximate resident bytes."),
        _spec("registry.max_sessions", GAUGE, "Session cap."),
        _spec("registry.max_bytes", GAUGE, "Byte budget."),
        # -- session.*: aggregated across live AND retired sessions ----
        _spec("session.requests", COUNTER, "Session-level operations served."),
        _spec("session.cache_hits", COUNTER, "Response-cache hits (byte replays)."),
        _spec("session.workspaces_built", COUNTER, "Warm workspaces assembled."),
        _spec("session.workspaces_reused", COUNTER, "Warm workspace reuses."),
        _spec("session.workspaces_dropped", COUNTER, "Warm workspaces evicted."),
        _spec("session.cuts_carried", COUNTER, "Cuts carried across requests."),
        _spec(
            "session.batch_requests",
            COUNTER,
            "Requests answered through coalesced implies_batch.",
        ),
        _spec("session.cached_responses", GAUGE, "Resident response-cache entries."),
        # -- repair.*: the minimal-repair engine (namespaced — never
        # flat-merged into session.* where same-named solver counters
        # would shadow) ------------------------------------------------
        _spec("repair.requests", COUNTER, "Repair ops genuinely solved."),
        _spec(
            "repair.found",
            COUNTER,
            "Repair ops that returned a verified consistency-restoring edit.",
        ),
        _spec("repair.probes", COUNTER, "Candidate-subset probes in repair searches."),
        _spec(
            "repair.probe_cache_hits",
            COUNTER,
            "Repair probes answered from the probe memo.",
        ),
        _spec("repair.cores", COUNTER, "Conflict cores extracted during repair."),
        _spec(
            "repair.hitting_sets",
            COUNTER,
            "Minimum hitting sets computed during repair.",
        ),
        _spec(
            "repair.assemblies",
            COUNTER,
            "Base-matrix assemblies paid by repair searches.",
        ),
        _spec(
            "repair.verify_checks",
            COUNTER,
            "Full consistency checks verifying applied repairs.",
        ),
        # -- router.*: the fleet shard router (repro fleet) ------------
        _spec("router.requests", COUNTER, "Requests received by the router."),
        _spec("router.responses", COUNTER, "Responses written by the router."),
        _spec("router.errors", COUNTER, "Routed responses carrying ok=false."),
        _spec(
            "router.requests_shed",
            COUNTER,
            "Requests shed by the router's admission control.",
        ),
        _spec(
            "router.connections_shed",
            COUNTER,
            "Connections shed at the router's connection cap.",
        ),
        _spec("router.routed", COUNTER, "Requests forwarded to a backend."),
        _spec(
            "router.replays",
            COUNTER,
            "Idempotent replays after a dropped backend connection.",
        ),
        _spec("router.reconnects", COUNTER, "Backend links re-established."),
        _spec(
            "router.backends_lost",
            COUNTER,
            "Backends removed from the ring as unreachable.",
        ),
        _spec(
            "router.reroutes",
            COUNTER,
            "Requests rerouted to a surviving backend after a loss.",
        ),
        _spec("router.waves", COUNTER, "implies_all fan-out waves dispatched."),
        _spec(
            "router.wave_chunks",
            COUNTER,
            "Chunks dispatched across all fan-out waves.",
        ),
        _spec(
            "router.cut_syncs",
            COUNTER,
            "Wave-boundary cut-pool sync rounds.",
        ),
        _spec(
            "router.cuts_synced",
            COUNTER,
            "Cut records adopted fleet-wide at wave boundaries.",
        ),
        _spec("router.backends", GAUGE, "Live backends on the ring."),
        _spec("router.inflight", GAUGE, "Requests admitted by the router."),
        _spec(
            "router.accepting",
            GAUGE,
            "1 while the router admits requests, 0 once shutdown began.",
        ),
        # -- pool.*: the fork-based solver pool + adaptive jobs --------
        _spec("pool.workers_spawned", COUNTER, "Worker processes forked."),
        _spec("pool.parallel_waves", COUNTER, "Support-branch waves dispatched."),
        _spec("pool.cuts_merged", COUNTER, "Worker cuts merged at wave edges."),
        _spec(
            "pool.cut_merge_duplicates",
            COUNTER,
            "Worker cuts dropped as duplicates at merge.",
        ),
        _spec("pool.workers_crashed", COUNTER, "Worker crashes detected."),
        _spec("pool.workers_respawned", COUNTER, "Workers respawned after a crash."),
        _spec("pool.tasks_requeued", COUNTER, "Tasks requeued after a crash."),
        _spec(
            "pool.parallel_degraded",
            COUNTER,
            "Solves that degraded to jobs=1 after repeated crashes.",
        ),
        _spec("pool.jobs_grown", COUNTER, "Adaptive-jobs growth steps."),
        _spec("pool.jobs_shrunk", COUNTER, "Adaptive-jobs shrink steps."),
        _spec(
            "pool.effective_jobs",
            GAUGE,
            "Current adaptive jobs level (auto sessions; 0 = never engaged).",
        ),
    )
}

#: The solver counters a session forwards into ``pool.*`` after each
#: genuinely-solved request (cache hits carry no new solver work).
_POOL_STAT_KEYS = (
    "workers_spawned",
    "parallel_waves",
    "cuts_merged",
    "cut_merge_duplicates",
    "workers_crashed",
    "workers_respawned",
    "tasks_requeued",
)

#: The repair-engine counters a session forwards into ``repair.*``
#: after each genuinely-solved repair request.
_REPAIR_STAT_KEYS = (
    "probes",
    "probe_cache_hits",
    "cores",
    "hitting_sets",
    "assemblies",
    "verify_checks",
)

#: Histogram families (rendered after the scalars).
OP_LATENCY = MetricSpec(
    key="op_latency",
    name="repro_request_latency_seconds",
    kind=HISTOGRAM,
    help="Wire-request latency by op (admission to response payload).",
)
WAVE_LATENCY = MetricSpec(
    key="wave_latency",
    name="repro_pool_wave_latency_seconds",
    kind=HISTOGRAM,
    help="Parallel support-branch wave latency.",
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (Prometheus ``histogram`` shape).

    ``counts[i]`` is the number of observations <= ``buckets[i]``
    (*non*-cumulative storage; :meth:`snapshot` cumulates), plus one
    overflow slot for ``+Inf``.  Mutation is O(log buckets) and is done
    under the owning collector's lock.

    >>> h = LatencyHistogram()
    >>> h.observe(0.0007); h.observe(0.3); h.observe(999.0)
    >>> h.count, [b for b, _ in h.snapshot()][:2]
    (3, [0.0005, 0.001])
    """

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...] = HISTOGRAM_BUCKETS):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.buckets, seconds)] += 1
        self.total += seconds
        self.count += 1

    def snapshot(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out, running = [], 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


class StatsCollector:
    """The process-wide sink for pushed counters and histograms.

    Components *push* (``inc``/``set_gauge``/``observe_op``/
    ``observe_wave``/``absorb_solver_stats``/``retire_session``); the
    exporter *pulls* (:meth:`counters`, :meth:`render`).  All methods
    are thread-safe: sessions mutate from executor threads while the
    event loop renders a scrape.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._op_latency: dict[str, LatencyHistogram] = {}
        self._wave_latency = LatencyHistogram()

    # -- pushes --------------------------------------------------------

    def inc(self, key: str, amount: int = 1) -> None:
        """Add ``amount`` to the namespaced counter ``key``."""
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, key: str, value: float) -> None:
        with self._lock:
            self._gauges[key] = value

    def observe_op(self, op: str, seconds: float) -> None:
        """Record one wire request's latency under its op label."""
        with self._lock:
            histogram = self._op_latency.get(op)
            if histogram is None:
                histogram = self._op_latency[op] = LatencyHistogram()
            histogram.observe(seconds)

    def observe_wave(self, seconds: float) -> None:
        """Record one parallel wave's latency (condsys hook)."""
        with self._lock:
            self._wave_latency.observe(seconds)

    def absorb_solver_stats(self, stats: dict | None) -> None:
        """Fold one response's solver stats into the ``pool.*`` counters."""
        if not stats:
            return
        with self._lock:
            for key in _POOL_STAT_KEYS:
                value = stats.get(key, 0)
                if value:
                    pool_key = f"pool.{key}"
                    self._counters[pool_key] = self._counters.get(pool_key, 0) + value
            if stats.get("parallel_degraded"):
                self._counters["pool.parallel_degraded"] = (
                    self._counters.get("pool.parallel_degraded", 0) + 1
                )

    def absorb_repair_stats(self, payload: dict) -> None:
        """Fold one solved repair response into the ``repair.*`` counters.

        Takes the wire payload (the :class:`~repro.analysis.repair.Repair`
        dict): the outcome flags become ``repair.requests`` /
        ``repair.found`` and the engine's work counters land under their
        own namespace — deliberately *not* merged into ``session.*``,
        where same-named solver counters (``assemblies``, ``probes``)
        would be shadowed.
        """
        stats = payload.get("stats") or {}
        with self._lock:
            self._counters["repair.requests"] = (
                self._counters.get("repair.requests", 0) + 1
            )
            if payload.get("found"):
                self._counters["repair.found"] = (
                    self._counters.get("repair.found", 0) + 1
                )
            for key in _REPAIR_STAT_KEYS:
                value = stats.get(key, 0)
                if value:
                    full = f"repair.{key}"
                    self._counters[full] = self._counters.get(full, 0) + value

    def retire_session(self, stats: dict[str, int]) -> None:
        """Accumulate an evicted session's counters so ``session.*``
        aggregates stay monotone after the LRU drops it."""
        with self._lock:
            for key, value in stats.items():
                if value:
                    full = f"session.{key}"
                    self._counters[full] = self._counters.get(full, 0) + value

    # -- pulls ---------------------------------------------------------

    def counters(self) -> dict[str, float]:
        """A point-in-time copy of the pushed counters and gauges."""
        with self._lock:
            merged = dict(self._counters)
            merged.update(self._gauges)
            return merged

    def _histograms_snapshot(self):
        with self._lock:
            ops = {
                op: (h.snapshot(), h.total, h.count)
                for op, h in sorted(self._op_latency.items())
            }
            wave = (
                self._wave_latency.snapshot(),
                self._wave_latency.total,
                self._wave_latency.count,
            )
        return ops, wave

    def render(self, counters: dict[str, float] | None = None) -> str:
        """The Prometheus text exposition for ``counters`` (defaulting
        to the collector's own pushed state) plus the histograms."""
        if counters is None:
            counters = self.counters()
        ops, wave = self._histograms_snapshot()
        return render_prometheus(counters, ops, wave)


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def render_prometheus(counters, op_histograms=None, wave_histogram=None) -> str:
    """Render the documented metrics in text exposition format 0.0.4.

    Every entry of :data:`METRICS` is emitted (absent keys as 0, so a
    scraper sees a stable series set from the first scrape); undocumented
    ``counters`` keys are ignored rather than exported untyped.
    """
    lines: list[str] = []
    for spec in METRICS.values():
        value = counters.get(spec.key, 0)
        lines.append(f"# HELP {spec.name} {spec.help}")
        lines.append(f"# TYPE {spec.name} {spec.kind}")
        lines.append(f"{spec.name} {_format_value(value)}")
    for spec, families in (
        (OP_LATENCY, op_histograms or {}),
        (WAVE_LATENCY, {None: wave_histogram} if wave_histogram else {}),
    ):
        lines.append(f"# HELP {spec.name} {spec.help}")
        lines.append(f"# TYPE {spec.name} {spec.kind}")
        for label, (snapshot, total, count) in families.items():
            suffix = f'{{op="{label}"}}' if label is not None else ""
            for bound, cumulative in snapshot:
                le = f'le="{_format_bound(bound)}"'
                labels = f'{{op="{label}", {le}}}' if label is not None else f"{{{le}}}"
                lines.append(f"{spec.name}_bucket{labels} {cumulative}")
            lines.append(f"{spec.name}_sum{suffix} {_format_value(total)}")
            lines.append(f"{spec.name}_count{suffix} {count}")
    return "\n".join(lines) + "\n"


class AdaptiveJobsController:
    """Latency-driven ``jobs`` tuning for one session (``--jobs auto``).

    The AutoThrottle-shaped AIMD loop, one level up from the server's
    adaptive batch width: when a solve (or a parallel wave) runs longer
    than ``target_latency``, there is enough work outstanding to justify
    another worker — grow additively.  When solves come back fast, the
    spec is cheap and forked workers are overhead — decay multiplicatively
    toward 1.  The level is clamped to ``[1, ceiling]`` where ``ceiling``
    is :func:`~repro.ilp.condsys.effective_parallelism` (the CPUs this
    process may actually use), so auto mode can never oversubscribe.

    The controller only ever *suggests* a concrete integer
    (:meth:`current`); sessions resolve it into the per-request
    ``CheckerConfig`` before cache keys are formed, so the fixed-jobs
    path and response byte-identity are untouched.

    >>> ctl = AdaptiveJobsController(target_latency=0.1, ceiling=4)
    >>> for _ in range(8):
    ...     ctl.observe_solve(1.0)
    >>> ctl.current()
    4
    >>> for _ in range(8):
    ...     ctl.observe_solve(0.001)
    >>> ctl.current()
    1
    """

    def __init__(
        self,
        target_latency: float = 0.25,
        ceiling: int | None = None,
        collector: StatsCollector | None = None,
    ):
        if target_latency < 0:
            raise ValueError("target_latency cannot be negative")
        self.target_latency = target_latency
        self.ceiling = max(1, ceiling if ceiling is not None else effective_parallelism())
        self.collector = collector
        self._lock = threading.Lock()
        self._level = 1.0
        self.grown = 0
        self.shrunk = 0

    def current(self) -> int:
        """The jobs level a new request should solve with (in ``[1, ceiling]``)."""
        with self._lock:
            return max(1, min(self.ceiling, int(self._level)))

    def _adjust(self, slow: bool) -> None:
        with self._lock:
            before = max(1, min(self.ceiling, int(self._level)))
            if slow:
                self._level = min(float(self.ceiling), self._level + 1.0)
            else:
                self._level = max(1.0, self._level * 0.75)
            after = max(1, min(self.ceiling, int(self._level)))
            if after > before:
                self.grown += 1
            elif after < before:
                self.shrunk += 1
        if self.collector is not None:
            if after > before:
                self.collector.inc("pool.jobs_grown")
            elif after < before:
                self.collector.inc("pool.jobs_shrunk")
            self.collector.set_gauge("pool.effective_jobs", self.current())

    def observe_wave(self, seconds: float, width: int) -> None:
        """One parallel wave completed: grow while waves run slow."""
        del width
        self._adjust(slow=seconds > self.target_latency)

    def observe_solve(self, seconds: float) -> None:
        """One full solve completed (any jobs level)."""
        self._adjust(slow=seconds > self.target_latency)
