"""Consistent hashing for the checking fleet (DESIGN.md section 11).

The fleet router shards sessions across backends by their canonical
:func:`~repro.encoding.combined.spec_fingerprint`.  The assignment must
satisfy two properties the test suite pins:

* **balance** — across 1..16 backends, no backend owns more than a
  small constant factor above its fair share of a large key population
  (virtual replicas smooth the ring; see ``replicas``);
* **minimal movement** — adding or removing one backend remaps *only*
  the ring segment that backend gains or loses: every key that moves on
  a join moves *to* the joined backend, and every key that moves on a
  leave moves *away from* the departed backend.  A reshuffle-everything
  scheme (e.g. ``hash(key) % n``) would invalidate almost every
  backend's session residency on each fleet change; the ring keeps the
  fleet's caches warm through membership churn.

Hashing is SHA-256 over UTF-8 text, so ownership is deterministic
across processes, platforms and Python versions — the router can
restart (or a second router can front the same backends) and route
identically.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from hashlib import sha256

from repro.errors import ReproError

#: Virtual ring points per backend.  128 keeps the worst/fair-share
#: ratio under ~1.35 for 16 backends over large key populations (the
#: property test pins a bound) at a trivial memory cost.
DEFAULT_REPLICAS = 128


def _position(text: str) -> int:
    """A point on the ring: the first 8 bytes of SHA-256, big-endian."""
    return int.from_bytes(sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring mapping keys to backends.

    >>> ring = HashRing(["a:1", "b:2"])
    >>> owner = ring.owner("some-fingerprint")
    >>> owner in ("a:1", "b:2")
    True
    >>> ring.remove(owner)
    >>> ring.owner("some-fingerprint") != owner
    True
    """

    def __init__(
        self,
        backends: list[str] | tuple[str, ...] = (),
        replicas: int = DEFAULT_REPLICAS,
    ):
        if replicas < 1:
            raise ReproError("a hash ring needs at least one replica per backend")
        self.replicas = replicas
        #: Sorted ring positions; each maps to its owning backend.
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._backends: set[str] = set()
        for backend in backends:
            self.add(backend)

    def __len__(self) -> int:
        return len(self._backends)

    def __contains__(self, backend: str) -> bool:
        return backend in self._backends

    def backends(self) -> list[str]:
        """The live backends, sorted (a deterministic iteration order)."""
        return sorted(self._backends)

    def add(self, backend: str) -> None:
        """Join ``backend``: claim its ``replicas`` ring segments."""
        if backend in self._backends:
            return
        self._backends.add(backend)
        for index in range(self.replicas):
            point = _position(f"{backend}#{index}")
            # SHA-256 collisions between distinct replica labels are not
            # a practical concern, but ties must still be deterministic:
            # the lexicographically smaller backend keeps the point.
            holder = self._owners.get(point)
            if holder is not None:
                if backend < holder:
                    self._owners[point] = backend
                continue
            self._owners[point] = backend
            insort(self._points, point)

    def remove(self, backend: str) -> None:
        """Leave ``backend``: release its segments to their successors."""
        if backend not in self._backends:
            return
        self._backends.discard(backend)
        dropped = []
        for index in range(self.replicas):
            point = _position(f"{backend}#{index}")
            if self._owners.get(point) != backend:
                continue  # a tie another backend holds
            del self._owners[point]
            dropped.append(point)
        for point in dropped:
            index = bisect_right(self._points, point) - 1
            if index >= 0 and self._points[index] == point:
                del self._points[index]

    def owner(self, key: str) -> str | None:
        """The backend owning ``key``: the first ring point clockwise
        from the key's position (``None`` on an empty ring)."""
        if not self._points:
            return None
        position = _position(key)
        index = bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[self._points[index]]
