"""Cross-request session cache: fingerprint-keyed, LRU + byte budget.

The registry is the service's working set.  Every request resolves to a
:class:`~repro.service.session.SpecSession` through
:meth:`SessionRegistry.session_for`: a canonical
:func:`~repro.encoding.combined.spec_fingerprint` of the request's
``(DTD, Sigma)`` either hits a resident session (``session_hits``) or
admits a new one, evicting least-recently-used sessions while the
registry exceeds its session count or byte budget
(``sessions_evicted``).  An evicted specification is not an error — the
next request for it simply re-admits a cold session, whose answers are
byte-identical to the evicted one's (the differential suite replays
exactly this).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache

from repro.checkers.config import CheckerConfig
from repro.constraints.ast import Constraint
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.encoding.combined import spec_fingerprint
from repro.errors import ReproError
from repro.service.session import MODES, SpecSession


#: Lazily-created process-wide registry (the CLI's thin-client backing).
_DEFAULT_REGISTRY: "SessionRegistry | None" = None


def default_registry() -> "SessionRegistry":
    """The process-wide registry the CLI commands resolve through.

    One-shot command invocations see a cold session each (their results
    are byte-identical to the pre-service CLI), while embedders that
    call :func:`repro.cli.main` repeatedly in one process — test
    harnesses, notebooks, driver scripts — get cross-call session reuse
    for free.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = SessionRegistry()
    return _DEFAULT_REGISTRY


@lru_cache(maxsize=1024)
def _fingerprint_text(dtd_text: str, constraints_text: str, root: str | None) -> str:
    dtd = parse_dtd(dtd_text, root=root)
    sigma = parse_constraints(constraints_text)
    return spec_fingerprint(dtd, sigma)


def fingerprint_for(
    dtd: DTD | str,
    constraints: list[Constraint] | tuple[Constraint, ...] | str = (),
    root: str | None = None,
) -> str:
    """The canonical spec fingerprint for text or parsed inputs.

    The same identity :meth:`SessionRegistry.session_for` keys on, but
    *without admitting a session* — the fleet router shards requests by
    this value before any backend has parsed the spec.  Text inputs are
    memoized (the router fingerprints every inline request on its event
    loop; a repeated spec must not re-parse).
    """
    if isinstance(dtd, str) and isinstance(constraints, str):
        return _fingerprint_text(dtd, constraints, root)
    if isinstance(dtd, str):
        dtd = parse_dtd(dtd, root=root)
    if isinstance(constraints, str):
        constraints = parse_constraints(constraints)
    return spec_fingerprint(dtd, list(constraints))


class SessionRegistry:
    """LRU cache of :class:`SpecSession`\\ s keyed by spec fingerprint.

    >>> from repro.dtd.model import DTD
    >>> registry = SessionRegistry(max_sessions=2)
    >>> d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["k"]})
    >>> first = registry.session_for(d, [])
    >>> registry.session_for(d, []) is first      # same spec: cache hit
    True
    >>> registry.stats()["session_hits"]
    1
    """

    def __init__(
        self,
        max_sessions: int = 32,
        max_bytes: int = 256 * 1024 * 1024,
        mode: str = "replay",
        config: CheckerConfig | None = None,
        max_cached_responses: int = 512,
        max_workspaces: int = 32,
        auto_jobs: bool = False,
    ):
        if mode not in MODES:
            raise ReproError(f"unknown session mode {mode!r} (use one of {MODES})")
        if max_sessions < 1:
            raise ReproError("the registry needs room for at least one session")
        self.max_sessions = max_sessions
        self.max_bytes = max_bytes
        self.mode = mode
        self.config = config
        self.auto_jobs = auto_jobs
        self.collector = None
        self._max_cached_responses = max_cached_responses
        self._max_workspaces = max_workspaces
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[str, SpecSession]" = OrderedDict()
        self._hits = 0
        self._opened = 0
        self._evicted = 0
        #: Folded counters of evicted sessions, so the ``session.*``
        #: aggregates (:meth:`session_counters`) stay monotone when the
        #: LRU sheds a resident session (ISSUE 8).
        self._retired: dict[str, int] = {}

    # -- resolution ---------------------------------------------------------

    def session_for(
        self,
        dtd: DTD | str,
        constraints: list[Constraint] | tuple[Constraint, ...] | str = (),
        root: str | None = None,
    ) -> SpecSession:
        """The resident session for ``(dtd, constraints)``; admit if absent.

        Accepts parsed objects or text (``<!ELEMENT ...>`` declarations
        and constraint lines), so the wire layer and the CLI resolve
        through the same entry point.
        """
        if isinstance(dtd, str):
            dtd = parse_dtd(dtd, root=root)
        if isinstance(constraints, str):
            constraints = parse_constraints(constraints)
        sigma = list(constraints)
        fingerprint = spec_fingerprint(dtd, sigma)
        with self._lock:
            session = self._sessions.get(fingerprint)
            if session is not None:
                self._sessions.move_to_end(fingerprint)
                self._hits += 1
                return session
            session = SpecSession(
                dtd,
                sigma,
                config=self.config,
                mode=self.mode,
                max_cached_responses=self._max_cached_responses,
                max_workspaces=self._max_workspaces,
                auto_jobs=self.auto_jobs,
                collector=self.collector,
            )
            self._opened += 1
            self._sessions[fingerprint] = session
            self._shrink_locked()
            return session

    def get(self, fingerprint: str) -> SpecSession | None:
        """The resident session with this fingerprint, if any (no admit)."""
        with self._lock:
            session = self._sessions.get(fingerprint)
            if session is not None:
                self._sessions.move_to_end(fingerprint)
                self._hits += 1
            return session

    def evict(self, fingerprint: str) -> bool:
        """Drop one session by fingerprint; ``True`` if it was resident."""
        with self._lock:
            session = self._sessions.pop(fingerprint, None)
            if session is None:
                return False
            self._retire_locked(session)
            self._evicted += 1
            return True

    def _retire_locked(self, session: SpecSession) -> None:
        """Fold an evicted session's counters into the retired totals
        (same critical section as the eviction, so :meth:`session_counters`
        can never observe the drop)."""
        for key, value in session.stats.as_dict().items():
            if value:
                self._retired[key] = self._retired.get(key, 0) + value

    def _shrink_locked(self) -> None:
        """Evict LRU sessions while over the count or byte budget.

        The just-admitted session (most recently used) is never evicted:
        a single oversized spec must still be answerable, it simply
        leaves no room for neighbours.
        """
        while len(self._sessions) > self.max_sessions:
            _, session = self._sessions.popitem(last=False)
            self._retire_locked(session)
            self._evicted += 1
        while len(self._sessions) > 1 and self.approx_bytes() > self.max_bytes:
            _, session = self._sessions.popitem(last=False)
            self._retire_locked(session)
            self._evicted += 1

    def attach_collector(self, collector) -> None:
        """Adopt a :class:`~repro.service.metrics.StatsCollector`.

        Future *and* resident sessions push into it (the server calls
        this at construction; a registry built first stays collector-free
        and pays nothing).
        """
        with self._lock:
            self.collector = collector
            for session in self._sessions.values():
                session.collector = collector

    # -- introspection ------------------------------------------------------

    def approx_bytes(self) -> int:
        """Estimated resident size of every session (see ``approx_bytes``)."""
        return sum(session.approx_bytes() for session in self._sessions.values())

    def fingerprints(self) -> list[str]:
        """Resident fingerprints, least recently used first."""
        with self._lock:
            return list(self._sessions)

    def stats(self) -> dict[str, int]:
        """Registry counters plus aggregate session counters."""
        with self._lock:
            payload = {
                "sessions": len(self._sessions),
                "sessions_opened": self._opened,
                "session_hits": self._hits,
                "sessions_evicted": self._evicted,
                "approx_bytes": self.approx_bytes(),
                "max_sessions": self.max_sessions,
                "max_bytes": self.max_bytes,
            }
            payload["session_requests"] = sum(
                session.stats.requests for session in self._sessions.values()
            )
            payload["response_cache_hits"] = sum(
                session.stats.cache_hits for session in self._sessions.values()
            )
            return payload

    def core_stats(self) -> dict[str, int]:
        """Registry-only counters (no session aggregates mixed in).

        The legacy :meth:`stats` payload merges session aggregates into
        the same flat dict — the key-shadowing hazard ISSUE 8 fixes; the
        namespaced wire surface (``registry.*``) is built from this
        instead.
        """
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "sessions_opened": self._opened,
                "session_hits": self._hits,
                "sessions_evicted": self._evicted,
                "approx_bytes": self.approx_bytes(),
                "max_sessions": self.max_sessions,
                "max_bytes": self.max_bytes,
            }

    def session_counters(self) -> dict[str, int]:
        """Aggregate ``session.*`` counters: live sessions plus retired
        (evicted) totals — monotone across eviction — and the live-only
        ``cached_responses`` occupancy gauge."""
        with self._lock:
            totals = dict(self._retired)
            cached = 0
            for session in self._sessions.values():
                for key, value in session.stats.as_dict().items():
                    totals[key] = totals.get(key, 0) + value
                cached += len(session._responses)  # single-read, GIL-atomic
            for key in (
                "requests",
                "cache_hits",
                "workspaces_built",
                "workspaces_reused",
                "workspaces_dropped",
                "cuts_carried",
                "batch_requests",
            ):
                totals.setdefault(key, 0)
            totals["cached_responses"] = cached
            return totals
