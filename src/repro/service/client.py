"""A small synchronous client for the line-delimited JSON protocol.

For scripts, benchmarks and the README quickstart; anything async can
speak the protocol directly over ``asyncio.open_connection`` (the
concurrent-client stress test does).
"""

from __future__ import annotations

import json
import socket


class ServiceClient:
    """One TCP connection to a running :class:`CheckingServer`.

    ``call`` sends one request and waits for its response; ``call_many``
    sends a burst first and then collects every response, re-ordered by
    request id — the client-side shape that lets the server's batcher
    coalesce the burst into one ``implies_all`` fan-out.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")
        self._auto_id = 0

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, request: dict) -> object:
        if "id" not in request:
            self._auto_id += 1
            request = {"id": f"auto-{self._auto_id}", **request}
        self._file.write(json.dumps(request) + "\n")
        return request["id"]

    def _read(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(self, request: dict) -> dict:
        """Send one request; return its response."""
        self._send(request)
        self._file.flush()
        return self._read()

    def call_many(self, requests: list[dict]) -> list[dict]:
        """Send a burst of requests; return responses in request order."""
        ids = [self._send(request) for request in requests]
        self._file.flush()
        by_id = {}
        for _ in ids:
            response = self._read()
            by_id[response.get("id")] = response
        return [by_id[request_id] for request_id in ids]
