"""The checking fleet: a shard router over ``repro serve`` backends.

``repro fleet`` fronts N independent single-process
:class:`~repro.service.server.CheckingServer` backends with one router
speaking the *same* line protocol (and, via
:class:`~repro.service.http.HTTPFrontend`, the same HTTP/JSON surface).
Clients cannot tell the difference: the differential suite
(``tests/test_fleet_differential.py``) pins every routed response
byte-identical to a single backend's answer.

Three responsibilities live here (DESIGN.md section 11):

* **sharding** — sessions are consistent-hashed by their canonical
  :func:`~repro.encoding.combined.spec_fingerprint`
  (:class:`~repro.service.router.HashRing`), so each backend's registry
  only holds its own ring segment's working set and the fleet's total
  session capacity scales with N;
* **wave fan-out** — a multi-``phi`` ``implies_all`` batch is split into
  chunks dispatched across the live backends like the in-process
  :class:`~repro.ilp.condsys.WorkerPool` fans support branches across
  forked workers, with the connectivity-cut pools merged over the wire
  (``export_cuts`` / ``adopt_cuts``) at wave boundaries.  If any chunk
  answers an error, the router falls back to forwarding the whole batch
  to the ring owner: one authoritative, byte-identical answer;
* **fault tolerance** — a dead backend (connect refused, connection
  dropped repeatedly) is removed from the ring; its in-flight requests —
  idempotent by construction: every operation is a pure function of the
  session state plus the request — are replayed and the segment reroutes
  to the surviving backends.  The fleet degrades to fewer shards with
  identical verdicts; it never drops or double-answers a request.

The router inherits admission control and transports from
:class:`~repro.service.server.RequestServer`: the same shed messages,
``retry_after`` hints and deterministic drain as a single backend, so
overload behaviour is byte-identical too.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import re
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, fields
from pathlib import Path

from repro.errors import OverloadedError, ReproError
from repro.service import protocol
from repro.service.metrics import StatsCollector
from repro.service.registry import fingerprint_for
from repro.service.router import DEFAULT_REPLICAS, HashRing
from repro.service.server import RequestServer

__all__ = [
    "BackendLink",
    "BackendLostError",
    "FleetRouter",
    "RouterStats",
    "spawn_backends",
]


class BackendLostError(ReproError):
    """A backend is unreachable (connect refused or repeated drops)."""


class _LinkDown(Exception):
    """Internal: the link's socket died with responses outstanding."""


@dataclass
class RouterStats:
    """Router-side counters (the ``router.*`` metrics namespace)."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    requests_shed: int = 0
    connections_shed: int = 0
    routed: int = 0
    replays: int = 0
    reconnects: int = 0
    backends_lost: int = 0
    reroutes: int = 0
    waves: int = 0
    wave_chunks: int = 0
    cut_syncs: int = 0
    cuts_synced: int = 0

    def as_dict(self) -> dict[str, int]:
        return {field.name: getattr(self, field.name) for field in fields(self)}


class BackendLink:
    """One multiplexed line-protocol connection to a backend.

    The router rewrites request ids to private ``link-N`` correlation
    keys (the client-facing id is reattached to the response by the
    router), so many concurrent routed requests share one socket and
    out-of-order backend responses resolve the right futures.

    A dead socket fails every outstanding future; :meth:`call` replays
    the request — every fleet operation is idempotent — on a fresh
    connection up to :data:`ATTEMPTS` times before declaring the
    backend lost.
    """

    ATTEMPTS = 3

    def __init__(self, spec: str, stats: RouterStats | None = None):
        host, _, port = spec.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError(f"backend spec {spec!r} is not HOST:PORT")
        self.spec = spec
        self.host = host
        self.port = int(port)
        self.stats = stats or RouterStats()
        self._counter = itertools.count(1)
        self._connect_lock: asyncio.Lock | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._connected_once = False

    async def call(self, request: dict) -> dict:
        """Send one request (id rewritten); return the decoded response.

        Raises :class:`BackendLostError` when the backend cannot be
        reached or drops the connection :data:`ATTEMPTS` times.
        """
        payload = dict(request)
        for attempt in range(self.ATTEMPTS):
            if attempt:
                self.stats.replays += 1
            payload["id"] = f"link-{next(self._counter)}"
            try:
                return await self._call_once(payload)
            except _LinkDown:
                continue
        raise BackendLostError(
            f"backend {self.spec} dropped the connection "
            f"{self.ATTEMPTS} times"
        )

    def detach(self) -> None:
        """Close the socket (loop context); pending futures fail over."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # -- internals -----------------------------------------------------------

    async def _ensure_connected(self) -> None:
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        async with self._connect_lock:
            if self._writer is not None:
                return
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError as exc:
                raise BackendLostError(
                    f"backend {self.spec} is unreachable: {exc}"
                ) from None
            self._writer = writer
            self._pending = {}
            if self._connected_once:
                self.stats.reconnects += 1
            self._connected_once = True
            asyncio.ensure_future(self._read_loop(reader, writer, self._pending))

    async def _read_loop(self, reader, writer, pending: dict) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    continue  # a torn line during backend death
                future = pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            if self._writer is writer:
                self._writer = None
            for future in pending.values():
                if not future.done():
                    future.set_exception(_LinkDown())
            pending.clear()

    async def _call_once(self, payload: dict) -> dict:
        await self._ensure_connected()
        writer = self._writer
        pending = self._pending
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        pending[payload["id"]] = future
        try:
            writer.write((protocol.encode(payload) + "\n").encode("utf-8"))
            await writer.drain()
        except (ConnectionError, OSError):
            pending.pop(payload["id"], None)
            if self._writer is writer:
                self._writer = None
            raise _LinkDown() from None
        return await future


class FleetRouter(RequestServer):
    """A line-protocol front end that shards requests across backends.

    ``backends`` are ``HOST:PORT`` specs of running ``repro serve``
    processes.  ``wave_chunk`` is the number of ``phis`` per fan-out
    chunk (the wire analogue of the worker pool's per-task support
    branch); ``shutdown_backends`` makes the router's own ``shutdown``
    propagate to the fleet (the ``--spawn`` mode owns its backends).
    """

    def __init__(
        self,
        backends: list[str] | tuple[str, ...],
        *,
        max_inflight: int = 256,
        max_connections: int = 64,
        wave_chunk: int = 4,
        replicas: int = DEFAULT_REPLICAS,
        shutdown_backends: bool = False,
        collector: StatsCollector | None = None,
    ):
        super().__init__(max_connections=max_connections)
        if not backends:
            raise ReproError("a fleet needs at least one backend")
        self.stats = RouterStats()
        self.collector = collector or StatsCollector()
        self.max_inflight = max_inflight
        self.wave_chunk = max(1, wave_chunk)
        self.shutdown_backends = shutdown_backends
        self.ring = HashRing(backends, replicas=replicas)
        self._links = {
            spec: BackendLink(spec, self.stats) for spec in self.ring.backends()
        }

    # -- admission (same messages as CheckingServer: shed bytes match) -------

    def _admit(self) -> None:
        if not self._accepting:
            raise OverloadedError(
                "server is draining for shutdown",
                retry_after=self.retry_hint(),
            )
        if self._inflight >= self.max_inflight:
            raise OverloadedError(
                f"server at capacity ({self.max_inflight} requests in flight)",
                retry_after=self.retry_hint(),
            )

    # -- request handling ----------------------------------------------------

    async def handle_request(self, line: str) -> dict:
        """Decode one request line; route it and reattach the client id."""
        self.stats.requests += 1
        request_id = None
        op = None
        started = time.monotonic()
        try:
            request = protocol.parse_request(line)
            request_id = request.get("id")
            op = request["op"]
            if op == "stats":
                response = protocol.ok_response(request, self.stats_payload(), None)
            elif op == "shutdown":
                response = protocol.ok_response(request, {"stopping": True}, None)
                self._begin_shutdown()
            else:
                self._admit()
                self._inflight += 1
                try:
                    response = await self._route(request)
                finally:
                    self._inflight -= 1
                if not response.get("ok", False):
                    self.stats.errors += 1
        except OverloadedError as exc:
            self.stats.requests_shed += 1
            response = protocol.error_response(request_id, exc)
        except Exception as exc:  # noqa: BLE001 - every request gets an answer
            self.stats.errors += 1
            response = protocol.error_response(request_id, exc)
        self.stats.responses += 1
        if op in protocol.SESSION_OPS:
            self.collector.observe_op(op, time.monotonic() - started)
        return response

    def _routing_key(self, request: dict) -> str:
        """The ring key: the spec fingerprint when computable.

        An unparseable inline spec routes by its raw text — *some*
        backend must answer, and any backend produces the canonical
        error bytes for it.
        """
        fingerprint = request.get("session")
        if isinstance(fingerprint, str) and fingerprint:
            return fingerprint
        dtd = request.get("dtd")
        if not isinstance(dtd, str):
            return ""
        try:
            return fingerprint_for(
                dtd,
                request.get("constraints", ""),
                root=request.get("root"),
            )
        except Exception:  # noqa: BLE001 - the backend owns the error answer
            return dtd

    async def _route(self, request: dict) -> dict:
        op = request["op"]
        key = self._routing_key(request)
        phis = request.get("phis")
        if (
            op == "implies_all"
            and isinstance(phis, list)
            and len(phis) > self.wave_chunk
            and len(self.ring) > 1
        ):
            return await self._fan_out(request, key)
        return await self._forward(request, key)

    async def _forward(self, request: dict, key: str) -> dict:
        """Route one request to the ring owner; reroute on backend loss."""
        payload = {k: v for k, v in request.items() if k != "id"}
        while True:
            backend = self.ring.owner(key)
            if backend is None:
                raise ReproError("no live backends left in the fleet")
            try:
                response = await self._links[backend].call(payload)
            except BackendLostError:
                self._lose_backend(backend)
                self.stats.reroutes += 1
                continue
            self.stats.routed += 1
            # The backend echoed the link's private id in first position;
            # reassigning the existing key keeps its position, so the
            # re-encoded line is byte-identical to a direct answer.
            response["id"] = request.get("id")
            return response

    # -- wave fan-out ----------------------------------------------------

    async def _fan_out(self, request: dict, key: str) -> dict:
        """Answer one multi-phi ``implies_all`` as waves across the fleet.

        Chunks of ``wave_chunk`` phis are dispatched concurrently, one
        wave of ``len(live)`` chunks at a time; between waves the
        backends' cut pools are merged over the wire, mirroring the
        in-process pool's wave-boundary cut merge.  Any chunk-level
        error triggers the authoritative fallback: the whole original
        batch is forwarded to the ring owner, whose answer is
        byte-identical to a single-backend serve.
        """
        phis = request["phis"]
        base = {k: v for k, v in request.items() if k not in ("id", "phis")}
        chunks = [
            phis[i : i + self.wave_chunk]
            for i in range(0, len(phis), self.wave_chunk)
        ]
        merged: list = []
        fingerprint = None
        cursor = 0
        while cursor < len(chunks):
            live = self.ring.backends()
            if len(live) < 2:
                # Fleet degraded to one (or zero) shards mid-batch:
                # the remaining chunks gain nothing from fan-out.
                return await self._forward(request, key)
            wave = chunks[cursor : cursor + len(live)]
            cursor += len(wave)
            calls = []
            for index, chunk in enumerate(wave):
                payload = dict(base)
                payload["phis"] = chunk
                calls.append(self._chunk_call(payload, live[index % len(live)], key))
            responses = await asyncio.gather(*calls)
            self.stats.waves += 1
            self.stats.wave_chunks += len(wave)
            for response in responses:
                if not response.get("ok", False):
                    # One authoritative answer for the whole batch keeps
                    # error payloads byte-identical (a deadline split
                    # across chunks is not the deadline the client set).
                    return await self._forward(request, key)
                if fingerprint is None:
                    fingerprint = response.get("service", {}).get("session")
                merged.extend(response["result"]["results"])
            if cursor < len(chunks):
                await self._sync_cuts(base)
        return {
            "id": request.get("id"),
            "ok": True,
            "result": {"results": merged},
            "service": {"session": fingerprint},
        }

    async def _chunk_call(self, payload: dict, backend: str, key: str) -> dict:
        """One chunk against its assigned backend, rerouting on loss."""
        while True:
            if backend not in self.ring:
                backend = self.ring.owner(key)
                if backend is None:
                    raise ReproError("no live backends left in the fleet")
            try:
                response = await self._links[backend].call(payload)
            except BackendLostError:
                self._lose_backend(backend)
                self.stats.reroutes += 1
                continue
            self.stats.routed += 1
            return response

    async def _sync_cuts(self, base: dict) -> None:
        """Merge the fleet's cut pools at a wave boundary (best effort).

        Exports from every live backend are deduplicated (portable
        packed form) and re-adopted everywhere, so cuts learned by one
        shard prune the next wave's work on all of them — the wire
        analogue of ``_CutPool.merge`` at the in-process pool's wave
        edges.  Sync failures are absorbed: cuts are an accelerator,
        never a correctness dependency.
        """
        spec = {
            k: base[k] for k in ("session", "dtd", "constraints", "root") if k in base
        }
        live = self.ring.backends()
        if len(live) < 2:
            return
        self.stats.cut_syncs += 1
        exports = await asyncio.gather(
            *(
                self._links[backend].call({**spec, "op": "export_cuts"})
                for backend in live
            ),
            return_exceptions=True,
        )
        packed: list = []
        seen: set[str] = set()
        for response in exports:
            if isinstance(response, BaseException) or not response.get("ok", False):
                continue
            for record in response["result"]["cuts"]:
                token = json.dumps(record, sort_keys=True)
                if token not in seen:
                    seen.add(token)
                    packed.append(record)
        if not packed:
            return
        adopts = await asyncio.gather(
            *(
                self._links[backend].call(
                    {**spec, "op": "adopt_cuts", "cuts": packed}
                )
                for backend in live
            ),
            return_exceptions=True,
        )
        for response in adopts:
            if isinstance(response, BaseException) or not response.get("ok", False):
                continue
            self.stats.cuts_synced += response["result"]["adopted"]

    def _lose_backend(self, backend: str) -> None:
        if backend in self.ring:
            self.ring.remove(backend)
            self.stats.backends_lost += 1

    # -- introspection -------------------------------------------------------

    def stats_payload(self) -> dict:
        """The router's ``stats`` op: its own counters, never proxied."""
        router = self.stats.as_dict()
        router["backends"] = len(self.ring)
        router["inflight"] = self._inflight
        router["connections"] = self._connections
        router["accepting"] = self._accepting
        return {
            "router": router,
            "backends": self.ring.backends(),
            "counters": self.metrics_snapshot(),
        }

    def metrics_snapshot(self) -> dict:
        """The namespaced flat counters a ``/metrics`` scrape renders."""
        snapshot = dict(self.collector.counters())
        for key, value in self.stats.as_dict().items():
            snapshot[f"router.{key}"] = value
        snapshot["router.backends"] = len(self.ring)
        snapshot["router.inflight"] = self._inflight
        snapshot["router.accepting"] = int(self._accepting)
        return snapshot

    def render_metrics(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        return self.collector.render(self.metrics_snapshot())

    # -- lifecycle hooks -----------------------------------------------------

    async def _flush_on_drain(self) -> None:
        if not self.shutdown_backends:
            return
        for backend in self.ring.backends():
            try:
                await self._links[backend].call({"op": "shutdown"})
            except ReproError:
                pass  # already gone; the drain owes it nothing

    def _on_serving_stop(self) -> None:
        for link in self._links.values():
            link.detach()


# -- spawning a local fleet (`repro fleet --spawn N`, tests, benchmarks) -----

_ANNOUNCE = re.compile(r"listening on ([0-9.]+):([0-9]+)")


def _scrape_address(proc: subprocess.Popen, timeout: float) -> str:
    """Read a backend's announced line address; kill it on timeout."""
    watchdog = threading.Timer(timeout, proc.kill)
    watchdog.start()
    try:
        while True:
            line = proc.stdout.readline()
            if not line:
                raise ReproError(
                    "backend exited before announcing its port "
                    f"(exit code {proc.poll()})"
                )
            match = _ANNOUNCE.search(line)
            if match:
                return f"{match.group(1)}:{match.group(2)}"
    finally:
        watchdog.cancel()


def spawn_backends(
    count: int,
    *,
    host: str = "127.0.0.1",
    mode: str = "replay",
    extra_args: tuple[str, ...] = (),
    env: dict[str, str] | None = None,
    startup_timeout: float = 30.0,
) -> tuple[list[subprocess.Popen], list[str]]:
    """Start ``count`` ``repro serve`` subprocesses on ephemeral ports.

    Returns ``(processes, specs)`` where each spec is the announced
    ``HOST:PORT``.  ``env`` entries override the inherited environment
    (the chaos tests arm ``REPRO_FAULTS`` on one backend this way).
    The caller owns the processes; on a scrape failure every spawned
    process is killed before the error propagates.
    """
    if count < 1:
        raise ReproError("a fleet needs at least one backend")
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    base_env = dict(os.environ)
    existing = base_env.get("PYTHONPATH")
    base_env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    if env:
        base_env.update(env)
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        "0",
        "--mode",
        mode,
        *extra_args,
    ]
    processes: list[subprocess.Popen] = []
    specs: list[str] = []
    try:
        for _ in range(count):
            processes.append(
                subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    env=base_env,
                    text=True,
                )
            )
        for proc in processes:
            specs.append(_scrape_address(proc, startup_timeout))
    except Exception:
        for proc in processes:
            proc.kill()
        raise
    return processes, specs
