"""Wire protocol of ``repro serve``: line-delimited JSON requests.

One request per line, one response line per request.  A request names an
operation and a specification — either inline (``dtd`` text plus
optional ``constraints`` text and ``root``) or by the ``session``
fingerprint of a previously opened session::

    {"id": 1, "op": "open", "dtd": "<!ELEMENT r (a*)>...",
     "constraints": "a.k -> a"}
    {"id": 2, "op": "implies", "session": "<fingerprint>",
     "phi": "a.k -> a"}

Responses echo the ``id`` and wrap either the operation's payload or an
error::

    {"id": 2, "ok": true, "result": {"implied": true, ...},
     "service": {"session": "<fingerprint>"}}
    {"id": 7, "ok": false, "error": {"type": "ParseError", "message": ...}}

Operations: ``open`` (admit/refresh a session, returns its identity
card), ``check``, ``implies`` (one ``phi``), ``implies_all`` (a ``phis``
list, answered as one coalesced batch), ``diagnose``, ``repair`` (a
minimum-weight consistency-restoring edit; optional ``core_method``,
``rebuild`` and a ``weights`` object mapping action family to a
positive integer cost), ``validate`` (a
``document``), ``export_cuts`` / ``adopt_cuts`` (the fleet's
wave-boundary cut sync: portable connectivity-cut records out of and
into the session pool), ``stats`` (registry + server counters) and
``shutdown``.
Responses may arrive out of request order when requests from one
connection overlap — the ``id`` is the correlation key.

Any session operation may carry ``"deadline": <seconds>`` — a
wall-clock budget for that request.  Work that outlives its budget is
cancelled cooperatively and answered with error type
``budget_exceeded`` (the server may also apply a default deadline).
Under overload the server sheds rather than queueing without bound:
shed requests are answered with error type ``overloaded`` plus a
``retry_after`` hint in seconds — a load signal, not a verdict.
"""

from __future__ import annotations

import json

from repro.errors import ReproError
from repro.service.registry import SessionRegistry
from repro.service.session import SpecSession, _error_payload

#: Operations that resolve a session before running.
SESSION_OPS = frozenset(
    {
        "open",
        "check",
        "implies",
        "implies_all",
        "diagnose",
        "repair",
        "validate",
        "export_cuts",
        "adopt_cuts",
    }
)

#: Every operation the server answers.
ALL_OPS = SESSION_OPS | {"stats", "shutdown"}


class ProtocolError(ReproError):
    """A request the server cannot even dispatch (bad JSON, bad shape)."""


def parse_request(line: str) -> dict:
    """Decode one request line; raise :class:`ProtocolError` when unusable."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if op not in ALL_OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {sorted(ALL_OPS)})")
    return request


def resolve_session(registry: SessionRegistry, request: dict) -> SpecSession:
    """The session a request addresses — by fingerprint or inline spec."""
    fingerprint = request.get("session")
    if fingerprint is not None:
        session = registry.get(fingerprint)
        if session is None:
            raise ProtocolError(
                f"unknown session {fingerprint!r} (it may have been "
                "evicted; re-open it by sending the spec inline)"
            )
        return session
    dtd = request.get("dtd")
    if dtd is None:
        raise ProtocolError("request needs either 'session' or inline 'dtd'")
    return registry.session_for(
        dtd, request.get("constraints", ""), root=request.get("root")
    )


def perform(session: SpecSession, request: dict) -> dict:
    """Run one session operation; returns the result payload."""
    op = request["op"]
    config = request.get("config")
    if op == "open":
        return session.describe()
    if op == "check":
        return session.check(config)
    if op == "implies":
        if "phi" not in request:
            raise ProtocolError("op 'implies' needs a 'phi'")
        return session.implies(request["phi"], config)
    if op == "implies_all":
        phis = request.get("phis")
        if not isinstance(phis, list):
            raise ProtocolError("op 'implies_all' needs a 'phis' list")
        return {"results": session.implies_batch(phis, config)}
    if op == "diagnose":
        return session.diagnose(
            config,
            rebuild=bool(request.get("rebuild", False)),
            mus_method=request.get("mus_method", "quickxplain"),
        )
    if op == "repair":
        weights = request.get("weights")
        if weights is not None and not isinstance(weights, dict):
            raise ProtocolError("op 'repair' takes 'weights' as an object")
        return session.repair(
            config,
            core_method=request.get("core_method", "quickxplain"),
            rebuild=bool(request.get("rebuild", False)),
            weights=weights,
        )
    if op == "validate":
        if "document" not in request:
            raise ProtocolError("op 'validate' needs a 'document'")
        return session.validate(request["document"])
    if op == "export_cuts":
        return session.export_cuts_wire()
    if op == "adopt_cuts":
        packed = request.get("cuts")
        if not isinstance(packed, list):
            raise ProtocolError("op 'adopt_cuts' needs a 'cuts' list")
        return session.adopt_cuts_wire(packed)
    raise ProtocolError(f"op {op!r} is not a session operation")


def ok_response(request: dict, result: dict, session: SpecSession | None) -> dict:
    """The success envelope for one request."""
    response = {"id": request.get("id"), "ok": True, "result": result}
    if session is not None:
        response["service"] = {"session": session.fingerprint}
    return response


def error_response(request_id, exc: Exception) -> dict:
    """The failure envelope; the body matches batch-inline errors."""
    return {"id": request_id, "ok": False, **_error_payload(exc)}


def encode(response: dict) -> str:
    """One response as a single line (no embedded newlines)."""
    return json.dumps(response, separators=(", ", ": "))
