"""Deterministic fault injection for the service's failure paths.

Every hardening claim of DESIGN.md section 9 — worker-crash recovery,
deadline cancellation, load shedding, snapshot resilience — needs its
failure to be *triggerable on demand*, or the recovery code rots
untested.  This registry names the fault points and arms them from one
environment variable, so the chaos suite (and an operator reproducing
an incident) can inject exactly one failure, deterministically::

    REPRO_FAULTS="worker.kill*1"          # kill one worker, once
    REPRO_FAULTS="drain.delay=0.2"        # every drain sleeps 200ms
    REPRO_FAULTS="conn.drop*2,solve.delay=0.01"

Grammar: comma-separated ``point``, ``point*N`` (fire at most N times),
``point=value`` and ``point=value*N`` (a float payload, e.g. a delay in
seconds).  Fault points currently wired:

========================  ====================================================
``worker.kill``           a branch worker ``os._exit``\\ s at task start
                          (:func:`repro.ilp.condsys._branch_task`)
``solve.delay``           the DFS sleeps ``value`` seconds per node (used to
                          force deadline expiry mid-solve)
``drain.delay``           the server's session drainer sleeps ``value``
                          seconds before running a batch
``conn.drop``             the TCP handler closes the connection instead of
                          answering a request
``persist.corrupt``       the snapshot writer corrupts the file it just
                          wrote atomically (load must cold-start cleanly)
========================  ====================================================

Armed counts must survive process boundaries: a killed worker's
*respawned* replacement must not re-fire a ``*1`` fault, even though it
is a fresh fork.  Limited faults therefore consume *token files* from a
shared directory — ``os.unlink`` is atomic, so exactly one process wins
each token, whichever side of a fork it is on.  The directory travels in
``REPRO_FAULTS_DIR`` so spawned subprocesses share it too.

When ``REPRO_FAULTS`` is unset every probe is a no-op costing one
``None`` check — the production hot path pays nothing.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass

__all__ = [
    "FaultSpec",
    "FaultRegistry",
    "install",
    "reset",
    "fault_active",
    "fault_seconds",
]


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault point: fire ``times`` times (None = unlimited),
    optionally carrying a float ``value`` (e.g. a delay in seconds)."""

    point: str
    times: int | None = None
    value: float | None = None


def parse_faults(text: str) -> dict[str, FaultSpec]:
    """Parse the ``REPRO_FAULTS`` grammar; raise ``ValueError`` on junk.

    >>> parse_faults("worker.kill*1,drain.delay=0.25")
    ... # doctest: +NORMALIZE_WHITESPACE
    {'worker.kill': FaultSpec(point='worker.kill', times=1, value=None),
     'drain.delay': FaultSpec(point='drain.delay', times=None, value=0.25)}
    """
    specs: dict[str, FaultSpec] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        times: int | None = None
        value: float | None = None
        if "*" in entry:
            entry, times_text = entry.rsplit("*", 1)
            times = int(times_text)
            if times < 0:
                raise ValueError(f"fault count cannot be negative: {times}")
        if "=" in entry:
            entry, value_text = entry.split("=", 1)
            value = float(value_text)
        point = entry.strip()
        if not point:
            raise ValueError("fault spec names no point")
        specs[point] = FaultSpec(point=point, times=times, value=value)
    return specs


class FaultRegistry:
    """The armed fault points plus their cross-process token store."""

    def __init__(
        self,
        specs: dict[str, FaultSpec],
        token_dir: str | None = None,
        create_tokens: bool = False,
    ):
        self.specs = specs
        self.token_dir = token_dir
        needs_tokens = any(spec.times is not None for spec in specs.values())
        if needs_tokens and self.token_dir is None:
            self.token_dir = tempfile.mkdtemp(prefix="repro-faults-")
            create_tokens = True
        if create_tokens and self.token_dir is not None:
            os.makedirs(self.token_dir, exist_ok=True)
            for spec in specs.values():
                if spec.times is None:
                    continue
                for index in range(spec.times):
                    token = os.path.join(self.token_dir, f"{spec.point}.{index}")
                    with open(token, "w"):
                        pass

    def fire(self, point: str) -> FaultSpec | None:
        """Consume one firing of ``point``; ``None`` when it stays quiet.

        Unlimited faults always fire; limited faults race for a token
        file (atomic ``unlink``), so N armed firings fire exactly N
        times across every process sharing the token directory.
        """
        spec = self.specs.get(point)
        if spec is None:
            return None
        if spec.times is None:
            return spec
        if self.token_dir is None:
            return None
        for index in range(spec.times):
            try:
                os.unlink(os.path.join(self.token_dir, f"{point}.{index}"))
            except FileNotFoundError:
                continue
            return spec
        return None


#: Process-wide registry.  ``None`` with ``_INITIALIZED`` True means no
#: faults are armed; forked children inherit whatever the parent held.
_REGISTRY: FaultRegistry | None = None
_INITIALIZED = False


def _current() -> FaultRegistry | None:
    global _REGISTRY, _INITIALIZED
    if not _INITIALIZED:
        _INITIALIZED = True
        text = os.environ.get("REPRO_FAULTS", "")
        if text:
            token_dir = os.environ.get("REPRO_FAULTS_DIR")
            _REGISTRY = FaultRegistry(
                parse_faults(text),
                token_dir=token_dir,
                create_tokens=token_dir is None,
            )
            if _REGISTRY.token_dir is not None:
                # Export the store so spawned children share the counts.
                os.environ["REPRO_FAULTS_DIR"] = _REGISTRY.token_dir
    return _REGISTRY


def install(text: str, token_dir: str | None = None) -> FaultRegistry:
    """Arm fault points for this process tree (the chaos suite's entry).

    Also exports ``REPRO_FAULTS``/``REPRO_FAULTS_DIR`` so forked workers
    and spawned subprocesses observe the same armed set and share token
    counts.  Call :func:`reset` when done.
    """
    global _REGISTRY, _INITIALIZED
    reset()
    registry = FaultRegistry(
        parse_faults(text), token_dir=token_dir, create_tokens=True
    )
    os.environ["REPRO_FAULTS"] = text
    if registry.token_dir is not None:
        os.environ["REPRO_FAULTS_DIR"] = registry.token_dir
    _REGISTRY = registry
    _INITIALIZED = True
    return registry


def reset() -> None:
    """Disarm every fault point and drop the token store."""
    global _REGISTRY, _INITIALIZED
    if _REGISTRY is not None and _REGISTRY.token_dir is not None:
        shutil.rmtree(_REGISTRY.token_dir, ignore_errors=True)
    _REGISTRY = None
    _INITIALIZED = True
    os.environ.pop("REPRO_FAULTS", None)
    os.environ.pop("REPRO_FAULTS_DIR", None)


def fault_active(point: str) -> bool:
    """Should ``point`` fire now?  Consumes one armed firing.

    >>> fault_active("worker.kill")   # nothing armed: never fires
    False
    """
    registry = _current()
    return registry is not None and registry.fire(point) is not None


def fault_seconds(point: str) -> float | None:
    """The float payload of ``point`` if it fires now, else ``None``."""
    registry = _current()
    if registry is None:
        return None
    spec = registry.fire(point)
    return None if spec is None else spec.value
