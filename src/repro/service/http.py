"""The HTTP/JSON front end: ``repro serve --http PORT`` (stdlib-only).

``POST /v1/{check,implies,implies_all,validate,diagnose,open,stats}``
maps onto the *same* dispatch as the line protocol —
:meth:`~repro.service.server.CheckingServer.handle_request` — so every
service property carries over by construction rather than by parallel
implementation: the coalesced ``implies_all`` batching (concurrent HTTP
``implies`` land in the same per-session queue the line protocol
drains), admission control (shed requests answer ``429`` with a
``Retry-After`` header from the same ``retry_after`` hint), deadlines
(``504`` for ``budget_exceeded``), structured errors (``400``), and
**byte-identical verdict payloads**: the response body *is* the line
protocol's encoded response line (``tests/test_service_differential.py``
compares the raw bytes).

``GET /metrics`` renders the collector's Prometheus text exposition
(DESIGN.md section 10); :class:`HTTPFrontend` with ``metrics_only=True``
backs ``repro serve --metrics-port``, a scrape-only listener that can
bind separately from the serving surface.

The parser is a deliberate HTTP/1.1 subset for the same trust model as
the rest of the service (a localhost tool, not an internet edge):
``Content-Length`` bodies only (no chunked encoding), keep-alive with
sequential request handling per connection, no TLS.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading

from repro.service import protocol
from repro.service.faults import fault_active
from repro.service.server import CheckingServer, RequestServer

#: Largest accepted request body; a localhost guard, not a DoS defence.
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


def status_for(response: dict) -> int:
    """The HTTP status carrying a line-protocol response envelope."""
    if response.get("ok"):
        return 200
    error = response.get("error") or {}
    return {"overloaded": 429, "budget_exceeded": 504}.get(error.get("type"), 400)


class _BadRequest(Exception):
    """An HTTP-layer refusal (never reaches the session API)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class HTTPFrontend:
    """One HTTP listener over a :class:`RequestServer`.

    Several front ends may serve the same server on one event loop (the
    CLI runs ``--port``, ``--http`` and ``--metrics-port`` together);
    they share the server's stop event, state restore and autosave task
    through ``_serving_setup``/``_serving_teardown``.  The server may be
    a single-process :class:`CheckingServer` or the fleet's shard router
    — the front end only uses the shared transport surface.
    """

    def __init__(self, server: RequestServer, metrics_only: bool = False):
        self.server = server
        #: ``True``: expose only ``GET /metrics`` (the ``--metrics-port``
        #: listener); ``/v1`` requests answer 404 and the connection cap
        #: does not apply — a scrape must work while serving is saturated.
        self.metrics_only = metrics_only
        self.address: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._thread_ready = threading.Event()

    # -- serving ------------------------------------------------------------

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Serve HTTP until the owning server stops (``shutdown`` op,
        :meth:`close`, or a line-protocol front end stopping the loop)."""
        stop = self.server._serving_setup()
        listener = await asyncio.start_server(self._handle_connection, host, port)
        sockname = listener.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        try:
            async with listener:
                await stop.wait()
        finally:
            self.server._serving_teardown()

    async def _handle_connection(self, reader, writer) -> None:
        server = self.server
        if not self.metrics_only and server._connections >= server.max_connections:
            server.stats.connections_shed += 1
            shed = protocol.error_response(
                None,
                _connection_shed_error(server),
            )
            await self._write_response(
                writer, 429, shed, keep_alive=False, retry_after=server.retry_hint()
            )
            writer.close()
            return
        if not self.metrics_only:
            server._connections += 1
        try:
            while True:
                try:
                    method, target, headers = await _read_head(reader)
                    if method is None:
                        break
                    body = await _read_body(reader, headers)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                except _BadRequest as exc:
                    # A framing error leaves the stream position unknown:
                    # answer and close rather than misparse what follows.
                    await self._answer_refusal(writer, exc, keep_alive=False)
                    break
                keep_alive = headers.get("connection", "").lower() != "close"
                served = await self._dispatch(
                    writer, method, target, body, keep_alive
                )
                if not served or not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutdown cancels connection handlers mid-read; the
            # deterministic drain already flushed in-flight responses.
            pass
        finally:
            if not self.metrics_only:
                server._connections -= 1
            writer.close()

    async def _dispatch(
        self, writer, method: str, target: str, body: bytes, keep_alive: bool
    ) -> bool:
        """Route one request; ``False`` means the connection must close."""
        server = self.server
        path = target.split("?", 1)[0]
        if path == "/metrics":
            if method not in ("GET", "HEAD"):
                await self._answer_refusal(
                    writer,
                    _BadRequest(405, "use GET for /metrics"),
                    keep_alive=keep_alive,
                )
                return True
            text = server.render_metrics()
            await _write_raw(
                writer,
                200,
                text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
                keep_alive=keep_alive,
                head_only=method == "HEAD",
            )
            return True
        if self.metrics_only or not path.startswith("/v1/"):
            await self._answer_refusal(
                writer, _BadRequest(404, f"no route for {path}"), keep_alive=keep_alive
            )
            return True
        op = path[len("/v1/") :]
        if op not in protocol.ALL_OPS:
            await self._answer_refusal(
                writer, _BadRequest(404, f"unknown op {op!r}"), keep_alive=keep_alive
            )
            return True
        if method != "POST":
            await self._answer_refusal(
                writer,
                _BadRequest(405, f"use POST for /v1/{op}"),
                keep_alive=keep_alive,
            )
            return True
        try:
            request = _request_from_body(op, body)
        except _BadRequest as exc:
            await self._answer_refusal(writer, exc, keep_alive=keep_alive)
            return True
        # The line-protocol dispatch point: byte-identity of the verdict
        # payload follows from sharing it, and registering the answer
        # task keeps the deterministic shutdown drain exhaustive across
        # transports.
        task = asyncio.ensure_future(
            self._answer(writer, json.dumps(request), keep_alive)
        )
        server._register_answer(task)
        return await task

    async def _answer(self, writer, line: str, keep_alive: bool) -> bool:
        response = await self.server.handle_request(line)
        if fault_active("conn.drop"):
            writer.close()
            return False
        retry_after = None
        if not response.get("ok"):
            retry_after = (response.get("error") or {}).get("retry_after")
        await self._write_response(
            writer,
            status_for(response),
            response,
            keep_alive=keep_alive,
            retry_after=retry_after,
        )
        return True

    async def _answer_refusal(
        self, writer, refusal: _BadRequest, keep_alive: bool
    ) -> None:
        """An HTTP-layer error, still in the structured error envelope."""
        body = {
            "id": None,
            "ok": False,
            "error": {"type": "protocol", "message": str(refusal)},
        }
        await self._write_response(
            writer, refusal.status, body, keep_alive=keep_alive
        )

    async def _write_response(
        self,
        writer,
        status: int,
        response: dict,
        keep_alive: bool,
        retry_after: float | None = None,
    ) -> None:
        payload = (protocol.encode(response) + "\n").encode("utf-8")
        extra = []
        if retry_after is not None:
            extra.append(f"Retry-After: {max(1, math.ceil(retry_after))}")
        await _write_raw(
            writer,
            status,
            payload,
            content_type="application/json",
            keep_alive=keep_alive,
            extra_headers=extra,
        )

    # -- background lifecycle (tests, benchmarks, the README quickstart) ----

    def start_background(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        line_port: int | None = None,
    ) -> tuple[str, int]:
        """Run this front end on a daemon thread; returns its address.

        With ``line_port`` set (0 = ephemeral), the owning server's line
        protocol serves on the same loop — the differential tests drive
        both transports against one live server this way, and
        ``server.address`` then carries the line-protocol address.

        >>> from repro.service.registry import SessionRegistry
        >>> front = HTTPFrontend(CheckingServer(SessionRegistry()))
        >>> host, port = front.start_background()
        >>> port > 0
        True
        >>> front.close()
        """
        if self._thread is not None:
            raise RuntimeError("HTTP front end is already running")
        server = self.server

        def run() -> None:
            async def main() -> None:
                server._thread_loop = asyncio.get_running_loop()
                transports = [asyncio.ensure_future(self.serve(host, port))]
                if line_port is not None:
                    transports.append(
                        asyncio.ensure_future(server.serve_tcp(host, line_port))
                    )

                def ready() -> bool:
                    if self.address is None:
                        return False
                    return line_port is None or server.address is not None

                while not ready() and not any(t.done() for t in transports):
                    await asyncio.sleep(0.001)
                self._thread_ready.set()
                await asyncio.gather(*transports)

            try:
                asyncio.run(main())
            finally:
                self._thread_ready.set()

        self._thread = threading.Thread(target=run, name="repro-http", daemon=True)
        self._thread.start()
        self._thread_ready.wait(timeout=10.0)
        if self.address is None:
            raise RuntimeError("HTTP front end failed to start")
        return self.address

    def close(self) -> None:
        """Stop a background front end through the owning server's
        deterministic drain, then release its resources."""
        server = self.server
        if self._thread is not None and server._thread_loop is not None:
            try:
                server._thread_loop.call_soon_threadsafe(server._begin_shutdown)
            except RuntimeError:
                pass  # loop already closed
            self._thread.join(timeout=10.0)
            self._thread = None
            server._thread_loop = None
        server._release_resources()


def _connection_shed_error(server: RequestServer):
    from repro.errors import OverloadedError

    return OverloadedError(
        f"connection limit reached ({server.max_connections})",
        retry_after=server.retry_hint(),
    )


def _request_from_body(op: str, body: bytes) -> dict:
    """The line-protocol request dict for one ``POST /v1/{op}`` body."""
    if not body:
        payload: object = {}
    else:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(400, f"request body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise _BadRequest(400, "request body must be a JSON object")
    if payload.get("op", op) != op:
        raise _BadRequest(
            400, f"body op {payload['op']!r} contradicts the /v1/{op} path"
        )
    return {**payload, "op": op}


async def _read_head(reader):
    """Parse one request head; ``(None, None, None)`` on a clean EOF."""
    line = await reader.readline()
    if not line:
        return None, None, None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _BadRequest(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if not raw:
            return None, None, None
        if raw in (b"\r\n", b"\n"):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


async def _read_body(reader, headers: dict[str, str]) -> bytes:
    if "transfer-encoding" in headers:
        raise _BadRequest(400, "chunked bodies are not supported; send Content-Length")
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise _BadRequest(400, f"bad Content-Length {raw_length!r}") from None
    if length < 0:
        raise _BadRequest(400, "Content-Length cannot be negative")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    if length == 0:
        return b""
    return await reader.readexactly(length)


async def _write_raw(
    writer,
    status: int,
    payload: bytes,
    content_type: str,
    keep_alive: bool,
    extra_headers: list[str] | None = None,
    head_only: bool = False,
) -> None:
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(extra_headers or [])
    blob = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
    if not head_only:
        blob += payload
    try:
        writer.write(blob)
        await writer.drain()
    except (ConnectionError, OSError):
        pass  # client went away; the response has nowhere to go
