"""The asyncio front end: ``repro serve`` (DESIGN.md sections 8 and 9).

Line-delimited JSON requests arrive over stdio or a localhost TCP
socket; each is dispatched against the shared
:class:`~repro.service.registry.SessionRegistry`.  Solver work runs in a
small thread pool so the event loop stays responsive, under two
scheduling rules:

* **per-session serialization** — every session has at most one
  operation in flight at a time (a single drainer task per session
  feeds the executor), so single-owner workspace state never races;
* **batch coalescing** — while a session is busy, newly arrived
  ``implies`` requests with the same config (and deadline) pile up in
  its queue; the drainer pops them *together* and answers them with one
  ``implies_batch`` call (which validates once, shares the encoding
  block, and fans across the PR-4 worker pool when ``jobs > 1``).
  ``batches_coalesced`` counts multi-request batches and
  ``batch_width`` the widest one.  Batch width adapts to observed
  drain latency (the AutoThrottle shape): when batches take longer
  than ``batch_target_latency`` per drain, the width limit shrinks
  toward keeping each drain responsive, and grows back when drains are
  fast — so a slow spec cannot turn coalescing into head-of-line
  blocking.

Production hardening (DESIGN.md section 9):

* **admission control** — a global in-flight cap and bounded
  per-session queues; over-limit requests are answered immediately
  with a structured ``overloaded`` error carrying a ``retry_after``
  hint instead of queueing without bound, and a connection cap sheds
  over-limit TCP connects the same way;
* **deadlines** — a request may carry ``deadline`` seconds (or inherit
  the server default); expired work answers ``budget_exceeded``
  through the solver's cooperative cancellation (:mod:`repro.budget`)
  instead of wedging the drainer, and queued requests whose deadline
  passed are answered without solving at all;
* **deterministic shutdown** — ``shutdown`` stops admitting, waits for
  every in-flight response to be written, snapshots sessions (when a
  state file is configured), then stops: no grace-period timers;
* **crash-safe persistence** — with ``state_file`` set, sessions are
  restored on start and snapshotted on shutdown (plus every
  ``autosave_interval`` seconds); see :mod:`repro.service.persist`.

Responses may complete out of request order across a connection; the
echoed ``id`` is the correlation key.  ``shutdown`` stops the server —
the trust model is a localhost/stdio tool, not an internet service.
"""

from __future__ import annotations

import asyncio
import copy
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.budget import Deadline, deadline_scope
from repro.errors import BudgetExceededError, OverloadedError
from repro.ilp.condsys import effective_parallelism
from repro.service import persist, protocol
from repro.service.faults import fault_active, fault_seconds
from repro.service.metrics import StatsCollector
from repro.service.registry import SessionRegistry
from repro.service.session import SpecSession


@dataclass
class ServerStats:
    """Front-end counters (the solver's own counters ride on responses)."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    batches: int = 0
    batches_coalesced: int = 0
    batch_width: int = 0
    batch_width_sum: int = 0
    requests_shed: int = 0
    connections_shed: int = 0
    deadline_expired: int = 0
    sessions_restored: int = 0
    snapshots_saved: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "batches": self.batches,
            "batches_coalesced": self.batches_coalesced,
            "batch_width": self.batch_width,
            "batch_width_sum": self.batch_width_sum,
            "requests_shed": self.requests_shed,
            "connections_shed": self.connections_shed,
            "deadline_expired": self.deadline_expired,
            "sessions_restored": self.sessions_restored,
            "snapshots_saved": self.snapshots_saved,
        }


class _SessionQueue:
    """Pending operations for one session, drained one batch at a time.

    The queue is bounded (``server.queue_depth``): a submit against a
    full queue sheds with :class:`~repro.errors.OverloadedError` rather
    than queueing without bound — the per-session half of admission
    control (the global half is the server's in-flight cap).
    """

    def __init__(self, server: "CheckingServer", session: SpecSession):
        self.server = server
        self.session = session
        self.pending: deque = deque()
        self.draining = False

    def submit(self, request: dict) -> "asyncio.Future":
        if len(self.pending) >= self.server.queue_depth:
            raise OverloadedError(
                f"session queue full ({self.server.queue_depth} pending)",
                retry_after=self.server.retry_hint(),
            )
        future = asyncio.get_running_loop().create_future()
        self.pending.append((request, future))
        if not self.draining:
            self.draining = True
            asyncio.get_running_loop().create_task(self._drain())
        return future

    def _take_batch(self) -> list:
        """The next unit of work: a coalesced ``implies`` run or one op.

        When the head is an ``implies``, every pending ``implies`` with
        the same config *and* deadline joins it — up to the adaptive
        width limit — (requests are independent, so pulling them
        forward past other queued ops only changes completion order,
        which the protocol does not promise).
        """
        head, head_future = self.pending.popleft()
        if head.get("op") != "implies":
            return [(head, head_future)]
        batch = [(head, head_future)]
        config = head.get("config")
        budget = head.get("deadline")
        limit = self.server.batch_limit()
        rest = deque()
        while self.pending:
            request, future = self.pending.popleft()
            if (
                len(batch) < limit
                and request.get("op") == "implies"
                and request.get("config") == config
                and request.get("deadline") == budget
            ):
                batch.append((request, future))
            else:
                rest.append((request, future))
        self.pending = rest
        return batch

    def _run_one(self, request: dict, deadline: Deadline | None) -> dict:
        with deadline_scope(deadline):
            return protocol.perform(self.session, request)

    def _run_batch(
        self, phis: list, config: dict | None, deadline: Deadline | None
    ) -> list[dict]:
        with deadline_scope(deadline):
            return self.session.implies_batch(phis, config)

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while self.pending:
                delay = fault_seconds("drain.delay")
                if delay:
                    await asyncio.sleep(delay)
                batch = self._take_batch()
                # A deadline that expired while queued is answered
                # without solving: the client already stopped waiting,
                # and the drainer owes its time to requests that can
                # still make their budgets.
                live = []
                for request, future in batch:
                    deadline = request.get("_deadline")
                    if deadline is not None and deadline.expired():
                        if not future.done():
                            future.set_exception(deadline.exceeded())
                    else:
                        live.append((request, future))
                batch = live
                if not batch:
                    continue
                stats = self.server.stats
                stats.batches += 1
                if len(batch) > 1:
                    stats.batches_coalesced += 1
                stats.batch_width = max(stats.batch_width, len(batch))
                stats.batch_width_sum += len(batch)
                deadline = min(
                    (
                        request["_deadline"]
                        for request, _ in batch
                        if request.get("_deadline") is not None
                    ),
                    key=lambda d: d.expires_at,
                    default=None,
                )
                started = time.monotonic()
                try:
                    if len(batch) > 1:
                        phis = [request["phi"] for request, _ in batch]
                        config = batch[0][0].get("config")
                        payloads = await loop.run_in_executor(
                            self.server.executor,
                            lambda: self._run_batch(phis, config, deadline),
                        )
                    else:
                        request = batch[0][0]
                        payload = await loop.run_in_executor(
                            self.server.executor,
                            lambda: self._run_one(request, deadline),
                        )
                        payloads = [payload]
                except Exception as exc:  # noqa: BLE001 - per-request delivery
                    for _, future in batch:
                        if not future.done():
                            future.set_exception(_copy_exception(exc))
                else:
                    for (_, future), payload in zip(batch, payloads):
                        if not future.done():
                            future.set_result(payload)
                self.server.observe_drain(time.monotonic() - started, len(batch))
        finally:
            self.draining = False
            if not self.pending:
                self.server._queues.pop(self.session.fingerprint, None)


def _copy_exception(exc: Exception) -> Exception:
    """A per-future clone (one exception object must not be shared by
    several futures: tracebacks would chain confusingly)."""
    try:
        return type(exc)(str(exc))
    except Exception:  # noqa: BLE001 - exotic signature; shallow-copy it
        try:
            clone = copy.copy(exc)
            clone.__traceback__ = None
            return clone
        except Exception:  # noqa: BLE001 - uncopyable; reuse the original
            return exc


class RequestServer:
    """Transport machinery shared by every line-protocol front end.

    One subclass is the single-process :class:`CheckingServer`; the
    other is the fleet's shard router
    (:class:`~repro.service.fleet.FleetRouter`).  The base owns what a
    front end *is* — a localhost TCP listener and/or a stdio pump
    feeding :meth:`handle_request`, a connection cap that sheds with a
    structured ``overloaded`` answer, the deterministic
    drain-then-stop shutdown, and the background-thread lifecycle the
    tests and the README quickstarts use — while subclasses supply what
    a request *means*.

    Subclass surface:

    * :meth:`handle_request` (required) — answer one request line;
    * :meth:`render_metrics` (optional) — the ``GET /metrics`` body;
    * ``self.stats`` (required) — any object with a
      ``connections_shed`` counter attribute;
    * the lifecycle hooks ``_on_serving_start`` / ``_on_serving_stop``
      (first transport up, last transport down), ``_flush_on_drain``
      (awaited by the deterministic drain before the stop event fires)
      and ``_release_resources`` (after a background thread joins).
    """

    def __init__(self, max_connections: int = 64):
        self.max_connections = max_connections
        self._per_item_latency = 0.05
        self._inflight = 0
        self._connections = 0
        self._accepting = True
        self._draining = False
        self._answers: set = set()
        self._serving = 0
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._thread_loop: asyncio.AbstractEventLoop | None = None
        self._thread_ready = threading.Event()
        self.address: tuple[str, int] | None = None

    # -- subclass surface ----------------------------------------------------

    async def handle_request(self, line: str) -> dict:
        """Decode, dispatch and answer one request line."""
        raise NotImplementedError

    def render_metrics(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        raise NotImplementedError

    def _on_serving_start(self) -> None:
        """First transport coming up on this loop (state restore etc.)."""

    def _on_serving_stop(self) -> None:
        """Last transport going down (snapshot, cancel housekeeping)."""

    async def _flush_on_drain(self) -> None:
        """Awaited after every answer flushed, before the stop event."""

    def _release_resources(self) -> None:
        """Release executors/links after a background thread joined."""

    # -- admission -----------------------------------------------------------

    def retry_hint(self) -> float:
        """``retry_after`` seconds for shed responses: roughly one
        observed per-request drain latency, floored at 50ms."""
        return round(max(0.05, self._per_item_latency), 3)

    # -- shutdown ------------------------------------------------------------

    def _register_answer(self, task: "asyncio.Task") -> None:
        self._answers.add(task)
        task.add_done_callback(self._answers.discard)

    def _begin_shutdown(self) -> None:
        """Deterministic drain: refuse new work, flush queued futures and
        pending response writes, snapshot, then stop — no timers."""
        if self._draining:
            return
        self._draining = True
        self._accepting = False
        asyncio.get_running_loop().create_task(self._drain_then_stop())

    async def _drain_then_stop(self) -> None:
        current = asyncio.current_task()
        while True:
            pending = [
                task
                for task in self._answers
                if not task.done() and task is not current
            ]
            if not pending:
                break
            await asyncio.gather(*pending, return_exceptions=True)
        await self._flush_on_drain()
        if self._stop is not None:
            self._stop.set()

    # -- transports ----------------------------------------------------------

    def _serving_setup(self) -> asyncio.Event:
        """Shared transport bring-up: one stop event, one start hook —
        however many front ends (line TCP, stdio, HTTP, metrics-only
        HTTP) serve on this loop."""
        if self._stop is None:
            self._stop = asyncio.Event()
        self._serving += 1
        self._on_serving_start()
        return self._stop

    def _serving_teardown(self) -> None:
        """Reference-counted shutdown of the shared serving state; the
        last transport out runs the stop hook."""
        self._serving -= 1
        if self._serving > 0:
            return
        self._on_serving_stop()
        self._stop = None

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Serve on a localhost TCP socket until ``shutdown`` arrives.

        ``self.address`` carries the bound ``(host, port)`` once
        listening (``port=0`` binds an ephemeral port).
        """
        stop = self._serving_setup()
        server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        try:
            async with server:
                await stop.wait()
        finally:
            self._serving_teardown()

    async def _handle_connection(self, reader, writer) -> None:
        if self._connections >= self.max_connections:
            self.stats.connections_shed += 1
            shed = OverloadedError(
                f"connection limit reached ({self.max_connections})",
                retry_after=self.retry_hint(),
            )
            try:
                line = protocol.encode(protocol.error_response(None, shed))
                writer.write((line + "\n").encode("utf-8"))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        self._connections += 1
        write_lock = asyncio.Lock()
        tasks = []

        async def answer(line: str) -> None:
            response = await self.handle_request(line)
            if fault_active("conn.drop"):
                writer.close()
                return
            try:
                async with write_lock:
                    writer.write((protocol.encode(response) + "\n").encode("utf-8"))
                    await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; the response has nowhere to go

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                task = asyncio.ensure_future(answer(text))
                self._register_answer(task)
                tasks.append(task)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except asyncio.CancelledError:
            # Server shutdown cancels connection handlers mid-read; the
            # deterministic drain already flushed queued responses.
            pass
        finally:
            self._connections -= 1
            writer.close()

    async def serve_stdio(self, stdin=None, stdout=None) -> None:
        """Serve over stdin/stdout until EOF or ``shutdown``.

        stdin is pumped by a dedicated *daemon* thread rather than the
        default executor: a blocked ``readline`` must not keep the
        process alive after a ``shutdown`` request (``asyncio.run``
        joins default-executor threads on exit; it never joins a
        daemon).
        """
        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        stop = self._serving_setup()
        loop = asyncio.get_running_loop()
        lines: asyncio.Queue = asyncio.Queue()
        write_lock = asyncio.Lock()
        tasks = []

        def pump() -> None:
            while True:
                line = stdin.readline()
                try:
                    loop.call_soon_threadsafe(lines.put_nowait, line)
                except RuntimeError:
                    return  # loop already closed; nothing left to feed
                if not line:
                    return

        threading.Thread(target=pump, name="repro-stdin", daemon=True).start()

        async def answer(line: str) -> None:
            response = await self.handle_request(line)
            async with write_lock:
                stdout.write(protocol.encode(response) + "\n")
                stdout.flush()

        try:
            while not stop.is_set():
                read = asyncio.ensure_future(lines.get())
                stopped = asyncio.ensure_future(stop.wait())
                done, _ = await asyncio.wait(
                    {read, stopped}, return_when=asyncio.FIRST_COMPLETED
                )
                stopped.cancel()
                if read not in done:
                    read.cancel()
                    break
                line = read.result()
                if not line:
                    break
                if line.strip():
                    task = asyncio.ensure_future(answer(line.strip()))
                    self._register_answer(task)
                    tasks.append(task)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            self._serving_teardown()

    # -- background lifecycle (tests, benchmarks, the README quickstart) -----

    def start_background(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Run the TCP server on a daemon thread; returns the address.

        >>> from repro.service.registry import SessionRegistry
        >>> server = CheckingServer(SessionRegistry(max_sessions=4))
        >>> host, port = server.start_background()
        >>> port > 0
        True
        >>> server.close()
        """
        if self._thread is not None:
            raise RuntimeError("server is already running")

        def run() -> None:
            async def main() -> None:
                self._thread_loop = asyncio.get_running_loop()
                started = asyncio.ensure_future(self.serve_tcp(host, port))
                while self.address is None and not started.done():
                    await asyncio.sleep(0.001)
                self._thread_ready.set()
                await started

            try:
                asyncio.run(main())
            finally:
                self._thread_ready.set()

        self._thread = threading.Thread(target=run, name="repro-serve", daemon=True)
        self._thread.start()
        self._thread_ready.wait(timeout=10.0)
        if self.address is None:
            raise RuntimeError("server failed to start")
        return self.address

    def close(self) -> None:
        """Stop a background server and release its resources.

        Routes through the same deterministic drain as the ``shutdown``
        op (answer everything received, snapshot, then stop) — setting
        the stop event directly would race a drain already in flight
        and could cancel its snapshot mid-write.
        """
        if self._thread is not None and self._thread_loop is not None:
            try:
                self._thread_loop.call_soon_threadsafe(self._begin_shutdown)
            except RuntimeError:
                pass  # loop already closed
            self._thread.join(timeout=10.0)
            self._thread = None
            self._thread_loop = None
        self._release_resources()


class CheckingServer(RequestServer):
    """The resident checking service over a :class:`SessionRegistry`.

    Admission, deadline and persistence knobs (all optional):

    ``max_inflight``
        Global cap on requests admitted but not yet answered; beyond it
        requests shed with ``overloaded`` + ``retry_after``.
    ``queue_depth``
        Per-session pending-queue bound (the second shedding layer).
    ``max_connections``
        Concurrent TCP connection cap; over-limit connects receive one
        structured shed response and are closed.
    ``default_deadline``
        Seconds granted to requests that do not carry their own
        ``deadline`` field (``None`` = unbounded).
    ``state_file``
        Path for crash-safe session snapshots: loaded on serve start,
        written on shutdown and every ``autosave_interval`` seconds.
    ``batch_target_latency`` / ``max_batch_width``
        The adaptive coalescing controller's target per-drain latency
        and hard width ceiling.
    """

    def __init__(
        self,
        registry: SessionRegistry | None = None,
        executor_threads: int | None = None,
        max_inflight: int = 256,
        queue_depth: int = 128,
        max_connections: int = 64,
        default_deadline: float | None = None,
        state_file: str | None = None,
        autosave_interval: float | None = None,
        batch_target_latency: float = 0.5,
        max_batch_width: int = 32,
        collector: StatsCollector | None = None,
    ):
        super().__init__(max_connections=max_connections)
        self.registry = registry or SessionRegistry()
        self.stats = ServerStats()
        #: The process-wide metrics sink (DESIGN.md section 10): sessions
        #: push wave latencies and pool counters into it, the server adds
        #: per-op request latency, and ``GET /metrics`` / the ``stats``
        #: op's ``counters`` payload read from it.
        self.collector = collector or self.registry.collector or StatsCollector()
        self.registry.attach_collector(self.collector)
        self.executor = ThreadPoolExecutor(
            max_workers=executor_threads or max(2, min(8, effective_parallelism())),
            thread_name_prefix="repro-serve",
        )
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.default_deadline = default_deadline
        self.state_file = state_file
        self.autosave_interval = autosave_interval
        self.batch_target_latency = batch_target_latency
        self.max_batch_width = max_batch_width
        self._batch_limit = float(max_batch_width)
        self._state_loaded = False
        self._queues: dict[str, _SessionQueue] = {}
        self._autosave: "asyncio.Future | None" = None

    # -- admission and adaptation -------------------------------------------

    def batch_limit(self) -> int:
        """The adaptive coalescing width limit, as an integer >= 1."""
        return max(1, int(self._batch_limit))

    def observe_drain(self, elapsed: float, width: int) -> None:
        """Feed one drain's latency into the width controller.

        The AutoThrottle averaging shape: the next limit is the mean of
        the current limit and the width that would hit the target
        latency at the observed per-item cost — fast drains grow the
        window toward ``max_batch_width``, slow drains shrink it toward
        answering each request promptly.
        """
        per_item = max(elapsed / max(width, 1), 1e-6)
        self._per_item_latency = 0.5 * self._per_item_latency + 0.5 * per_item
        proposed = (self._batch_limit + self.batch_target_latency / per_item) / 2.0
        self._batch_limit = min(float(self.max_batch_width), max(1.0, proposed))

    def _admit(self) -> None:
        """Admission control: raise :class:`OverloadedError` to shed."""
        if not self._accepting:
            raise OverloadedError(
                "server is draining for shutdown",
                retry_after=self.retry_hint(),
            )
        if self._inflight >= self.max_inflight:
            raise OverloadedError(
                f"server at capacity ({self.max_inflight} requests in flight)",
                retry_after=self.retry_hint(),
            )

    def _deadline_for(self, request: dict) -> Deadline | None:
        seconds = request.get("deadline", self.default_deadline)
        if seconds is None:
            return None
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
            raise protocol.ProtocolError("'deadline' must be a number of seconds")
        if seconds < 0:
            raise protocol.ProtocolError("'deadline' cannot be negative")
        return Deadline.after(float(seconds))

    # -- request handling ---------------------------------------------------

    async def handle_request(self, line: str) -> dict:
        """Decode, dispatch and answer one request line."""
        self.stats.requests += 1
        request_id = None
        op = None
        started = time.monotonic()
        try:
            request = protocol.parse_request(line)
            request_id = request.get("id")
            op = request["op"]
            if op == "stats":
                response = protocol.ok_response(request, self.stats_payload(), None)
            elif op == "shutdown":
                response = protocol.ok_response(request, {"stopping": True}, None)
                self._begin_shutdown()
            else:
                # _admit reserves the in-flight slot before the first
                # await: concurrent arrivals must not all pass the cap
                # check while none has yet been counted.
                self._admit()
                self._inflight += 1
                try:
                    request["_deadline"] = self._deadline_for(request)
                    loop = asyncio.get_running_loop()
                    session = await loop.run_in_executor(
                        self.executor,
                        lambda: protocol.resolve_session(self.registry, request),
                    )
                    queue = self._queues.get(session.fingerprint)
                    if queue is None or queue.session is not session:
                        queue = _SessionQueue(self, session)
                        self._queues[session.fingerprint] = queue
                    payload = await queue.submit(request)
                finally:
                    self._inflight -= 1
                if "error" in payload:
                    self.stats.errors += 1
                    if payload["error"].get("type") == "budget_exceeded":
                        self.stats.deadline_expired += 1
                    response = {
                        "id": request_id,
                        "ok": False,
                        **payload,
                    }
                else:
                    response = protocol.ok_response(request, payload, session)
        except OverloadedError as exc:
            self.stats.requests_shed += 1
            response = protocol.error_response(request_id, exc)
        except Exception as exc:  # noqa: BLE001 - every request gets an answer
            self.stats.errors += 1
            if isinstance(exc, BudgetExceededError):
                self.stats.deadline_expired += 1
            response = protocol.error_response(request_id, exc)
        self.stats.responses += 1
        if op in protocol.SESSION_OPS:
            # Wire-request latency by op, shed and errored requests
            # included — the scrape measures what clients experienced,
            # not just what the solver solved.
            self.collector.observe_op(op, time.monotonic() - started)
        return response

    def stats_payload(self) -> dict:
        """Registry, server and per-session counters (the ``stats`` op).

        The nested sections are the original wire shape; ``counters`` is
        the ISSUE-8 namespaced flat view (``server.*``, ``registry.*``,
        ``session.*``, ``pool.*``) in which no key can shadow another —
        the same dict a ``/metrics`` scrape renders.
        """
        sessions = {}
        for fingerprint in self.registry.fingerprints():
            session = self.registry._sessions.get(fingerprint)
            if session is not None:
                sessions[fingerprint] = session.service_stats()
        server_stats = self.stats.as_dict()
        server_stats["inflight"] = self._inflight
        server_stats["connections"] = self._connections
        server_stats["batch_limit"] = self.batch_limit()
        server_stats["accepting"] = self._accepting
        return {
            "registry": self.registry.stats(),
            "server": server_stats,
            "sessions": sessions,
            "counters": self.metrics_snapshot(),
        }

    def metrics_snapshot(self) -> dict:
        """Every counter the service owns, flat and namespaced.

        ``server.*`` from :class:`ServerStats` plus the live gauges,
        ``registry.*`` from the registry's own counters (no session
        aggregates mixed in), ``session.*`` aggregated monotonically
        across live *and* evicted sessions, and ``pool.*`` / gauges from
        the pushed collector state.
        """
        snapshot = dict(self.collector.counters())
        server_stats = self.stats.as_dict()
        server_stats["inflight"] = self._inflight
        server_stats["connections"] = self._connections
        server_stats["batch_limit"] = self.batch_limit()
        server_stats["accepting"] = int(self._accepting)
        for key, value in server_stats.items():
            snapshot[f"server.{key}"] = value
        for key, value in self.registry.core_stats().items():
            snapshot[f"registry.{key}"] = value
        for key, value in self.registry.session_counters().items():
            snapshot[f"session.{key}"] = value
        return snapshot

    def render_metrics(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        return self.collector.render(self.metrics_snapshot())

    # -- persistence --------------------------------------------------------

    def _load_state(self) -> None:
        """Restore sessions from the snapshot, once per server lifetime."""
        if self.state_file is None or self._state_loaded:
            return
        self._state_loaded = True
        self.stats.sessions_restored += persist.load_snapshot(
            self.registry, self.state_file
        )

    def _save_state(self) -> None:
        """Write the snapshot; a failed save never takes the service down."""
        if self.state_file is None:
            return
        try:
            persist.save_snapshot(self.registry, self.state_file)
            self.stats.snapshots_saved += 1
        except Exception:  # noqa: BLE001 - serving outranks snapshotting
            pass

    async def _autosave_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.autosave_interval)
            await loop.run_in_executor(self.executor, self._save_state)

    # -- transport lifecycle hooks ------------------------------------------

    def _on_serving_start(self) -> None:
        """First transport up: restore state, start the autosave task."""
        self._load_state()
        if self.state_file and self.autosave_interval and self._autosave is None:
            self._autosave = asyncio.ensure_future(self._autosave_loop())

    def _on_serving_stop(self) -> None:
        """Last transport out cancels autosave and snapshots (unless the
        deterministic drain already did)."""
        if self._autosave is not None:
            self._autosave.cancel()
            self._autosave = None
        if not self._draining:
            # Stopped without a shutdown op (embedder called ``close``
            # or stdin hit EOF): still snapshot before the loop dies.
            self._save_state()

    async def _flush_on_drain(self) -> None:
        await asyncio.get_running_loop().run_in_executor(
            self.executor, self._save_state
        )

    def _release_resources(self) -> None:
        self.executor.shutdown(wait=False)
