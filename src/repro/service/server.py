"""The asyncio front end: ``repro serve`` (DESIGN.md section 8).

Line-delimited JSON requests arrive over stdio or a localhost TCP
socket; each is dispatched against the shared
:class:`~repro.service.registry.SessionRegistry`.  Solver work runs in a
small thread pool so the event loop stays responsive, under two
scheduling rules:

* **per-session serialization** — every session has at most one
  operation in flight at a time (a single drainer task per session
  feeds the executor), so single-owner workspace state never races;
* **batch coalescing** — while a session is busy, newly arrived
  ``implies`` requests with the same config pile up in its queue; the
  drainer pops them *together* and answers them with one
  ``implies_batch`` call (which validates once, shares the encoding
  block, and fans across the PR-4 worker pool when ``jobs > 1``).
  ``batches_coalesced`` counts multi-request batches and
  ``batch_width`` the widest one.

Responses may complete out of request order across a connection; the
echoed ``id`` is the correlation key.  ``shutdown`` stops the server —
the trust model is a localhost/stdio tool, not an internet service.
"""

from __future__ import annotations

import asyncio
import sys
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.ilp.condsys import effective_parallelism
from repro.service import protocol
from repro.service.registry import SessionRegistry
from repro.service.session import SpecSession


@dataclass
class ServerStats:
    """Front-end counters (the solver's own counters ride on responses)."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    batches: int = 0
    batches_coalesced: int = 0
    batch_width: int = 0
    batch_width_sum: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "batches": self.batches,
            "batches_coalesced": self.batches_coalesced,
            "batch_width": self.batch_width,
            "batch_width_sum": self.batch_width_sum,
        }


class _SessionQueue:
    """Pending operations for one session, drained one batch at a time."""

    def __init__(self, server: "CheckingServer", session: SpecSession):
        self.server = server
        self.session = session
        self.pending: deque = deque()
        self.draining = False

    def submit(self, request: dict) -> "asyncio.Future":
        future = asyncio.get_running_loop().create_future()
        self.pending.append((request, future))
        if not self.draining:
            self.draining = True
            asyncio.get_running_loop().create_task(self._drain())
        return future

    def _take_batch(self) -> list:
        """The next unit of work: a coalesced ``implies`` run or one op.

        When the head is an ``implies``, every pending ``implies`` with
        the same config joins it (requests are independent, so pulling
        them forward past other queued ops only changes completion
        order, which the protocol does not promise).
        """
        head, head_future = self.pending.popleft()
        if head.get("op") != "implies":
            return [(head, head_future)]
        batch = [(head, head_future)]
        config = head.get("config")
        rest = deque()
        while self.pending:
            request, future = self.pending.popleft()
            if request.get("op") == "implies" and request.get("config") == config:
                batch.append((request, future))
            else:
                rest.append((request, future))
        self.pending = rest
        return batch

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while self.pending:
                batch = self._take_batch()
                stats = self.server.stats
                stats.batches += 1
                if len(batch) > 1:
                    stats.batches_coalesced += 1
                stats.batch_width = max(stats.batch_width, len(batch))
                stats.batch_width_sum += len(batch)
                try:
                    if len(batch) > 1:
                        phis = [request["phi"] for request, _ in batch]
                        config = batch[0][0].get("config")
                        payloads = await loop.run_in_executor(
                            self.server.executor,
                            lambda: self.session.implies_batch(phis, config),
                        )
                    else:
                        request = batch[0][0]
                        payloads = [
                            await loop.run_in_executor(
                                self.server.executor,
                                lambda: protocol.perform(self.session, request),
                            )
                        ]
                except Exception as exc:  # noqa: BLE001 - per-request delivery
                    for _, future in batch:
                        if not future.done():
                            future.set_exception(_copy_exception(exc))
                else:
                    for (_, future), payload in zip(batch, payloads):
                        if not future.done():
                            future.set_result(payload)
        finally:
            self.draining = False
            if not self.pending:
                self.server._queues.pop(self.session.fingerprint, None)


def _copy_exception(exc: Exception) -> Exception:
    """A per-future clone (one exception object must not be shared by
    several futures: tracebacks would chain confusingly)."""
    try:
        return type(exc)(str(exc))
    except Exception:  # noqa: BLE001 - exotic signature; reuse the original
        return exc


class CheckingServer:
    """The resident checking service over a :class:`SessionRegistry`."""

    def __init__(
        self,
        registry: SessionRegistry | None = None,
        executor_threads: int | None = None,
    ):
        self.registry = registry or SessionRegistry()
        self.stats = ServerStats()
        self.executor = ThreadPoolExecutor(
            max_workers=executor_threads
            or max(2, min(8, effective_parallelism())),
            thread_name_prefix="repro-serve",
        )
        self._queues: dict[str, _SessionQueue] = {}
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._thread_loop: asyncio.AbstractEventLoop | None = None
        self._thread_ready = threading.Event()
        self.address: tuple[str, int] | None = None

    # -- request handling ---------------------------------------------------

    async def handle_request(self, line: str) -> dict:
        """Decode, dispatch and answer one request line."""
        self.stats.requests += 1
        request_id = None
        try:
            request = protocol.parse_request(line)
            request_id = request.get("id")
            op = request["op"]
            if op == "stats":
                response = protocol.ok_response(request, self.stats_payload(), None)
            elif op == "shutdown":
                response = protocol.ok_response(request, {"stopping": True}, None)
                if self._stop is not None:
                    # Stop on the next tick-ish so responses already in
                    # flight (including this one) can still be written.
                    asyncio.get_running_loop().call_later(
                        0.05, self._stop.set
                    )
            else:
                loop = asyncio.get_running_loop()
                session = await loop.run_in_executor(
                    self.executor,
                    lambda: protocol.resolve_session(self.registry, request),
                )
                queue = self._queues.get(session.fingerprint)
                if queue is None or queue.session is not session:
                    queue = _SessionQueue(self, session)
                    self._queues[session.fingerprint] = queue
                payload = await queue.submit(request)
                if "error" in payload:
                    self.stats.errors += 1
                    response = {
                        "id": request_id,
                        "ok": False,
                        **payload,
                    }
                else:
                    response = protocol.ok_response(request, payload, session)
        except Exception as exc:  # noqa: BLE001 - every request gets an answer
            self.stats.errors += 1
            response = protocol.error_response(request_id, exc)
        self.stats.responses += 1
        return response

    def stats_payload(self) -> dict:
        """Registry, server and per-session counters (the ``stats`` op)."""
        sessions = {}
        for fingerprint in self.registry.fingerprints():
            session = self.registry._sessions.get(fingerprint)
            if session is not None:
                sessions[fingerprint] = session.service_stats()
        return {
            "registry": self.registry.stats(),
            "server": self.stats.as_dict(),
            "sessions": sessions,
        }

    # -- transports ---------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Serve on a localhost TCP socket until ``shutdown`` arrives.

        ``self.address`` carries the bound ``(host, port)`` once
        listening (``port=0`` binds an ephemeral port).
        """
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        async with server:
            await self._stop.wait()

    async def _handle_connection(self, reader, writer) -> None:
        write_lock = asyncio.Lock()
        tasks = []

        async def answer(line: str) -> None:
            response = await self.handle_request(line)
            try:
                async with write_lock:
                    writer.write((protocol.encode(response) + "\n").encode("utf-8"))
                    await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; the response has nowhere to go

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                tasks.append(asyncio.ensure_future(answer(text)))
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except asyncio.CancelledError:
            # Server shutdown cancels connection handlers mid-read; the
            # 0.05s grace period in the shutdown op already let queued
            # responses flush.
            pass
        finally:
            writer.close()

    async def serve_stdio(self, stdin=None, stdout=None) -> None:
        """Serve over stdin/stdout until EOF or ``shutdown``.

        stdin is pumped by a dedicated *daemon* thread rather than the
        default executor: a blocked ``readline`` must not keep the
        process alive after a ``shutdown`` request (``asyncio.run``
        joins default-executor threads on exit; it never joins a
        daemon).
        """
        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        self._stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        lines: asyncio.Queue = asyncio.Queue()
        write_lock = asyncio.Lock()
        tasks = []

        def pump() -> None:
            while True:
                line = stdin.readline()
                try:
                    loop.call_soon_threadsafe(lines.put_nowait, line)
                except RuntimeError:
                    return  # loop already closed; nothing left to feed
                if not line:
                    return

        threading.Thread(target=pump, name="repro-stdin", daemon=True).start()

        async def answer(line: str) -> None:
            response = await self.handle_request(line)
            async with write_lock:
                stdout.write(protocol.encode(response) + "\n")
                stdout.flush()

        while not self._stop.is_set():
            read = asyncio.ensure_future(lines.get())
            stop = asyncio.ensure_future(self._stop.wait())
            done, _ = await asyncio.wait(
                {read, stop}, return_when=asyncio.FIRST_COMPLETED
            )
            stop.cancel()
            if read not in done:
                read.cancel()
                break
            line = read.result()
            if not line:
                break
            if line.strip():
                tasks.append(asyncio.ensure_future(answer(line.strip())))
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- background lifecycle (tests, benchmarks, the README quickstart) ----

    def start_background(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Run the TCP server on a daemon thread; returns the address.

        >>> from repro.service.registry import SessionRegistry
        >>> server = CheckingServer(SessionRegistry(max_sessions=4))
        >>> host, port = server.start_background()
        >>> port > 0
        True
        >>> server.close()
        """
        if self._thread is not None:
            raise RuntimeError("server is already running")

        def run() -> None:
            async def main() -> None:
                self._thread_loop = asyncio.get_running_loop()
                started = asyncio.ensure_future(self.serve_tcp(host, port))
                while self.address is None and not started.done():
                    await asyncio.sleep(0.001)
                self._thread_ready.set()
                await started

            try:
                asyncio.run(main())
            finally:
                self._thread_ready.set()

        self._thread = threading.Thread(target=run, name="repro-serve", daemon=True)
        self._thread.start()
        self._thread_ready.wait(timeout=10.0)
        if self.address is None:
            raise RuntimeError("server failed to start")
        return self.address

    def close(self) -> None:
        """Stop a background server and release the executor."""
        if self._thread is not None and self._thread_loop is not None:
            stop = self._stop

            def signal() -> None:
                if stop is not None:
                    stop.set()

            try:
                self._thread_loop.call_soon_threadsafe(signal)
            except RuntimeError:
                pass  # loop already closed
            self._thread.join(timeout=10.0)
            self._thread = None
            self._thread_loop = None
        self.executor.shutdown(wait=False)
