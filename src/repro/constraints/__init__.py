"""XML integrity constraints (Section 2.2 of Fan & Libkin).

Five constraint forms over a DTD ``D``:

* :class:`~repro.constraints.ast.Key` — ``tau[X] -> tau``;
* :class:`~repro.constraints.ast.InclusionConstraint` — ``tau1[X] ⊆ tau2[Y]``;
* :class:`~repro.constraints.ast.ForeignKey` — an inclusion constraint plus
  the key on its target;
* :class:`~repro.constraints.ast.NegKey` — ``tau.l -/-> tau`` (unary only);
* :class:`~repro.constraints.ast.NegInclusion` — ``tau1.l1 ⊄ tau2.l2``
  (unary only).

The classes C_K,FK / C_K / C^unary_K,FK / C^unary_K¬,IC / C^unary_K¬,IC¬ of
the paper are recognized by :func:`~repro.constraints.classes.classify`.
"""

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.constraints.classes import (
    ConstraintClass,
    classify,
    expand_foreign_keys,
    is_primary_key_set,
    validate_constraints,
)
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.satisfaction import satisfies, satisfies_all, violations

__all__ = [
    "Constraint",
    "Key",
    "InclusionConstraint",
    "ForeignKey",
    "NegKey",
    "NegInclusion",
    "ConstraintClass",
    "classify",
    "validate_constraints",
    "expand_foreign_keys",
    "is_primary_key_set",
    "parse_constraint",
    "parse_constraints",
    "satisfies",
    "satisfies_all",
    "violations",
]
