"""Textual syntax for constraints.

The syntax mirrors the paper's notation, ASCII-fied:

* key:                 ``tau.l -> tau``        or ``tau[l1,l2] -> tau``
* inclusion:           ``tau1.l1 <= tau2.l2``  or ``tau1[X] <= tau2[Y]``
* foreign key:         ``tau1.l1 => tau2.l2``  or ``tau1[X] => tau2[Y]``
  (the key ``tau2[Y] -> tau2`` is implied, per Section 2.2)
* negated key:         ``tau.l !-> tau``
* negated inclusion:   ``tau1.l1 !<= tau2.l2``

The Unicode subset symbols ``⊆`` and ``⊄`` are accepted as synonyms for
``<=`` and ``!<=``.
"""

from __future__ import annotations

import re

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.errors import ParseError

_NAME = r"[A-Za-z_:][A-Za-z0-9._:\-]*"

#: ``tau.l`` or ``tau[l1,l2,...]`` — a typed attribute list.
_SIDE_RE = re.compile(
    rf"^\s*(?P<type>{_NAME})\s*"
    rf"(?:\.\s*(?P<single>{_NAME})|\[\s*(?P<list>[^\]]*)\])\s*$"
)


def _parse_side(text: str) -> tuple[str, tuple[str, ...]]:
    match = _SIDE_RE.match(text)
    if match is None:
        raise ParseError(f"cannot parse constraint side {text.strip()!r}")
    element_type = match.group("type")
    if match.group("single") is not None:
        return element_type, (match.group("single"),)
    raw = match.group("list")
    attrs = tuple(part.strip() for part in raw.split(",") if part.strip())
    if not attrs:
        raise ParseError(f"empty attribute list in {text.strip()!r}")
    return element_type, attrs


def parse_constraint(text: str) -> Constraint:
    """Parse one constraint.

    >>> parse_constraint("teacher.name -> teacher")
    Key(element_type='teacher', attrs=('name',))
    >>> str(parse_constraint("subject.taught_by => teacher.name"))
    'subject.taught_by => teacher.name'
    """
    source = text.strip().replace("⊆", "<=").replace("⊄", "!<=")
    if not source:
        raise ParseError("empty constraint")

    for op, negated in (("!<=", True), ("!->", True), ("=>", False),
                        ("<=", False), ("->", False)):
        index = source.find(op)
        if index < 0:
            continue
        left, right = source[:index], source[index + len(op):]
        left_type, left_attrs = _parse_side(left)
        if op == "->" or op == "!->":
            target = right.strip()
            if target != left_type:
                raise ParseError(
                    f"key must target its own element type: {left_type!r} vs {target!r}"
                )
            if op == "->":
                return Key(left_type, left_attrs)
            if len(left_attrs) != 1:
                raise ParseError("negated keys are unary only")
            return NegKey(left_type, left_attrs[0])
        right_type, right_attrs = _parse_side(right)
        if len(left_attrs) != len(right_attrs):
            raise ParseError(
                f"attribute lists differ in length: {left_attrs} vs {right_attrs}"
            )
        if op == "<=":
            return InclusionConstraint(left_type, left_attrs, right_type, right_attrs)
        if op == "=>":
            return ForeignKey(
                InclusionConstraint(left_type, left_attrs, right_type, right_attrs)
            )
        # op == "!<=":
        if len(left_attrs) != 1:
            raise ParseError("negated inclusion constraints are unary only")
        return NegInclusion(left_type, left_attrs[0], right_type, right_attrs[0])
    raise ParseError(f"no constraint operator found in {text.strip()!r}")


def parse_constraints(text: str) -> list[Constraint]:
    """Parse a block of constraints: one per line or semicolon-separated.

    Blank lines and ``#`` comments are ignored.

    >>> sigma = parse_constraints('''
    ...     teacher.name -> teacher          # name identifies teachers
    ...     subject.taught_by -> subject
    ...     subject.taught_by => teacher.name
    ... ''')
    >>> len(sigma)
    3
    """
    constraints: list[Constraint] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        for piece in line.split(";"):
            piece = piece.strip()
            if piece:
                constraints.append(parse_constraint(piece))
    return constraints
