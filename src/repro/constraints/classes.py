"""Constraint-class taxonomy and validation (Section 2.2).

The paper studies four classes; we also recognize the keys-only class C_K
(Section 3.3) and the intermediate C^unary_K,IC (unary keys plus bare
inclusion constraints, Section 4.1), giving the dispatch lattice used by
:mod:`repro.checkers`:

    C_K           multi-attribute keys only                 (linear time)
    C_K_FK        multi-attribute keys + foreign keys       (undecidable)
    C_UNARY_K_FK  unary keys + foreign keys                 (NP-complete)
    C_UNARY_K_IC  unary keys + inclusion constraints        (NP, Thm 4.1)
    C_UNARY_KNEG_IC      + negated keys                     (NP, Cor 4.9)
    C_UNARY_KNEG_ICNEG   + negated inclusion constraints    (NP, Thm 5.1)
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.dtd.model import DTD
from repro.errors import InvalidConstraintError


class ConstraintClass(enum.Enum):
    """The constraint classes of the paper, ordered by generality."""

    EMPTY = "empty"
    K = "C_K (multi-attribute keys)"
    K_FK = "C_K,FK (multi-attribute keys and foreign keys)"
    UNARY_K_FK = "C^unary_K,FK (unary keys and foreign keys)"
    UNARY_K_IC = "C^unary_K,IC (unary keys and inclusion constraints)"
    UNARY_KNEG_IC = "C^unary_K-,IC (plus negated keys)"
    UNARY_KNEG_ICNEG = "C^unary_K-,IC- (plus negated inclusions)"


def classify(constraints: Iterable[Constraint]) -> ConstraintClass:
    """The smallest paper class containing every constraint in the set.

    >>> classify([Key("a", ("x",))])
    <ConstraintClass.K: 'C_K (multi-attribute keys)'>
    """
    constraints = list(constraints)
    if not constraints:
        return ConstraintClass.EMPTY
    has_multi = any(not phi.is_unary() for phi in constraints)
    has_neg_ic = any(isinstance(phi, NegInclusion) for phi in constraints)
    has_neg_key = any(isinstance(phi, NegKey) for phi in constraints)
    has_bare_ic = any(
        isinstance(phi, InclusionConstraint) for phi in constraints
    )
    has_fk = any(isinstance(phi, ForeignKey) for phi in constraints)
    only_keys = all(isinstance(phi, Key) for phi in constraints)

    if has_multi:
        if has_neg_ic or has_neg_key:
            raise InvalidConstraintError(
                "negated constraints are unary-only in the paper's classes"
            )
        return ConstraintClass.K if only_keys else ConstraintClass.K_FK
    if has_neg_ic:
        return ConstraintClass.UNARY_KNEG_ICNEG
    if has_neg_key:
        return ConstraintClass.UNARY_KNEG_IC
    if has_bare_ic:
        return ConstraintClass.UNARY_K_IC
    if has_fk:
        return ConstraintClass.UNARY_K_FK
    # Only unary keys: still within the keys-only class C_K.
    return ConstraintClass.K if only_keys else ConstraintClass.UNARY_K_FK


def validate_constraints(dtd: DTD, constraints: Iterable[Constraint]) -> None:
    """Check every constraint is well-formed over ``dtd``.

    Raises :class:`InvalidConstraintError` if a constraint mentions an
    undeclared element type or an attribute outside ``R(tau)``.
    """
    types = set(dtd.element_types)

    def check_attrs(tau: str, attrs: Iterable[str], phi: Constraint) -> None:
        if tau not in types:
            raise InvalidConstraintError(
                f"constraint {phi} mentions undeclared element type {tau!r}"
            )
        declared = dtd.attrs(tau)
        for attr in attrs:
            if attr not in declared:
                raise InvalidConstraintError(
                    f"constraint {phi}: attribute {attr!r} is not in R({tau!r})"
                )

    for phi in constraints:
        if isinstance(phi, Key):
            check_attrs(phi.element_type, phi.attrs, phi)
        elif isinstance(phi, InclusionConstraint):
            check_attrs(phi.child_type, phi.child_attrs, phi)
            check_attrs(phi.parent_type, phi.parent_attrs, phi)
        elif isinstance(phi, ForeignKey):
            check_attrs(phi.inclusion.child_type, phi.inclusion.child_attrs, phi)
            check_attrs(phi.inclusion.parent_type, phi.inclusion.parent_attrs, phi)
        elif isinstance(phi, NegKey):
            check_attrs(phi.element_type, (phi.attr,), phi)
        elif isinstance(phi, NegInclusion):
            check_attrs(phi.child_type, (phi.child_attr,), phi)
            check_attrs(phi.parent_type, (phi.parent_attr,), phi)
        else:
            raise InvalidConstraintError(f"unknown constraint object {phi!r}")


def expand_foreign_keys(constraints: Iterable[Constraint]) -> list[Constraint]:
    """Decompose foreign keys into their inclusion and key components.

    The result contains no :class:`ForeignKey` objects; the decision
    procedures work with the decomposed form (a foreign key *is* the
    conjunction of its parts, Section 2.2).
    """
    expanded: list[Constraint] = []
    seen: set[Constraint] = set()

    def add(phi: Constraint) -> None:
        if phi not in seen:
            seen.add(phi)
            expanded.append(phi)

    for phi in constraints:
        if isinstance(phi, ForeignKey):
            add(phi.inclusion)
            add(phi.key)
        else:
            add(phi)
    return expanded


def is_primary_key_set(constraints: Iterable[Constraint]) -> bool:
    """Does the set satisfy the primary-key restriction?

    At most one key per element type, counting keys stated directly and
    keys required by foreign keys (Section 4.2).
    """
    keys_per_type: dict[str, set[tuple[str, ...]]] = {}
    for phi in expand_foreign_keys(constraints):
        if isinstance(phi, Key):
            keys_per_type.setdefault(phi.element_type, set()).add(tuple(phi.attrs))
    return all(len(keys) <= 1 for keys in keys_per_type.values())
