"""Constraint AST (Section 2.2).

All constraints are immutable and hashable, so sets of constraints behave
like the paper's Σ. Multi-attribute forms carry tuples of attribute names;
the unary classes are exactly the constraints whose tuples have length one.
"""

from __future__ import annotations

from dataclasses import dataclass


class Constraint:
    """Base class of all XML integrity constraints."""

    __slots__ = ()

    def is_unary(self) -> bool:
        """Is this constraint defined with single attributes only?"""
        raise NotImplementedError

    def element_types(self) -> tuple[str, ...]:
        """Element types the constraint mentions."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Key(Constraint):
    """``tau[X] -> tau``: X-attribute values identify ``tau`` elements.

    Satisfaction uses string equality on attribute values and node identity
    on elements: no two *distinct* ``tau`` nodes agree on all of ``X``.
    """

    element_type: str
    attrs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attrs:
            raise ValueError("a key needs at least one attribute")
        if len(set(self.attrs)) != len(self.attrs):
            raise ValueError(f"duplicate attributes in key: {self.attrs}")

    def is_unary(self) -> bool:
        return len(self.attrs) == 1

    def element_types(self) -> tuple[str, ...]:
        return (self.element_type,)

    def __str__(self) -> str:
        if self.is_unary():
            return f"{self.element_type}.{self.attrs[0]} -> {self.element_type}"
        attr_list = ",".join(self.attrs)
        return f"{self.element_type}[{attr_list}] -> {self.element_type}"


@dataclass(frozen=True, slots=True)
class InclusionConstraint(Constraint):
    """``tau1[X] ⊆ tau2[Y]``: every X-value list occurs as some Y-value list.

    ``X`` and ``Y`` are equal-length nonempty *lists* (order matters for the
    multi-attribute comparison).
    """

    child_type: str
    child_attrs: tuple[str, ...]
    parent_type: str
    parent_attrs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.child_attrs or not self.parent_attrs:
            raise ValueError("inclusion constraints need nonempty attribute lists")
        if len(self.child_attrs) != len(self.parent_attrs):
            raise ValueError(
                "inclusion constraint attribute lists must have equal length: "
                f"{self.child_attrs} vs {self.parent_attrs}"
            )

    def is_unary(self) -> bool:
        return len(self.child_attrs) == 1

    def element_types(self) -> tuple[str, ...]:
        return (self.child_type, self.parent_type)

    def __str__(self) -> str:
        if self.is_unary():
            return (
                f"{self.child_type}.{self.child_attrs[0]} <= "
                f"{self.parent_type}.{self.parent_attrs[0]}"
            )
        return (
            f"{self.child_type}[{','.join(self.child_attrs)}] <= "
            f"{self.parent_type}[{','.join(self.parent_attrs)}]"
        )


@dataclass(frozen=True, slots=True)
class ForeignKey(Constraint):
    """A foreign key: an inclusion constraint whose target list is a key.

    Satisfaction requires both parts (Section 2.2): ``T |= phi`` iff
    ``T |= inclusion`` and ``T |= key``.
    """

    inclusion: InclusionConstraint

    @property
    def key(self) -> Key:
        """The key component ``tau2[Y] -> tau2``."""
        return Key(self.inclusion.parent_type, self.inclusion.parent_attrs)

    def is_unary(self) -> bool:
        return self.inclusion.is_unary()

    def element_types(self) -> tuple[str, ...]:
        return self.inclusion.element_types()

    def __str__(self) -> str:
        if self.is_unary():
            return (
                f"{self.inclusion.child_type}.{self.inclusion.child_attrs[0]} => "
                f"{self.inclusion.parent_type}.{self.inclusion.parent_attrs[0]}"
            )
        return (
            f"{self.inclusion.child_type}[{','.join(self.inclusion.child_attrs)}] => "
            f"{self.inclusion.parent_type}[{','.join(self.inclusion.parent_attrs)}]"
        )


@dataclass(frozen=True, slots=True)
class NegKey(Constraint):
    """``tau.l -/-> tau``: two distinct ``tau`` nodes share an ``l`` value.

    Negations are unary only, as in the paper (they exist to express the
    complement of implication problems).
    """

    element_type: str
    attr: str

    def is_unary(self) -> bool:
        return True

    def element_types(self) -> tuple[str, ...]:
        return (self.element_type,)

    @property
    def key(self) -> Key:
        """The key this constraint negates."""
        return Key(self.element_type, (self.attr,))

    def __str__(self) -> str:
        return f"{self.element_type}.{self.attr} !-> {self.element_type}"


@dataclass(frozen=True, slots=True)
class NegInclusion(Constraint):
    """``tau1.l1 ⊄ tau2.l2``: some ``tau1`` node's value matches no ``tau2``."""

    child_type: str
    child_attr: str
    parent_type: str
    parent_attr: str

    def is_unary(self) -> bool:
        return True

    def element_types(self) -> tuple[str, ...]:
        return (self.child_type, self.parent_type)

    @property
    def inclusion(self) -> InclusionConstraint:
        """The inclusion constraint this negates."""
        return InclusionConstraint(
            self.child_type, (self.child_attr,), self.parent_type, (self.parent_attr,)
        )

    def __str__(self) -> str:
        return f"{self.child_type}.{self.child_attr} !<= {self.parent_type}.{self.parent_attr}"
