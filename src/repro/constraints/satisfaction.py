"""Constraint satisfaction on XML trees: ``T |= phi`` (Section 2.2).

Keys compare attribute values by string equality and elements by node
identity; inclusion constraints compare value *lists*; foreign keys require
both of their components; negations hold when the corresponding positive
constraint fails *in the specific witnessed way* the paper defines (which
for these forms coincides with plain logical negation).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.ast import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.xmltree.model import XMLTree


def _value_lists(
    tree: XMLTree, element_type: str, attrs: tuple[str, ...]
) -> list[tuple[str, ...] | None]:
    """Per-element tuples of attribute values (None if any attribute absent).

    In a DTD-conformant tree attributes are total, so ``None`` only appears
    for malformed inputs; a ``None`` tuple never matches anything, which is
    the conservative reading.
    """
    rows: list[tuple[str, ...] | None] = []
    for node in tree.ext(element_type):
        try:
            rows.append(tuple(node.attrs[attr] for attr in attrs))
        except KeyError:
            rows.append(None)
    return rows


def satisfies(tree: XMLTree, phi: Constraint) -> bool:
    """Does ``tree |= phi``?

    >>> from repro.xmltree.builder import element
    >>> t = XMLTree(element("db", element("u", k="1"), element("u", k="1")))
    >>> satisfies(t, Key("u", ("k",)))
    False
    >>> satisfies(t, NegKey("u", "k"))
    True
    """
    if isinstance(phi, Key):
        seen: set[tuple[str, ...]] = set()
        for row in _value_lists(tree, phi.element_type, phi.attrs):
            if row is None:
                continue
            if row in seen:
                return False
            seen.add(row)
        return True
    if isinstance(phi, InclusionConstraint):
        parent_rows = {
            row
            for row in _value_lists(tree, phi.parent_type, phi.parent_attrs)
            if row is not None
        }
        for row in _value_lists(tree, phi.child_type, phi.child_attrs):
            if row is None or row not in parent_rows:
                return False
        return True
    if isinstance(phi, ForeignKey):
        return satisfies(tree, phi.inclusion) and satisfies(tree, phi.key)
    if isinstance(phi, NegKey):
        return not satisfies(tree, phi.key)
    if isinstance(phi, NegInclusion):
        return not satisfies(tree, phi.inclusion)
    raise TypeError(f"unknown constraint {phi!r}")


def satisfies_all(tree: XMLTree, constraints: Iterable[Constraint]) -> bool:
    """Does ``tree |= Sigma`` for every constraint in the collection?"""
    return all(satisfies(tree, phi) for phi in constraints)


def violations(tree: XMLTree, constraints: Iterable[Constraint]) -> list[Constraint]:
    """The subset of constraints the tree violates (for diagnostics)."""
    return [phi for phi in constraints if not satisfies(tree, phi)]
