"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses separate the main failure
modes: malformed inputs (parsing), ill-formed models (validation), problems
that are provably undecidable in general (where only bounded semi-decision
is offered), and configured complexity limits being exceeded.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when textual input (DTD, XML, regex, constraint) is malformed.

    Carries optional position information for diagnostics.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class InvalidDTDError(ReproError):
    """Raised when a DTD violates the well-formedness rules of Definition 2.1.

    Examples: the root element type occurring in a content model, a content
    model referencing an undeclared element type, or attribute sets that
    overlap element-type names.
    """


class InvalidTreeError(ReproError):
    """Raised when an XML tree value violates Definition 2.2 structurally.

    This is about *structural* integrity of the tree object itself (parent
    maps, label domains), not about conformance to a DTD; conformance
    failures are reported as data, not exceptions.
    """


class InvalidConstraintError(ReproError):
    """Raised when a constraint is ill-formed over a given DTD.

    Examples: a key over an element type the DTD does not declare, or an
    inclusion constraint whose attribute lists have different lengths.
    """


class UndecidableProblemError(ReproError):
    """Raised when an exact answer is requested for an undecidable problem.

    The consistency and implication problems for multi-attribute keys and
    foreign keys are undecidable (Theorem 3.1, Corollary 3.4). The library
    refuses to pretend otherwise; callers should use the bounded
    semi-decision procedures instead.
    """


class ComplexityLimitError(ReproError):
    """Raised when an exact procedure would exceed a configured limit.

    For instance, the set-representation system of Theorem 5.1 is
    exponential in the number of attribute pairs occurring in (negated)
    inclusion constraints; beyond the configured cap we raise instead of
    silently consuming unbounded memory.
    """


class SolverError(ReproError):
    """Raised when an ILP backend fails for reasons other than infeasibility.

    Infeasibility is a normal answer and is returned as data; this exception
    signals numerical failure, an unbounded relaxation where boundedness was
    required, or a missing optional backend.
    """


class BudgetExceededError(ReproError):
    """Raised when a request's wall-clock deadline expires mid-solve.

    Cooperative cancellation: the solver checks the ambient deadline
    (:mod:`repro.budget`) at its search loops and raises this instead of
    running on, so a pathological specification times out with a
    structured answer rather than wedging its caller.  The service
    renders it with wire type ``budget_exceeded`` and never caches it —
    a retry with a larger budget re-runs the solve.
    """

    #: The service's structured error type for this failure mode.
    wire_type = "budget_exceeded"


class OverloadedError(ReproError):
    """Raised when the service sheds a request instead of queueing it.

    Admission control (bounded per-session queues, a global in-flight
    cap, a connection cap) answers over-limit work immediately with this
    error rather than letting queues grow without bound.  The service
    renders it with wire type ``overloaded`` plus a ``retry_after`` hint
    in seconds; it is load feedback, not a verdict, and is never cached.
    """

    #: The service's structured error type for this failure mode.
    wire_type = "overloaded"

    def __init__(self, message: str, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = retry_after


class WorkerCrashError(SolverError):
    """Raised when the parallel worker pool is lost beyond recovery.

    The pool detects dead workers by exitcode, requeues their in-flight
    tasks and respawns replacements; only when crashes exhaust the
    respawn budget *and* no live worker remains does this escape — and
    then callers degrade to the sequential ``jobs=1`` path, whose
    verdicts the parallel path is differentially pinned to.
    """

    def __init__(self, message: str, crashes: int = 0, respawns: int = 0):
        super().__init__(message)
        self.crashes = crashes
        self.respawns = respawns
