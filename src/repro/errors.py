"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses separate the main failure
modes: malformed inputs (parsing), ill-formed models (validation), problems
that are provably undecidable in general (where only bounded semi-decision
is offered), and configured complexity limits being exceeded.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when textual input (DTD, XML, regex, constraint) is malformed.

    Carries optional position information for diagnostics.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class InvalidDTDError(ReproError):
    """Raised when a DTD violates the well-formedness rules of Definition 2.1.

    Examples: the root element type occurring in a content model, a content
    model referencing an undeclared element type, or attribute sets that
    overlap element-type names.
    """


class InvalidTreeError(ReproError):
    """Raised when an XML tree value violates Definition 2.2 structurally.

    This is about *structural* integrity of the tree object itself (parent
    maps, label domains), not about conformance to a DTD; conformance
    failures are reported as data, not exceptions.
    """


class InvalidConstraintError(ReproError):
    """Raised when a constraint is ill-formed over a given DTD.

    Examples: a key over an element type the DTD does not declare, or an
    inclusion constraint whose attribute lists have different lengths.
    """


class UndecidableProblemError(ReproError):
    """Raised when an exact answer is requested for an undecidable problem.

    The consistency and implication problems for multi-attribute keys and
    foreign keys are undecidable (Theorem 3.1, Corollary 3.4). The library
    refuses to pretend otherwise; callers should use the bounded
    semi-decision procedures instead.
    """


class ComplexityLimitError(ReproError):
    """Raised when an exact procedure would exceed a configured limit.

    For instance, the set-representation system of Theorem 5.1 is
    exponential in the number of attribute pairs occurring in (negated)
    inclusion constraints; beyond the configured cap we raise instead of
    silently consuming unbounded memory.
    """


class SolverError(ReproError):
    """Raised when an ILP backend fails for reasons other than infeasibility.

    Infeasibility is a normal answer and is returned as data; this exception
    signals numerical failure, an unbounded relaxation where boundedness was
    required, or a missing optional backend.
    """
