"""A minimal XML parser producing :class:`~repro.xmltree.model.XMLTree`.

Supports elements, attributes, character data with the five predefined
entities, comments, processing instructions, an XML declaration and a
DOCTYPE (skipped). This is intentionally small — the offline environment
ships no XML library, and the paper's model needs nothing more. It is not
a general-purpose XML 1.0 processor (no namespaces, CDATA sections or
external entities).

Whitespace-only text between elements is dropped by default, since the
formal model only has text nodes where the DTD puts the string type.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.xmltree.model import Element, TextNode, XMLTree

_NAME = r"[A-Za-z_:][A-Za-z0-9._:\-]*"
_NAME_RE = re.compile(_NAME)
_ATTR_RE = re.compile(rf"\s*({_NAME})\s*=\s*(\"[^\"]*\"|'[^']*')")
_ENTITIES = {
    "&amp;": "&",
    "&lt;": "<",
    "&gt;": ">",
    "&quot;": '"',
    "&apos;": "'",
}


def _unescape(value: str) -> str:
    def replace(match: re.Match[str]) -> str:
        entity = match.group(0)
        if entity in _ENTITIES:
            return _ENTITIES[entity]
        if entity.startswith("&#x") or entity.startswith("&#X"):
            return chr(int(entity[3:-1], 16))
        if entity.startswith("&#"):
            return chr(int(entity[2:-1]))
        raise ParseError(f"unknown entity {entity!r}")

    return re.sub(r"&#?[A-Za-z0-9]+;", replace, value)


class _XMLParser:
    def __init__(self, source: str, drop_whitespace: bool):
        self._source = source
        self._pos = 0
        self._drop_whitespace = drop_whitespace

    def parse(self) -> XMLTree:
        self._skip_misc()
        root = self._parse_element()
        self._skip_misc()
        if self._pos != len(self._source):
            raise ParseError("content after document element", self._pos)
        return XMLTree(root)

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, PIs, XML declaration and DOCTYPE."""
        while self._pos < len(self._source):
            rest = self._source[self._pos:]
            if rest[:1].isspace():
                self._pos += 1
            elif rest.startswith("<!--"):
                end = self._source.find("-->", self._pos + 4)
                if end < 0:
                    raise ParseError("unterminated comment", self._pos)
                self._pos = end + 3
            elif rest.startswith("<?"):
                end = self._source.find("?>", self._pos + 2)
                if end < 0:
                    raise ParseError("unterminated processing instruction", self._pos)
                self._pos = end + 2
            elif rest.startswith("<!DOCTYPE"):
                depth = 0
                index = self._pos
                while index < len(self._source):
                    char = self._source[index]
                    if char == "<":
                        depth += 1
                    elif char == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    index += 1
                if depth != 0:
                    raise ParseError("unterminated DOCTYPE", self._pos)
                self._pos = index + 1
            else:
                return

    def _parse_element(self) -> Element:
        if not self._source.startswith("<", self._pos):
            raise ParseError("expected element start tag", self._pos)
        name_match = _NAME_RE.match(self._source, self._pos + 1)
        if name_match is None:
            raise ParseError("invalid element name", self._pos + 1)
        label = name_match.group(0)
        cursor = name_match.end()
        attrs: dict[str, str] = {}
        while True:
            attr_match = _ATTR_RE.match(self._source, cursor)
            if attr_match is None:
                break
            name = attr_match.group(1)
            if name in attrs:
                raise ParseError(f"duplicate attribute {name!r}", cursor)
            attrs[name] = _unescape(attr_match.group(2)[1:-1])
            cursor = attr_match.end()
        while cursor < len(self._source) and self._source[cursor].isspace():
            cursor += 1
        if self._source.startswith("/>", cursor):
            self._pos = cursor + 2
            return Element(label, attrs=attrs)
        if not self._source.startswith(">", cursor):
            raise ParseError(f"malformed start tag for {label!r}", cursor)
        self._pos = cursor + 1
        children = self._parse_content(label)
        return Element(label, children=children, attrs=attrs)

    def _parse_content(self, label: str) -> list[Element | TextNode]:
        children: list[Element | TextNode] = []
        buffer: list[str] = []

        def flush_text() -> None:
            if not buffer:
                return
            value = _unescape("".join(buffer))
            buffer.clear()
            if self._drop_whitespace and not value.strip():
                return
            children.append(TextNode(value))

        while True:
            if self._pos >= len(self._source):
                raise ParseError(f"unterminated element {label!r}", self._pos)
            if self._source.startswith("</", self._pos):
                flush_text()
                end_match = _NAME_RE.match(self._source, self._pos + 2)
                if end_match is None or end_match.group(0) != label:
                    raise ParseError(f"mismatched end tag for {label!r}", self._pos)
                cursor = end_match.end()
                while cursor < len(self._source) and self._source[cursor].isspace():
                    cursor += 1
                if not self._source.startswith(">", cursor):
                    raise ParseError(f"malformed end tag for {label!r}", cursor)
                self._pos = cursor + 1
                return children
            if self._source.startswith("<!--", self._pos):
                end = self._source.find("-->", self._pos + 4)
                if end < 0:
                    raise ParseError("unterminated comment", self._pos)
                self._pos = end + 3
                continue
            if self._source.startswith("<", self._pos):
                flush_text()
                children.append(self._parse_element())
                continue
            buffer.append(self._source[self._pos])
            self._pos += 1


def parse_xml(source: str, drop_whitespace: bool = True) -> XMLTree:
    """Parse XML markup into an :class:`XMLTree`.

    >>> t = parse_xml('<db><item id="1"/><item id="2"/></db>')
    >>> len(t.ext("item"))
    2
    """
    return _XMLParser(source, drop_whitespace).parse()
