"""XML trees as defined in Definition 2.2 of Fan & Libkin.

A tree ``T = (V, lab, ele, att, val, root)`` is represented object-style:
:class:`~repro.xmltree.model.Element` nodes carry a label, an ordered list
of children (elements and text nodes) and a mapping of attribute names to
string values; :class:`~repro.xmltree.model.TextNode` carries a string.
Node equality is *identity*, matching the paper's two-notions-of-equality
semantics for keys (values compare as strings, nodes compare as nodes).
"""

from repro.xmltree.builder import element, text
from repro.xmltree.model import Element, TextNode, XMLTree
from repro.xmltree.parse import parse_xml
from repro.xmltree.serialize import tree_to_string
from repro.xmltree.transform import splice_types
from repro.xmltree.validate import TreeValidator, ValidationReport, conforms

__all__ = [
    "Element",
    "TextNode",
    "XMLTree",
    "element",
    "text",
    "conforms",
    "TreeValidator",
    "ValidationReport",
    "tree_to_string",
    "parse_xml",
    "splice_types",
]
