"""Structural tree transformations.

:func:`splice_types` implements the contraction direction of Lemma 4.3: a
tree valid with respect to a *simplified* DTD becomes a tree valid with
respect to the original DTD by removing every element whose type was
generated during simplification and splicing its children into the parent's
child list. Generated types never carry attributes, so the contraction
preserves ``|ext(tau)|`` and ``ext(tau.l)`` for all original ``tau, l``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import InvalidTreeError
from repro.xmltree.model import Element, TextNode, XMLTree


def splice_types(tree: XMLTree, drop: Iterable[str] | Callable[[str], bool]) -> XMLTree:
    """Remove elements with dropped labels, splicing children into parents.

    ``drop`` is either a collection of labels or a predicate on labels.
    The root must not be dropped; dropped elements must carry no attributes
    (both would make the operation meaningless for Lemma 4.3).

    >>> from repro.xmltree.builder import element
    >>> t = XMLTree(element("r", element("~1", element("a"), element("b"))))
    >>> [e.label for e in splice_types(t, {"~1"}).elements()]
    ['r', 'a', 'b']
    """
    if callable(drop):
        should_drop = drop
    else:
        labels = set(drop)
        should_drop = labels.__contains__

    if should_drop(tree.root.label):
        raise InvalidTreeError("cannot splice away the root element")

    # Iterative rebuild (witness trees can be deeper than the default
    # Python recursion limit): walk the original tree with an explicit
    # stack, keeping a parallel stack of rebuilt parents to append into.
    # Dropped elements contribute no rebuilt node — their children are
    # appended into the nearest kept ancestor, preserving order.
    new_root = Element(tree.root.label, attrs=dict(tree.root.attrs))
    stack: list[tuple[Element | TextNode, Element]] = [
        (child, new_root) for child in reversed(tree.root.children)
    ]
    while stack:
        node, target = stack.pop()
        if isinstance(node, TextNode):
            target.children.append(TextNode(node.value))
            continue
        if should_drop(node.label):
            if node.attrs:
                raise InvalidTreeError(
                    f"cannot splice element {node.label!r}: it has attributes"
                )
            # Splice: the children flow into the same target, in order.
            for child in reversed(node.children):
                stack.append((child, target))
            continue
        rebuilt = Element(node.label, attrs=dict(node.attrs))
        target.children.append(rebuilt)
        for child in reversed(node.children):
            stack.append((child, rebuilt))
    return XMLTree(new_root)
