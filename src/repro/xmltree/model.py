"""Node-labelled ordered trees (Definition 2.2).

The paper's ``T = (V, lab, ele, att, val, root)`` maps onto:

* ``V`` — the set of :class:`Element` and :class:`TextNode` objects (the
  attribute nodes of the formal model are folded into each element's
  ``attrs`` mapping: ``att(v, l)`` is the entry ``v.attrs[l]`` and ``val``
  of that attribute node is the mapped string);
* ``lab`` — :attr:`Element.label` / the text sentinel for text nodes;
* ``ele`` — :attr:`Element.children` (ordered);
* ``root`` — :attr:`XMLTree.root`.

Elements use identity equality: two distinct nodes with equal labels and
values are different nodes, exactly as required by the key semantics
(``x = y`` iff same node).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import InvalidTreeError
from repro.regex.ast import TEXT_SYMBOL


class TextNode:
    """A text node; ``lab`` is ``S`` and ``val`` is :attr:`value`."""

    __slots__ = ("value",)

    def __init__(self, value: str = ""):
        if not isinstance(value, str):
            raise InvalidTreeError(f"text value must be a string, got {type(value).__name__}")
        self.value = value

    def __repr__(self) -> str:
        return f"TextNode({self.value!r})"


class Element:
    """An element node with ordered children and string-valued attributes."""

    __slots__ = ("label", "attrs", "children")

    def __init__(
        self,
        label: str,
        children: list["Element | TextNode"] | None = None,
        attrs: dict[str, str] | None = None,
    ):
        if not isinstance(label, str) or not label:
            raise InvalidTreeError(f"element label must be a non-empty string, got {label!r}")
        self.label = label
        self.children = list(children) if children else []
        self.attrs = dict(attrs) if attrs else {}

    def child_word(self) -> list[str]:
        """The label sequence of the children (text nodes appear as ``S``)."""
        word = []
        for child in self.children:
            if isinstance(child, TextNode):
                word.append(TEXT_SYMBOL)
            else:
                word.append(child.label)
        return word

    def __repr__(self) -> str:
        return f"Element({self.label!r}, children={len(self.children)}, attrs={self.attrs!r})"


class XMLTree:
    """A rooted XML tree.

    >>> from repro.xmltree.builder import element
    >>> t = XMLTree(element("db", element("item", id="1")))
    >>> [e.label for e in t.elements()]
    ['db', 'item']
    >>> t.attr_values("item", "id")
    ['1']
    """

    __slots__ = ("root",)

    def __init__(self, root: Element):
        if not isinstance(root, Element):
            raise InvalidTreeError("tree root must be an Element")
        self.root = root
        self.validate_structure()

    def validate_structure(self) -> None:
        """Check tree-ness: no node object occurs twice (no sharing, no cycles).

        Definition 2.2 requires a unique parent-child path from the root to
        every node; with object identity this amounts to every node object
        appearing exactly once in the traversal.
        """
        seen: set[int] = set()
        stack: list[Element | TextNode] = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                raise InvalidTreeError(
                    f"node {node!r} occurs more than once; XML trees do not share nodes"
                )
            seen.add(id(node))
            if isinstance(node, Element):
                for attr, value in node.attrs.items():
                    if not isinstance(value, str):
                        raise InvalidTreeError(
                            f"attribute {attr!r} of {node.label!r} has non-string value {value!r}"
                        )
                stack.extend(node.children)

    def nodes(self) -> Iterator[Element | TextNode]:
        """All nodes in document order (pre-order)."""
        stack: list[Element | TextNode] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def elements(self) -> Iterator[Element]:
        """All element nodes in document order."""
        for node in self.nodes():
            if isinstance(node, Element):
                yield node

    def ext(self, label: str) -> list[Element]:
        """``ext(tau)``: all elements labelled ``label``, in document order."""
        return [node for node in self.elements() if node.label == label]

    def attr_values(self, label: str, attr: str) -> list[str]:
        """The multiset ``[x.l for x in ext(tau)]`` in document order.

        Only elements that actually carry the attribute contribute (in a
        DTD-conformant tree every ``tau`` element carries all of ``R(tau)``).
        """
        return [
            node.attrs[attr]
            for node in self.ext(label)
            if attr in node.attrs
        ]

    def ext_attr(self, label: str, attr: str) -> set[str]:
        """``ext(tau.l)``: the *set* of ``l``-attribute values of ``tau`` elements."""
        return set(self.attr_values(label, attr))

    def size(self) -> int:
        """Total number of element and text nodes."""
        return sum(1 for _ in self.nodes())

    def copy(self) -> "XMLTree":
        """Deep copy (fresh node objects; iterative, depth-safe)."""
        new_root = Element(self.root.label, attrs=dict(self.root.attrs))
        stack: list[tuple[Element | TextNode, Element]] = [
            (child, new_root) for child in reversed(self.root.children)
        ]
        while stack:
            node, target = stack.pop()
            if isinstance(node, TextNode):
                target.children.append(TextNode(node.value))
                continue
            cloned = Element(node.label, attrs=dict(node.attrs))
            target.children.append(cloned)
            for child in reversed(node.children):
                stack.append((child, cloned))
        return XMLTree(new_root)
