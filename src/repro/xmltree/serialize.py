"""Serialization of XML trees to markup text."""

from __future__ import annotations

from repro.xmltree.model import Element, TextNode, XMLTree

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}

_ATTR_ESCAPES = dict(_ESCAPES)
_ATTR_ESCAPES['"'] = "&quot;"


def _escape(value: str, table: dict[str, str]) -> str:
    for char, replacement in table.items():
        value = value.replace(char, replacement)
    return value


def _render(root: Element | TextNode, pretty: bool, out: list[str]) -> None:
    """Iterative pre/post-order rendering (depth-safe for deep witnesses)."""
    stack: list[tuple[str, Element | TextNode | str, int]] = [("open", root, 0)]
    while stack:
        action, node, indent = stack.pop()
        pad = "  " * indent if pretty else ""
        if action == "close":
            assert isinstance(node, str)
            out.append(f"{pad}</{node}>")
            continue
        if isinstance(node, TextNode):
            out.append(f"{pad}{_escape(node.value, _ESCAPES)}")
            continue
        assert isinstance(node, Element)
        attrs = "".join(
            f' {name}="{_escape(value, _ATTR_ESCAPES)}"'
            for name, value in sorted(node.attrs.items())
        )
        if not node.children:
            out.append(f"{pad}<{node.label}{attrs}/>")
            continue
        if all(isinstance(child, TextNode) for child in node.children):
            inner = "".join(
                _escape(child.value, _ESCAPES)
                for child in node.children
                if isinstance(child, TextNode)
            )
            out.append(f"{pad}<{node.label}{attrs}>{inner}</{node.label}>")
            continue
        out.append(f"{pad}<{node.label}{attrs}>")
        stack.append(("close", node.label, indent))
        for child in reversed(node.children):
            stack.append(("open", child, indent + 1))


def tree_to_string(tree: XMLTree, pretty: bool = True) -> str:
    """Render ``tree`` as XML markup.

    >>> from repro.xmltree.builder import element, text
    >>> from repro.xmltree.model import XMLTree
    >>> print(tree_to_string(XMLTree(element("a", element("b", text("hi"), k="v")))))
    <a>
      <b k="v">hi</b>
    </a>
    """
    out: list[str] = []
    _render(tree.root, pretty, out)
    return "\n".join(out) if pretty else "".join(out)
