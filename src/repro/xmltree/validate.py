"""Conformance checking ``T |= D`` (Definition 2.2).

A tree is valid with respect to a DTD when

* the root is labelled with the DTD's root type;
* every element's label is a declared element type;
* every element's child-label word belongs to the language of its content
  model (checked with a cached Glushkov automaton);
* every element of type ``tau`` carries exactly the attributes ``R(tau)``,
  each with a string value (attributes are total and single-valued).

Failures are collected into a :class:`ValidationReport` rather than raised:
non-conformance is an ordinary answer, not an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtd.model import DTD
from repro.regex.glushkov import GlushkovAutomaton
from repro.xmltree.model import XMLTree


@dataclass
class ValidationReport:
    """Outcome of a conformance check; truthy iff the tree conforms."""

    ok: bool
    errors: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


class TreeValidator:
    """Reusable validator with per-element-type automaton caching."""

    def __init__(self, dtd: DTD):
        self._dtd = dtd
        self._automata: dict[str, GlushkovAutomaton] = {}

    @property
    def dtd(self) -> DTD:
        """The DTD this validator checks against."""
        return self._dtd

    def _automaton(self, tau: str) -> GlushkovAutomaton:
        cached = self._automata.get(tau)
        if cached is None:
            cached = GlushkovAutomaton(self._dtd.content[tau])
            self._automata[tau] = cached
        return cached

    def validate(self, tree: XMLTree, max_errors: int = 20) -> ValidationReport:
        """Check ``tree |= dtd``; collect up to ``max_errors`` messages."""
        errors: list[str] = []
        types = set(self._dtd.element_types)

        def report(message: str) -> bool:
            errors.append(message)
            return len(errors) >= max_errors

        if tree.root.label != self._dtd.root:
            report(
                f"root is labelled {tree.root.label!r}, expected {self._dtd.root!r}"
            )
        for node in tree.elements():
            if len(errors) >= max_errors:
                break
            if node.label not in types:
                if report(f"element type {node.label!r} is not declared in the DTD"):
                    break
                continue
            word = node.child_word()
            if not self._automaton(node.label).accepts(word):
                if report(
                    f"children of a {node.label!r} element form "
                    f"{word!r}, not in L({self._dtd.content[node.label]})"
                ):
                    break
            expected = self._dtd.attrs(node.label)
            actual = set(node.attrs)
            missing = expected - actual
            extra = actual - expected
            if missing:
                if report(
                    f"a {node.label!r} element lacks required attributes {sorted(missing)}"
                ):
                    break
            if extra:
                if report(
                    f"a {node.label!r} element has undeclared attributes {sorted(extra)}"
                ):
                    break
        return ValidationReport(ok=not errors, errors=errors)


def conforms(tree: XMLTree, dtd: DTD) -> ValidationReport:
    """One-shot conformance check ``tree |= dtd``.

    >>> from repro.dtd.model import DTD
    >>> from repro.xmltree.builder import element
    >>> from repro.xmltree.model import XMLTree
    >>> d = DTD.build("db", {"db": "(item*)", "item": "EMPTY"})
    >>> bool(conforms(XMLTree(element("db", element("item"))), d))
    True
    >>> bool(conforms(XMLTree(element("db", element("unknown"))), d))
    False
    """
    return TreeValidator(dtd).validate(tree)
