"""Concise construction helpers for XML trees.

>>> from repro.xmltree.builder import element, text
>>> from repro.xmltree.model import XMLTree
>>> tree = XMLTree(
...     element(
...         "teachers",
...         element(
...             "teacher",
...             element("teach",
...                     element("subject", text("XML"), taught_by="Joe"),
...                     element("subject", text("DB"), taught_by="Joe")),
...             element("research", text("Web DB")),
...             name="Joe",
...         ),
...     )
... )
>>> tree.root.label
'teachers'
"""

from __future__ import annotations

from repro.errors import InvalidTreeError
from repro.xmltree.model import Element, TextNode


def element(label: str, *children: Element | TextNode | str, **attrs: str) -> Element:
    """Build an element; string children become text nodes.

    Attribute values must be strings (the model is string-typed).
    """
    materialized: list[Element | TextNode] = []
    for child in children:
        if isinstance(child, str):
            materialized.append(TextNode(child))
        elif isinstance(child, (Element, TextNode)):
            materialized.append(child)
        else:
            raise InvalidTreeError(f"invalid child {child!r} for element {label!r}")
    for name, value in attrs.items():
        if not isinstance(value, str):
            raise InvalidTreeError(
                f"attribute {name!r} of {label!r} must be a string, got {value!r}"
            )
    return Element(label, children=materialized, attrs=attrs)


def text(value: str) -> TextNode:
    """Build a text node."""
    return TextNode(value)
