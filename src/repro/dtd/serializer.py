"""Serialization of DTDs back to declaration syntax."""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.regex.ast import Concat, Epsilon, Regex, Text, Union


def _content_to_text(expr: Regex) -> str:
    """Render a content model in declaration syntax (always parenthesized
    except for ``EMPTY``, matching common DTD style)."""
    if isinstance(expr, Epsilon):
        return "EMPTY"
    if isinstance(expr, (Concat, Union, Text)):
        return f"({expr})"
    rendered = str(expr)
    if rendered.startswith("("):
        return rendered
    return f"({rendered})"


def dtd_to_string(dtd: DTD) -> str:
    """Render ``dtd`` as ``<!ELEMENT ...>`` / ``<!ATTLIST ...>`` text.

    The root element is emitted first so that
    ``parse_dtd(dtd_to_string(d))`` reconstructs the same DTD including its
    root choice.
    """
    order = [dtd.root] + [t for t in dtd.element_types if t != dtd.root]
    lines: list[str] = []
    for tau in order:
        lines.append(f"<!ELEMENT {tau} {_content_to_text(dtd.content[tau])}>")
    for tau in order:
        names = sorted(dtd.attrs(tau))
        if names:
            decls = " ".join(f"{name} CDATA #REQUIRED" for name in names)
            lines.append(f"<!ATTLIST {tau} {decls}>")
    return "\n".join(lines) + "\n"
