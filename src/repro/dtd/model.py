"""The formal DTD model of Definition 2.1.

``DTD(element_types, attributes, content, attrs_of, root)`` mirrors
``D = (E, A, P, R, r)``. Well-formedness (checked by :meth:`DTD.validate`,
which the constructor calls) enforces the paper's standing assumptions:

* ``E`` and ``A`` are disjoint finite sets of names;
* ``P(tau)`` is defined for every ``tau`` in ``E`` and references only
  declared element types;
* ``R(tau) ⊆ A`` for every ``tau`` in ``E``;
* the root ``r`` is in ``E`` and does **not** occur in any content model
  (the paper assumes this without loss of generality; Definition 2.2 makes
  any tree with a nested root-labelled node invalid anyway).

Connectivity of every type to the root is *not* required here — unreachable
types are harmless to all algorithms (they can never occur in a valid tree)
and :func:`repro.dtd.analysis.reachable_types` reports them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.errors import InvalidDTDError
from repro.regex.analysis import alphabet
from repro.regex.ast import Regex, TEXT_SYMBOL
from repro.regex.parser import parse_content_model

#: Element-type and attribute names are XML-style names, plus ``~`` which is
#: reserved for internally generated types (the content-model *parser* never
#: produces ``~``, so parsed DTDs cannot collide with generated names; the
#: simplifier additionally checks for collisions in programmatic DTDs).
_NAME_RE = re.compile(r"^[A-Za-z_:~][A-Za-z0-9._:\-~]*$")


def _check_name(name: str, kind: str) -> None:
    if not _NAME_RE.match(name):
        raise InvalidDTDError(f"invalid {kind} name {name!r}")


@dataclass(frozen=True)
class DTD:
    """A DTD ``D = (E, A, P, R, r)``.

    Parameters
    ----------
    element_types:
        The set ``E`` (stored as a sorted tuple for determinism).
    attributes:
        The set ``A``.
    content:
        The mapping ``P`` from element types to content models.
    attrs_of:
        The mapping ``R`` from element types to their attribute sets.
        Types may be omitted; they default to the empty set.
    root:
        The root element type ``r``.

    Use :meth:`DTD.build` for a concise literal syntax, or
    :func:`repro.dtd.parser.parse_dtd` for real DTD text.
    """

    element_types: tuple[str, ...]
    attributes: tuple[str, ...]
    content: Mapping[str, Regex]
    attrs_of: Mapping[str, frozenset[str]]
    root: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "element_types", tuple(sorted(set(self.element_types))))
        object.__setattr__(self, "attributes", tuple(sorted(set(self.attributes))))
        object.__setattr__(self, "content", dict(self.content))
        normalized = {tau: frozenset(attrs) for tau, attrs in self.attrs_of.items()}
        for tau in self.element_types:
            normalized.setdefault(tau, frozenset())
        object.__setattr__(self, "attrs_of", normalized)
        self.validate()

    @classmethod
    def build(
        cls,
        root: str,
        content: Mapping[str, Regex | str],
        attrs: Mapping[str, Iterable[str]] | None = None,
    ) -> "DTD":
        """Build a DTD from string or AST content models.

        >>> d1 = DTD.build(
        ...     "teachers",
        ...     {
        ...         "teachers": "(teacher, teacher*)",
        ...         "teacher": "(teach, research)",
        ...         "teach": "(subject, subject)",
        ...         "subject": "(#PCDATA)",
        ...         "research": "(#PCDATA)",
        ...     },
        ...     attrs={"teacher": ["name"], "subject": ["taught_by"]},
        ... )
        >>> d1.root
        'teachers'
        """
        parsed = {
            tau: parse_content_model(model) if isinstance(model, str) else model
            for tau, model in content.items()
        }
        attrs = attrs or {}
        attribute_names = sorted({a for names in attrs.values() for a in names})
        return cls(
            element_types=tuple(parsed),
            attributes=tuple(attribute_names),
            content=parsed,
            attrs_of={tau: frozenset(names) for tau, names in attrs.items()},
            root=root,
        )

    def validate(self) -> None:
        """Raise :class:`InvalidDTDError` if Definition 2.1 is violated."""
        types = set(self.element_types)
        attributes = set(self.attributes)
        for name in types:
            _check_name(name, "element type")
        for name in attributes:
            _check_name(name, "attribute")
        overlap = types & attributes
        if overlap:
            raise InvalidDTDError(
                f"element types and attributes must be disjoint: {sorted(overlap)}"
            )
        if self.root not in types:
            raise InvalidDTDError(f"root type {self.root!r} is not a declared element type")
        missing = types - set(self.content)
        if missing:
            raise InvalidDTDError(f"missing content models for {sorted(missing)}")
        extra = set(self.content) - types
        if extra:
            raise InvalidDTDError(f"content models for undeclared types {sorted(extra)}")
        for tau, expr in self.content.items():
            used = alphabet(expr) - {TEXT_SYMBOL}
            unknown = used - types
            if unknown:
                raise InvalidDTDError(
                    f"content model of {tau!r} references undeclared types {sorted(unknown)}"
                )
            if self.root in used:
                raise InvalidDTDError(
                    f"root type {self.root!r} occurs in the content model of {tau!r}; "
                    "Definition 2.1 assumes the root never occurs in content models"
                )
        for tau, names in self.attrs_of.items():
            if tau not in types:
                raise InvalidDTDError(f"attributes declared for undeclared type {tau!r}")
            unknown_attrs = set(names) - attributes
            if unknown_attrs:
                raise InvalidDTDError(
                    f"type {tau!r} uses undeclared attributes {sorted(unknown_attrs)}"
                )

    def attrs(self, tau: str) -> frozenset[str]:
        """The attribute set ``R(tau)`` (empty for unknown types)."""
        return self.attrs_of.get(tau, frozenset())

    def has_attr(self, tau: str, attr: str) -> bool:
        """Is ``attr`` defined for element type ``tau``?"""
        return attr in self.attrs(tau)

    def attribute_pairs(self) -> list[tuple[str, str]]:
        """All ``(tau, l)`` pairs with ``l ∈ R(tau)``, in deterministic order."""
        return [
            (tau, attr)
            for tau in self.element_types
            for attr in sorted(self.attrs_of.get(tau, frozenset()))
        ]

    def size(self) -> int:
        """A crude size measure |D| used in scaling benchmarks."""
        total = len(self.element_types) + len(self.attributes)
        for expr in self.content.values():
            total += len(str(expr))
        return total
