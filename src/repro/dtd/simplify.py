"""DTD simplification: the binary normal form of Section 4.1.

A *simple* DTD restricts every production to one of the forms

    tau -> tau1, tau2     (SeqRule)
    tau -> tau1 | tau2    (AltRule)
    tau -> tau1           (OneRule; tau1 may also be the string type S)
    tau -> S              (OneRule with the text symbol)
    tau -> epsilon        (EpsRule)

obtained from an arbitrary DTD by introducing fresh element types for
compound subexpressions; Kleene stars become right recursion
(``tau* ==> t -> eps | (tau, t)``), exactly as in the paper. Fresh types
never carry attributes, so for every original type ``tau`` and attribute
``l`` the quantities ``|ext(tau)|`` and ``ext(tau.l)`` are preserved between
the original and the simplified DTD (Lemma 4.3); tests exercise this via
the tree expansion/contraction pair in :mod:`repro.xmltree.transform`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.dtd.model import DTD
from repro.regex.ast import (
    EPSILON,
    TEXT_SYMBOL,
    Concat,
    Epsilon,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Text,
    Union,
)


class SimpleRule:
    """Base class for the four production forms of a simple DTD."""

    __slots__ = ()

    def symbols(self) -> tuple[str, ...]:
        """Symbols on the right-hand side, in slot order."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class EpsRule(SimpleRule):
    """``tau -> epsilon``."""

    def symbols(self) -> tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True, slots=True)
class OneRule(SimpleRule):
    """``tau -> a`` for a single symbol ``a`` (element type or text)."""

    symbol: str

    def symbols(self) -> tuple[str, ...]:
        return (self.symbol,)

    def __str__(self) -> str:
        return self.symbol


@dataclass(frozen=True, slots=True)
class SeqRule(SimpleRule):
    """``tau -> a, b``: every ``tau`` element has exactly these two children."""

    first: str
    second: str

    def symbols(self) -> tuple[str, ...]:
        return (self.first, self.second)

    def __str__(self) -> str:
        return f"{self.first}, {self.second}"


@dataclass(frozen=True, slots=True)
class AltRule(SimpleRule):
    """``tau -> a | b``: every ``tau`` element has one child, of either type."""

    left: str
    right: str

    def symbols(self) -> tuple[str, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


@dataclass(frozen=True)
class SimpleDTD:
    """A simplified DTD ``D_N`` together with its provenance.

    ``types`` lists all element types (original first, then generated);
    ``rules`` maps each type to its :class:`SimpleRule`; attributes are
    inherited from the original DTD for original types and empty for
    generated ones.
    """

    original: DTD
    types: tuple[str, ...]
    rules: dict[str, SimpleRule]
    root: str

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_original_types", frozenset(self.original.element_types)
        )

    @property
    def original_types(self) -> frozenset[str]:
        """The element types of the original DTD."""
        return self._original_types  # type: ignore[attr-defined]

    def is_original(self, tau: str) -> bool:
        """Was ``tau`` declared in the original DTD (vs generated)?"""
        return tau in self.original_types

    def attrs(self, tau: str) -> frozenset[str]:
        """``R_N(tau)``: original attributes, empty for generated types."""
        if self.is_original(tau):
            return self.original.attrs(tau)
        return frozenset()

    def symbols(self) -> tuple[str, ...]:
        """All node labels: element types plus the text symbol."""
        return self.types + (TEXT_SYMBOL,)

    def occurrences(self) -> Iterator[tuple[int, str, str]]:
        """All occurrence sites ``(slot, child_symbol, parent_type)``.

        Slots are 1-based and correspond to the occurrence variables
        ``x^i_{a,tau}`` of the paper's encoding.
        """
        for tau in self.types:
            rule = self.rules[tau]
            for slot, symbol in enumerate(rule.symbols(), start=1):
                yield slot, symbol, tau

    def to_dtd(self) -> DTD:
        """View the simple DTD as an ordinary :class:`DTD`.

        Useful for validating trees against ``D_N`` with the standard
        validator (Lemma 4.3 tests).
        """
        content: dict[str, Regex] = {}
        for tau in self.types:
            rule = self.rules[tau]
            if isinstance(rule, EpsRule):
                content[tau] = EPSILON
            elif isinstance(rule, OneRule):
                content[tau] = _symbol_to_regex(rule.symbol)
            elif isinstance(rule, SeqRule):
                content[tau] = Concat((_symbol_to_regex(rule.first),
                                       _symbol_to_regex(rule.second)))
            elif isinstance(rule, AltRule):
                content[tau] = Union((_symbol_to_regex(rule.left),
                                      _symbol_to_regex(rule.right)))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown rule {rule!r}")
        attrs = {tau: self.attrs(tau) for tau in self.types}
        return DTD(
            element_types=self.types,
            attributes=self.original.attributes,
            content=content,
            attrs_of=attrs,
            root=self.root,
        )


def _symbol_to_regex(symbol: str) -> Regex:
    from repro.regex.ast import TEXT

    return TEXT if symbol == TEXT_SYMBOL else Name(symbol)


class _Simplifier:
    """Worklist-driven rewriting of content models into simple rules."""

    def __init__(self, dtd: DTD):
        self._dtd = dtd
        self._used: set[str] = set(dtd.element_types)
        self._counter = 0
        self._rules: dict[str, SimpleRule] = {}
        self._order: list[str] = list(dtd.element_types)
        self._pending: list[tuple[str, Regex]] = []
        self._eps_type: str | None = None

    def run(self) -> SimpleDTD:
        for tau in self._dtd.element_types:
            self._pending.append((tau, self._dtd.content[tau]))
        while self._pending:
            tau, expr = self._pending.pop()
            self._rules[tau] = self._rewrite(tau, expr)
        return SimpleDTD(
            original=self._dtd,
            types=tuple(self._order),
            rules=self._rules,
            root=self._dtd.root,
        )

    def _fresh(self, expr: Regex) -> str:
        """Allocate a fresh element type whose rule derives ``expr``."""
        while True:
            self._counter += 1
            name = f"~{self._counter}"
            if name not in self._used:
                break
        self._used.add(name)
        self._order.append(name)
        self._pending.append((name, expr))
        return name

    def _eps_symbol(self) -> str:
        """The shared fresh type deriving only the empty word."""
        if self._eps_type is None:
            while True:
                candidate = "~eps" if "~eps" not in self._used else f"~eps{self._counter}"
                if candidate not in self._used:
                    break
                self._counter += 1
            self._eps_type = candidate
            self._used.add(candidate)
            self._order.append(candidate)
            self._rules[candidate] = EpsRule()
        return self._eps_type

    def _symbol_of(self, expr: Regex) -> str:
        """A symbol deriving exactly ``L(expr)``, fresh if ``expr`` is compound."""
        if isinstance(expr, Name):
            return expr.symbol
        if isinstance(expr, Text):
            return TEXT_SYMBOL
        if isinstance(expr, Epsilon):
            return self._eps_symbol()
        if isinstance(expr, Star):
            # The loop type t -> eps | (item, t) derives L(item*) exactly;
            # skipping the wrapper matches the paper's D_N1 (three fresh
            # types for `teacher, teacher*`, not four).
            return self._fresh_star(expr.item)
        return self._fresh(expr)

    def _rewrite(self, tau: str, expr: Regex) -> SimpleRule:
        if isinstance(expr, Epsilon):
            return EpsRule()
        if isinstance(expr, Text):
            return OneRule(TEXT_SYMBOL)
        if isinstance(expr, Name):
            return OneRule(expr.symbol)
        if isinstance(expr, Optional):
            return self._rewrite(tau, Union((expr.item, EPSILON)))
        if isinstance(expr, Plus):
            return self._rewrite(tau, Concat((expr.item, Star(expr.item))))
        if isinstance(expr, Concat):
            head, tail = expr.items[0], expr.items[1:]
            rest: Regex = tail[0] if len(tail) == 1 else Concat(tail)
            return SeqRule(self._symbol_of(head), self._symbol_of(rest))
        if isinstance(expr, Union):
            head, tail = expr.items[0], expr.items[1:]
            rest = tail[0] if len(tail) == 1 else Union(tail)
            return AltRule(self._symbol_of(head), self._symbol_of(rest))
        if isinstance(expr, Star):
            # tau* ==> t -> eps | (item, t): right recursion, as in the paper.
            loop = self._fresh_star(expr.item)
            return OneRule(loop)
        raise TypeError(f"unknown regex node {expr!r}")

    def _fresh_star(self, item: Regex) -> str:
        """Fresh type ``t`` with ``t -> eps | (item, t)``."""
        while True:
            self._counter += 1
            name = f"~{self._counter}"
            if name not in self._used:
                break
        self._used.add(name)
        self._order.append(name)
        body = Union((EPSILON, Concat((item, Name(name)))))
        self._pending.append((name, body))
        return name


def simplify_dtd(dtd: DTD) -> SimpleDTD:
    """Simplify ``dtd`` into binary normal form (Section 4.1, Lemma 4.3).

    >>> from repro.dtd.model import DTD
    >>> d = DTD.build("r", {"r": "(a, b)*", "a": "EMPTY", "b": "EMPTY"})
    >>> simple = simplify_dtd(d)
    >>> sorted(simple.original_types)
    ['a', 'b', 'r']
    >>> all(len(rule.symbols()) <= 2 for rule in simple.rules.values())
    True
    """
    return _Simplifier(dtd).run()
