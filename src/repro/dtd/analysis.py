"""DTD-level analyses: productivity, reachability, multiplicity.

These implement the linear-time decidable problems of Section 3.3:

* :func:`has_valid_tree` — Theorem 3.5(1): does a finite tree conform to
  ``D``? Equivalent to emptiness of the associated extended CFG, decided by
  the standard productivity fixpoint.
* :func:`can_have_two` — Lemma 3.6: is there a valid tree with
  ``|ext(tau)| > 1``? Decided with a saturating occurrence-count fixpoint.
* :func:`reachable_types` / :func:`usable_types` — structural helpers used
  by the consistency encodings and workload generators.
"""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.regex.analysis import alphabet, can_derive_over, saturating_count
from repro.regex.ast import TEXT_SYMBOL


def productive_types(dtd: DTD) -> frozenset[str]:
    """Element types that derive some finite tree.

    A type ``tau`` is productive iff ``P(tau)`` can derive a word over
    productive symbols (text is always derivable: a text node is a leaf).
    Computed by the standard increasing fixpoint; terminates in at most
    ``|E|`` rounds.
    """
    productive: set[str] = set()
    changed = True
    while changed:
        changed = False
        allowed = frozenset(productive) | {TEXT_SYMBOL}
        for tau in dtd.element_types:
            if tau in productive:
                continue
            if can_derive_over(dtd.content[tau], allowed):
                productive.add(tau)
                changed = True
    return frozenset(productive)


def reachable_types(dtd: DTD) -> frozenset[str]:
    """Element types reachable from the root through content models."""
    reachable: set[str] = {dtd.root}
    frontier = [dtd.root]
    while frontier:
        tau = frontier.pop()
        for symbol in alphabet(dtd.content[tau]) - {TEXT_SYMBOL}:
            if symbol not in reachable:
                reachable.add(symbol)
                frontier.append(symbol)
    return frozenset(reachable)


def usable_types(dtd: DTD) -> frozenset[str]:
    """Types that can actually occur in some valid tree.

    A type occurs in a valid tree iff it is productive and reachable from
    the root through a context of productive types. We compute reachability
    restricted to productive types (an unproductive type on the path makes
    the whole branch underivable only if it is *unavoidable*; reachability
    here is existential, so we restrict edges to productive parents whose
    content models can embed the child alongside productive siblings).
    """
    productive = productive_types(dtd)
    if dtd.root not in productive:
        return frozenset()
    usable: set[str] = {dtd.root}
    frontier = [dtd.root]
    allowed = productive | {TEXT_SYMBOL}
    while frontier:
        tau = frontier.pop()
        expr = dtd.content[tau]
        for symbol in alphabet(expr) - {TEXT_SYMBOL}:
            if symbol in usable or symbol not in productive:
                continue
            # symbol is usable below tau iff some word of P(tau) over
            # productive symbols contains it: check derivability of a word
            # using productive symbols where `symbol` itself is permitted.
            weights = {s: 0 for s in allowed}
            weights[symbol] = 1
            count = saturating_count(expr, weights)
            if count is not None and count >= 1:
                usable.add(symbol)
                frontier.append(symbol)
    return frozenset(usable)


def has_valid_tree(dtd: DTD) -> bool:
    """Theorem 3.5(1): does any finite XML tree conform to ``dtd``?"""
    return dtd.root in productive_types(dtd)


def can_have_two(dtd: DTD, tau: str) -> bool:
    """Lemma 3.6: is there a valid tree with at least two ``tau`` elements?

    We compute, for every element type ``sigma``, the saturated maximum
    number ``cap[sigma] ∈ {0, 1, 2}`` of ``tau``-labelled nodes in any tree
    rooted at a ``sigma`` element (2 means "two or more"), by an increasing
    fixpoint: ``cap[sigma] = [sigma = tau] + max-word-weight of P(sigma)``
    where symbol weights are the current ``cap`` values and unproductive
    symbols are dead. The answer is ``cap[root] >= 2``.
    """
    if tau not in set(dtd.element_types):
        return False
    productive = productive_types(dtd)
    if dtd.root not in productive:
        return False
    cap: dict[str, int] = {sigma: 0 for sigma in productive}
    cap[TEXT_SYMBOL] = 0
    changed = True
    while changed:
        changed = False
        for sigma in productive:
            inner = saturating_count(dtd.content[sigma], cap)
            if inner is None:
                # Cannot happen for productive sigma, but stay defensive.
                continue
            value = min(2, inner + (1 if sigma == tau else 0))
            if value > cap[sigma]:
                cap[sigma] = value
                changed = True
    return cap[dtd.root] >= 2


def nondeterministic_types(dtd: DTD) -> dict[str, list[str]]:
    """Element types whose content models violate XML's determinism rule.

    The XML 1.0 standard requires 1-unambiguous content models; the
    paper's results do not depend on this, but real validating parsers
    reject violating DTDs, so the toolkit reports them. Maps each
    offending type to the symbols witnessing the ambiguity.
    """
    from repro.regex.determinism import nondeterminism_witnesses

    offenders: dict[str, list[str]] = {}
    for tau in dtd.element_types:
        witnesses = nondeterminism_witnesses(dtd.content[tau])
        if witnesses:
            offenders[tau] = witnesses
    return offenders


def required_children(dtd: DTD, tau: str) -> frozenset[str]:
    """Child element types that occur in *every* word of ``P(tau)``.

    A child ``a`` is required when ``P(tau)`` cannot derive any word over
    the remaining alphabet — i.e. a ``tau`` element can never avoid an
    ``a`` child.  These are exactly the loosening candidates of the
    repair engine (:mod:`repro.analysis.repair`): wrapping an *optional*
    child in ``?`` changes nothing, so only required children are edits.

    >>> from repro.dtd.model import DTD
    >>> d = DTD.build("r", {"r": "(a, b?, c*)", "a": "EMPTY",
    ...                     "b": "EMPTY", "c": "EMPTY"})
    >>> sorted(required_children(d, "r"))
    ['a']
    """
    expr = dtd.content[tau]
    symbols = alphabet(expr) - {TEXT_SYMBOL}
    full = symbols | {TEXT_SYMBOL}
    return frozenset(
        a for a in symbols if not can_derive_over(expr, full - {a})
    )


def must_occur(dtd: DTD, tau: str) -> bool:
    """Does every valid tree contain at least one ``tau`` element?

    Vacuously true when the DTD has no valid tree. Used by workload
    generators to build families where constraints on ``tau`` are
    unavoidable. Computed as: no tree avoiding ``tau`` exists, i.e. the
    root is unproductive once ``tau`` is removed from the alphabet.
    """
    if tau == dtd.root:
        return True
    restricted: set[str] = set()
    changed = True
    while changed:
        changed = False
        allowed = frozenset(restricted) | {TEXT_SYMBOL}
        for sigma in dtd.element_types:
            if sigma in restricted or sigma == tau:
                continue
            if can_derive_over(dtd.content[sigma], allowed):
                restricted.add(sigma)
                changed = True
    return dtd.root not in restricted
