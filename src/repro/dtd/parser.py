"""Parser for DTD declaration syntax.

Supports the subset of DTD syntax corresponding to the paper's model:

* ``<!ELEMENT name content-model>``;
* ``<!ATTLIST name attr1 CDATA #REQUIRED attr2 CDATA #REQUIRED ...>`` —
  attribute types and defaults are accepted but ignored beyond recording
  the attribute names (the paper's attributes are single-valued strings,
  i.e. effectively ``CDATA #REQUIRED``);
* ``<!-- comments -->`` anywhere between declarations.

The root element type defaults to the first declared element and can be
overridden with the ``root=`` argument. ID/IDREF attribute types are
accepted syntactically but treated as plain string attributes, matching the
paper's explicit choice to ignore DTD ID/IDREF constraints (footnote 1).
"""

from __future__ import annotations

import re

from repro.dtd.model import DTD
from repro.errors import ParseError
from repro.regex.parser import parse_content_model

_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_DECL_RE = re.compile(r"<!(?P<kind>ELEMENT|ATTLIST)\s+(?P<body>[^>]*)>", re.DOTALL)
_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9._:\-]*")

#: Attribute type keywords accepted in ATTLIST declarations.
_ATTR_TYPES = {
    "CDATA",
    "ID",
    "IDREF",
    "IDREFS",
    "NMTOKEN",
    "NMTOKENS",
    "ENTITY",
    "ENTITIES",
}

#: Attribute default keywords accepted in ATTLIST declarations.
_ATTR_DEFAULTS = {"#REQUIRED", "#IMPLIED", "#FIXED"}


def _parse_attlist_body(body: str, position: int) -> tuple[str, list[str]]:
    """Parse an ATTLIST body into ``(element_type, attribute_names)``."""
    tokens = body.split()
    if not tokens:
        raise ParseError("empty ATTLIST declaration", position)
    element_type = tokens[0]
    names: list[str] = []
    index = 1
    while index < len(tokens):
        name = tokens[index]
        if not _NAME_RE.fullmatch(name):
            raise ParseError(f"invalid attribute name {name!r} in ATTLIST", position)
        names.append(name)
        index += 1
        # Optional attribute type (CDATA, ID, ..., or an enumeration).
        if index < len(tokens) and (
            tokens[index] in _ATTR_TYPES or tokens[index].startswith("(")
        ):
            if tokens[index].startswith("("):
                while index < len(tokens) and not tokens[index].endswith(")"):
                    index += 1
            index += 1
        # Optional default declaration.
        if index < len(tokens) and tokens[index] in _ATTR_DEFAULTS:
            if tokens[index] == "#FIXED":
                index += 1  # skip the fixed value token as well
            index += 1
        elif index < len(tokens) and tokens[index].startswith('"'):
            index += 1  # a bare default value
    return element_type, names


def parse_dtd(text: str, root: str | None = None) -> DTD:
    """Parse DTD text into a :class:`~repro.dtd.model.DTD`.

    >>> d = parse_dtd('''
    ...   <!ELEMENT teachers (teacher+)>
    ...   <!ELEMENT teacher (teach, research)>
    ...   <!ELEMENT teach (subject, subject)>
    ...   <!ELEMENT subject (#PCDATA)>
    ...   <!ELEMENT research (#PCDATA)>
    ...   <!ATTLIST teacher name CDATA #REQUIRED>
    ...   <!ATTLIST subject taught_by CDATA #REQUIRED>
    ... ''')
    >>> d.root
    'teachers'
    >>> sorted(d.attrs('subject'))
    ['taught_by']
    """
    cleaned = _COMMENT_RE.sub(" ", text)
    content: dict[str, object] = {}
    attrs: dict[str, set[str]] = {}
    first_element: str | None = None
    consumed_spans: list[tuple[int, int]] = []
    for match in _DECL_RE.finditer(cleaned):
        consumed_spans.append(match.span())
        kind = match.group("kind")
        body = match.group("body").strip()
        if kind == "ELEMENT":
            parts = body.split(None, 1)
            if len(parts) != 2:
                raise ParseError("ELEMENT declaration needs a name and a content model",
                                 match.start())
            name, model_text = parts
            if name in content:
                raise ParseError(f"duplicate ELEMENT declaration for {name!r}", match.start())
            content[name] = parse_content_model(model_text)
            if first_element is None:
                first_element = name
        else:
            element_type, names = _parse_attlist_body(body, match.start())
            attrs.setdefault(element_type, set()).update(names)
    leftover = cleaned
    for start, end in reversed(consumed_spans):
        leftover = leftover[:start] + leftover[end:]
    if leftover.strip():
        raise ParseError(f"unrecognized DTD content: {leftover.strip()[:60]!r}")
    if not content:
        raise ParseError("no ELEMENT declarations found")
    for element_type in attrs:
        if element_type not in content:
            raise ParseError(f"ATTLIST for undeclared element {element_type!r}")
    chosen_root = root if root is not None else first_element
    assert chosen_root is not None
    return DTD.build(chosen_root, content, attrs={t: sorted(a) for t, a in attrs.items()})
