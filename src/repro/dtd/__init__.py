"""DTDs as defined in Definition 2.1 of Fan & Libkin.

A DTD is a tuple ``D = (E, A, P, R, r)``: element types, attributes, content
models (regular expressions over ``E`` and the string type ``S``), attribute
assignments, and a root type. This package provides:

* :mod:`repro.dtd.model` — the formal object with well-formedness checking;
* :mod:`repro.dtd.parser` / :mod:`repro.dtd.serializer` — concrete
  ``<!ELEMENT ...>`` / ``<!ATTLIST ...>`` syntax;
* :mod:`repro.dtd.analysis` — productivity (Theorem 3.5(1)), reachability,
  and ``can_have_two`` (Lemma 3.6);
* :mod:`repro.dtd.simplify` — the binary normal form of Section 4.1 with the
  count-preservation property of Lemma 4.3.
"""

from repro.dtd.analysis import (
    can_have_two,
    has_valid_tree,
    productive_types,
    reachable_types,
    usable_types,
)
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.dtd.serializer import dtd_to_string
from repro.dtd.simplify import (
    AltRule,
    EpsRule,
    OneRule,
    SeqRule,
    SimpleDTD,
    SimpleRule,
    simplify_dtd,
)

__all__ = [
    "DTD",
    "parse_dtd",
    "dtd_to_string",
    "has_valid_tree",
    "productive_types",
    "reachable_types",
    "usable_types",
    "can_have_two",
    "SimpleDTD",
    "SimpleRule",
    "EpsRule",
    "OneRule",
    "SeqRule",
    "AltRule",
    "simplify_dtd",
]
