"""Witness pipeline: solution -> skeleton -> contraction -> values.

:func:`synthesize_witness` is the composed construction used in the
equivalence proofs: Lemma 4.5 (skeleton over the simplified DTD),
Lemma 4.3 (contraction back to the original DTD), Lemma 4.4 / 5.2 (value
assignment). The caller (:mod:`repro.checkers.consistency`) re-verifies the
result against the DTD and the constraints, so encoder bugs surface as
loud errors instead of wrong answers.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.encoding.combined import ConsistencyEncoding
from repro.ilp.model import VarId
from repro.witness.skeleton import assemble_skeleton
from repro.witness.values import assign_values
from repro.xmltree.model import XMLTree
from repro.xmltree.transform import splice_types


def synthesize_witness(
    encoding: ConsistencyEncoding,
    values: Mapping[VarId, int],
    max_steps: int = 500_000,
) -> XMLTree:
    """Build an XML tree realizing a feasible solution of ``Psi(D, Sigma)``."""
    skeleton = assemble_skeleton(encoding.simple, values, max_steps=max_steps)
    contracted = splice_types(
        skeleton, lambda label: not encoding.simple.is_original(label)
    )
    assign_values(contracted, encoding.dtd, encoding, values)
    return contracted
