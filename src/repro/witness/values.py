"""Attribute value assignment (Lemmas 4.4 and 5.2, Corollary 4.9).

Given the contracted skeleton and the solved cardinalities
``k = |ext(tau.l)|``, assign string values such that:

* every pair has exactly ``k`` distinct values (matching the solution);
* keys get a bijection (``k = |ext(tau)|`` by the key row);
* negated keys get a genuine collision (``k < |ext(tau)|`` by the negated
  key row, so any surjection collides — the pigeonhole step of Cor. 4.9);
* inclusion constraints hold *set-wise*:

  - without negated inclusions, all pairs draw from one global value chain
    ``w0 < w1 < ...`` and each pair uses the prefix of its cardinality, so
    ``k1 <= k2`` gives set containment (Lemma 4.4's construction);
  - with negated inclusions, the *active* pairs take their values from the
    solved set representation (each ``z_theta`` unit is a fresh token
    shared by exactly the pairs in ``theta``), which realizes both the
    inclusions (``v_ij = 0``) and the negated inclusions (``v_ij >= 1``)
    exactly (Lemma 5.2); inactive pairs get pair-local tokens that cannot
    collide with the shared ones.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.dtd.model import DTD
from repro.encoding.cardinality import attr_var
from repro.encoding.combined import ConsistencyEncoding
from repro.encoding.setrep import extract_sets
from repro.errors import SolverError
from repro.ilp.model import VarId
from repro.xmltree.model import XMLTree


def make_all_values_distinct(tree: XMLTree, dtd: DTD) -> None:
    """Give every attribute of every element a globally unique value.

    This is the witness construction of Theorem 3.5(2): with all values
    distinct, *every* key — multi-attribute included — holds, so a set of
    keys is satisfiable over ``D`` exactly when ``D`` has any valid tree.
    """
    counter = 0
    for node in tree.elements():
        for attr in sorted(dtd.attrs(node.label)):
            node.attrs[attr] = f"u{counter}"
            counter += 1


def assign_values(
    tree: XMLTree,
    dtd: DTD,
    encoding: ConsistencyEncoding,
    values: Mapping[VarId, int],
) -> None:
    """Mutate ``tree``: give every element its attributes per the solution."""
    key_pairs = {(key.element_type, key.attrs[0]) for key in encoding.keys}
    setrep_sets: dict[tuple[str, str], list[str]] = {}
    if encoding.setrep is not None:
        setrep_sets = extract_sets(encoding.setrep, values, prefix="s")

    for tau, attr in dtd.attribute_pairs():
        nodes = tree.ext(tau)
        node_count = len(nodes)
        cardinality = values.get(attr_var(tau, attr), 0)
        if node_count == 0:
            if cardinality != 0:
                raise SolverError(
                    f"solution claims {cardinality} values for {tau}.{attr} "
                    "but the tree has no such elements"
                )
            continue
        if not 1 <= cardinality <= node_count:
            raise SolverError(
                f"|ext({tau}.{attr})| = {cardinality} is impossible with "
                f"{node_count} elements (attribute totality)"
            )
        pair = (tau, attr)
        if pair in setrep_sets:
            tokens = setrep_sets[pair]
            if len(tokens) != cardinality:
                raise SolverError(
                    f"set representation of {tau}.{attr} has {len(tokens)} "
                    f"values, solution says {cardinality}"
                )
        elif encoding.setrep is not None:
            # Inactive pair while shared tokens exist: use a pair-local
            # namespace so no accidental (non-)inclusions arise.
            tokens = [f"{tau}.{attr}:{index}" for index in range(cardinality)]
        else:
            # Lemma 4.4's global prefix chain.
            tokens = [f"w{index}" for index in range(cardinality)]

        if pair in key_pairs:
            if cardinality != node_count:
                raise SolverError(
                    f"key {tau}.{attr} requires |ext| = |ext(.l)|; solution "
                    f"has {node_count} vs {cardinality}"
                )
            for node, token in zip(nodes, tokens):
                node.attrs[attr] = token
        else:
            # Surjection onto the token set: first `cardinality` nodes get
            # distinct tokens, the rest repeat the last one (collision for
            # negated keys comes out of cardinality < node_count).
            for index, node in enumerate(nodes):
                node.attrs[attr] = tokens[min(index, cardinality - 1)]
