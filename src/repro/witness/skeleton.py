"""Tree skeleton assembly from a ``Psi_DN`` solution (Lemma 4.5).

The solver guarantees the solution is connected at the type level (every
positive type reachable from the root through positive occurrence
variables); this module realizes it as a concrete tree. Node counts fix
*how many* children each parent type takes from each occurrence pool; what
remains is the parent-child matching. For ``One``/``Seq`` rules the
matching is forced; for ``Alt`` rules each parent chooses a branch, and a
bad sequence of choices can strand nodes even when a good one exists (see
DESIGN.md section 3 for the worked example). We therefore assemble with
depth-first backtracking over ``Alt`` choices, guided by a one-step
lookahead heuristic (prefer the branch whose child still has work under
it); the budget is generous because minimized solutions give small trees,
and exceeding it raises :class:`SolverError` rather than mis-reporting.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping

from repro.dtd.simplify import AltRule, EpsRule, OneRule, SeqRule, SimpleDTD
from repro.encoding.dtd_system import ext_var, occ_var
from repro.errors import SolverError
from repro.ilp.model import VarId
from repro.regex.ast import TEXT_SYMBOL
from repro.xmltree.model import Element, TextNode, XMLTree

#: Pool key: (slot, child symbol, parent type).
_PoolKey = tuple[int, str, str]


def assemble_skeleton(
    simple: SimpleDTD,
    values: Mapping[VarId, int],
    max_steps: int = 500_000,
) -> XMLTree:
    """Build a tree over the simplified DTD realizing the given counts.

    The result has exactly ``values[("ext", tau)]`` elements of each type
    (and as many text nodes), with child pools matching the occurrence
    variables. Raises :class:`SolverError` if the counts are not
    realizable within the step budget (which, for solver-produced counts,
    indicates an internal bug — the solver enforces realizability).
    """
    counts = {symbol: values.get(ext_var(symbol), 0) for symbol in simple.symbols()}
    if counts.get(simple.root, 0) != 1:
        raise SolverError(
            f"root count must be 1, got {counts.get(simple.root, 0)}"
        )
    total_nodes = sum(counts.values())

    # Create the node inventory.
    inventory: dict[str, list[Element | TextNode]] = {}
    for symbol, count in counts.items():
        if symbol == TEXT_SYMBOL:
            inventory[symbol] = [TextNode("") for _ in range(count)]
        else:
            inventory[symbol] = [Element(symbol) for _ in range(count)]
    root_node = inventory[simple.root][0]

    # Distribute nodes into occurrence pools; every non-root node belongs to
    # exactly one pool (the totality equations of Psi_DN guarantee the
    # counts line up).
    pools: dict[_PoolKey, list[Element | TextNode]] = {}
    cursor: dict[str, int] = {symbol: 0 for symbol in counts}
    cursor[simple.root] = 1  # the root node is nobody's child
    for slot, child, parent in simple.occurrences():
        key = (slot, child, parent)
        take = values.get(occ_var(slot, child, parent), 0)
        start = cursor[child]
        pool_nodes = inventory[child][start:start + take]
        if len(pool_nodes) != take:
            raise SolverError(
                f"occurrence pool {key} wants {take} nodes but only "
                f"{len(pool_nodes)} remain; counts are inconsistent"
            )
        cursor[child] = start + take
        pools[key] = pool_nodes
    for symbol, used in cursor.items():
        if used != len(inventory[symbol]):
            raise SolverError(
                f"{len(inventory[symbol]) - used} nodes of {symbol!r} are in "
                "no occurrence pool; counts are inconsistent"
            )

    # Depth-first assembly with backtracking over Alt choices.
    queue: list[Element] = [root_node]
    state = {"attached": 1, "steps": 0}

    def pool_score(symbol: str) -> int:
        """One-step lookahead: remaining work under a child symbol."""
        if symbol == TEXT_SYMBOL:
            return 0
        rule = simple.rules[symbol]
        return sum(
            len(pools[(slot, child, symbol)])
            for slot, child in enumerate(rule.symbols(), start=1)
            if (slot, child, symbol) in pools
        )

    def attach(parent: Element, key: _PoolKey) -> Element | TextNode | None:
        pool = pools[key]
        if not pool:
            return None
        child = pool.pop()
        parent.children.append(child)
        state["attached"] += 1
        if isinstance(child, Element):
            queue.append(child)
        return child

    def detach(parent: Element, key: _PoolKey, child: Element | TextNode) -> None:
        parent.children.pop()
        state["attached"] -= 1
        if isinstance(child, Element):
            queue.pop()
        pools[key].append(child)

    def expand(index: int) -> bool:
        state["steps"] += 1
        if state["steps"] > max_steps:
            raise SolverError(
                f"skeleton assembly exceeded {max_steps} steps; "
                "counts may be unrealizable (solver bug?)"
            )
        if index == len(queue):
            return state["attached"] == total_nodes
        node = queue[index]
        rule = simple.rules[node.label]
        if isinstance(rule, EpsRule):
            return expand(index + 1)
        if isinstance(rule, (OneRule, SeqRule)):
            keys = [
                (slot, symbol, node.label)
                for slot, symbol in enumerate(rule.symbols(), start=1)
            ]
            attached: list[tuple[_PoolKey, Element | TextNode]] = []
            for key in keys:
                child = attach(node, key)
                if child is None:
                    for done_key, done_child in reversed(attached):
                        detach(node, done_key, done_child)
                    return False
                attached.append((key, child))
            if expand(index + 1):
                return True
            for done_key, done_child in reversed(attached):
                detach(node, done_key, done_child)
            return False
        if isinstance(rule, AltRule):
            branches = [(1, rule.left, node.label), (2, rule.right, node.label)]
            # Prefer the branch whose child symbol still has work under it.
            branches.sort(key=lambda key: -pool_score(key[1]))
            for key in branches:
                child = attach(node, key)
                if child is None:
                    continue
                if expand(index + 1):
                    return True
                detach(node, key, child)
            return False
        raise TypeError(f"unknown rule {rule!r}")  # pragma: no cover

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, total_nodes * 2 + 1000))
    try:
        success = expand(0)
    finally:
        sys.setrecursionlimit(old_limit)
    if not success:
        raise SolverError(
            "could not realize the solution counts as a tree; the solver's "
            "connectivity check should have prevented this"
        )
    return XMLTree(root_node)
