"""Witness synthesis: from integer solutions to actual XML trees.

This is the constructive content of the paper's equivalence proofs:

* :mod:`repro.witness.skeleton` — Lemma 4.5's construction: given a
  realizable solution of ``Psi_DN``, build a tree over the simplified DTD
  with exactly the prescribed node and occurrence counts;
* :mod:`repro.witness.values` — Lemma 4.4's value assignment (prefix-nested
  value sets for keys and inclusion constraints), Corollary 4.9's pigeonhole
  collisions for negated keys, and Lemma 5.2's set-representation values for
  negated inclusions;
* :mod:`repro.witness.synthesize` — the pipeline: skeleton over ``D_N``,
  contraction to ``D`` (Lemma 4.3), value assignment, and re-verification.
"""

from repro.witness.skeleton import assemble_skeleton
from repro.witness.synthesize import synthesize_witness
from repro.witness.values import assign_values

__all__ = ["assemble_skeleton", "assign_values", "synthesize_witness"]
