"""repro — XML integrity constraints in the presence of DTDs.

A faithful, executable reproduction of Wenfei Fan and Leonid Libkin,
*On XML Integrity Constraints in the Presence of DTDs* (PODS 2001; full
version JACM 49(3), 2002): the consistency and implication problems for
XML keys, foreign keys and inclusion constraints interacting with DTDs.

Quickstart::

    from repro import DTD, parse_constraints, check_consistency

    d1 = DTD.build(
        "teachers",
        {"teachers": "(teacher+)", "teacher": "(teach, research)",
         "teach": "(subject, subject)", "subject": "(#PCDATA)",
         "research": "(#PCDATA)"},
        attrs={"teacher": ["name"], "subject": ["taught_by"]},
    )
    sigma1 = parse_constraints('''
        teacher.name -> teacher
        subject.taught_by -> subject
        subject.taught_by => teacher.name
    ''')
    result = check_consistency(d1, sigma1)
    assert not result.consistent        # the paper's Section-1 example

See ``README.md`` for the tour, ``DESIGN.md`` for the system inventory,
and ``benchmarks/report.py`` for the per-figure reproduction record.
"""

from repro import api
from repro.analysis import (
    DiagnosticsReport,
    ExtentBounds,
    Repair,
    apply_repair,
    diagnose,
    extent_bounds,
    minimal_inconsistent_subset,
    minimal_repair,
    minimal_unsat_core,
    mus,
    redundant_constraints,
)
from repro.checkers import (
    CheckerConfig,
    ConsistencyResult,
    ImplicationResult,
    bounded_consistency,
    check_consistency,
    check_consistency_primary,
    dtd_has_valid_tree,
    implies,
    implies_all,
    implies_primary,
)
from repro.constraints import (
    Constraint,
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
    classify,
    parse_constraint,
    parse_constraints,
    satisfies,
    satisfies_all,
)
from repro.dtd import DTD, dtd_to_string, parse_dtd
from repro.errors import (
    ComplexityLimitError,
    InvalidConstraintError,
    InvalidDTDError,
    InvalidTreeError,
    ParseError,
    ReproError,
    SolverError,
    UndecidableProblemError,
)
from repro.xmltree import (
    Element,
    TextNode,
    XMLTree,
    conforms,
    element,
    parse_xml,
    text,
    tree_to_string,
)

from repro.api import Spec

__version__ = "1.0.0"

__all__ = [
    # the stable facade
    "api",
    "Spec",
    # models
    "DTD",
    "parse_dtd",
    "dtd_to_string",
    "XMLTree",
    "Element",
    "TextNode",
    "element",
    "text",
    "parse_xml",
    "tree_to_string",
    "conforms",
    # constraints
    "Constraint",
    "Key",
    "InclusionConstraint",
    "ForeignKey",
    "NegKey",
    "NegInclusion",
    "parse_constraint",
    "parse_constraints",
    "classify",
    "satisfies",
    "satisfies_all",
    # decision procedures
    "CheckerConfig",
    "ConsistencyResult",
    "ImplicationResult",
    "check_consistency",
    "check_consistency_primary",
    "dtd_has_valid_tree",
    "implies",
    "implies_all",
    "implies_primary",
    "bounded_consistency",
    # analysis
    "diagnose",
    "DiagnosticsReport",
    "mus",
    "minimal_inconsistent_subset",
    "minimal_unsat_core",
    "redundant_constraints",
    "Repair",
    "minimal_repair",
    "apply_repair",
    "extent_bounds",
    "ExtentBounds",
    # errors
    "ReproError",
    "ParseError",
    "InvalidDTDError",
    "InvalidTreeError",
    "InvalidConstraintError",
    "UndecidableProblemError",
    "ComplexityLimitError",
    "SolverError",
    "__version__",
]
