#!/usr/bin/env python3
"""Data integration: verifying constraints on a mediator interface.

The paper's motivating use of implication (Section 1): a mediator exposes
an XML interface but holds no data, so a constraint ``phi`` on the
interface cannot be checked dynamically — it must be *implied* by the
constraints known to hold on the sources. This example models a small
product catalog mediator and asks the coNP implication procedure
(Theorems 4.10 and 5.4) a series of questions, getting counterexample
documents whenever the answer is no.

Run:  python examples/data_integration.py
"""

from repro import DTD, implies, parse_constraint, parse_constraints, tree_to_string


def main() -> None:
    # The mediator's published interface: a catalog of products, vendors
    # and offers (an offer links a product to a vendor).
    interface = DTD.build(
        "catalog",
        {
            "catalog": "(product+, vendor+, offer*)",
            "product": "(title)",
            "vendor": "EMPTY",
            "offer": "EMPTY",
            "title": "(#PCDATA)",
        },
        attrs={
            "product": ["sku"],
            "vendor": ["vid"],
            "offer": ["sku", "vid", "price"],
        },
    )

    # Constraints guaranteed by the sources.
    known = parse_constraints(
        """
        product.sku -> product          # SKUs identify products
        vendor.vid -> vendor            # vendor ids are unique
        offer.sku => product.sku        # offers reference real products
        offer.vid => vendor.vid         # ... and real vendors
        """
    )

    questions = [
        ("offers reference products (inclusion only)",
         "offer.sku <= product.sku"),
        ("product SKUs cover all offer SKUs in reverse?",
         "product.sku <= offer.sku"),
        ("is price a key of offers?",
         "offer.price -> offer"),
        ("is sku a key of offers?",
         "offer.sku -> offer"),
        ("does the vendor reference survive as a foreign key?",
         "offer.vid => vendor.vid"),
    ]

    for description, text in questions:
        phi = parse_constraint(text)
        result = implies(interface, known, phi)
        verdict = "IMPLIED" if result.implied else "NOT implied"
        print(f"{description}\n    {phi}:  {verdict}")
        if result.implied and result.message:
            print(f"    reason: {result.message}")
        if not result.implied and result.counterexample is not None:
            print("    counterexample document:")
            for line in tree_to_string(result.counterexample).splitlines():
                print("      " + line)
        print()


if __name__ == "__main__":
    main()
