#!/usr/bin/env python3
"""Solving integer programs with an XML validator (Theorem 4.7).

The paper's NP-hardness reduction (Figure 4) is a two-way bridge: a 0/1
program ``Ax = 1`` is solvable iff its Figure-4 XML specification is
consistent. This script runs the bridge in the fun direction — it solves
set-partition-style programs by asking the XML consistency checker, then
reads the binary solution back off the witness document's ``Z_ij``
elements.

Run:  python examples/lip_bridge.py
"""

from repro import check_consistency
from repro.reductions.lip import (
    LIPInstance,
    brute_force_binary_solution,
    extract_binary_solution,
    lip_to_xml,
    random_lip_instance,
)


def solve_via_xml(instance: LIPInstance) -> tuple[int, ...] | None:
    """Decide ``Ax = 1`` by XML consistency; return a solution if any."""
    reduction = lip_to_xml(instance)
    result = check_consistency(reduction.dtd, reduction.sigma)
    if not result.consistent:
        return None
    return extract_binary_solution(reduction, result.witness)


def show(instance: LIPInstance) -> None:
    print("A =")
    for row in instance.matrix:
        print("   ", list(row))
    solution = solve_via_xml(instance)
    oracle = brute_force_binary_solution(instance)
    if solution is None:
        print("  no binary solution (XML specification inconsistent)")
        assert oracle is None
    else:
        print(f"  x = {list(solution)}  (via XML witness)")
        for row in instance.matrix:
            assert sum(a * x for a, x in zip(row, solution)) == 1
    agreement = (solution is None) == (oracle is None)
    print(f"  agrees with brute-force oracle: {agreement}")
    print()


def main() -> None:
    # An exact-cover flavoured instance: pick columns covering each row
    # exactly once.
    show(LIPInstance((
        (1, 1, 0, 0),
        (0, 1, 1, 0),
        (0, 0, 1, 1),
    )))

    # An unsolvable triangle: three rows demanding x1, x1+x2, x2 all = 1.
    show(LIPInstance((
        (1, 0),
        (1, 1),
        (0, 1),
    )))

    # A batch of random instances, cross-checked.
    for seed in range(5):
        show(random_lip_instance(3, 4, density=0.5, seed=seed))


if __name__ == "__main__":
    main()
