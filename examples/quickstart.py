#!/usr/bin/env python3
"""Quickstart: the paper's Section-1 story, end to end.

A DTD says every teacher teaches exactly two subjects; the constraints say
``taught_by`` identifies a subject and references a teacher's name. Each
half is fine alone — together they are unsatisfiable, and this script
shows the library detecting it, explains the cardinality argument, and
synthesizes witnesses for the satisfiable variants.

Run:  python examples/quickstart.py
"""

from repro import (
    DTD,
    check_consistency,
    conforms,
    parse_constraints,
    satisfies_all,
    tree_to_string,
)
from repro.workloads.examples import figure1_tree


def main() -> None:
    # ------------------------------------------------------------------
    # The DTD D1 (Section 1): a teacher teaches two subjects.
    # ------------------------------------------------------------------
    d1 = DTD.build(
        "teachers",
        {
            "teachers": "(teacher, teacher*)",
            "teacher": "(teach, research)",
            "teach": "(subject, subject)",
            "subject": "(#PCDATA)",
            "research": "(#PCDATA)",
        },
        attrs={"teacher": ["name"], "subject": ["taught_by"]},
    )

    # The constraints Sigma1: name keys teachers; taught_by keys subjects
    # and is a foreign key into teacher names.
    sigma1 = parse_constraints(
        """
        teacher.name -> teacher
        subject.taught_by -> subject
        subject.taught_by => teacher.name
        """
    )

    # ------------------------------------------------------------------
    # Dynamic validation: the Figure-1 document conforms to the DTD but
    # violates the subject key (both subjects are taught by Joe).
    # ------------------------------------------------------------------
    doc = figure1_tree()
    print("Figure-1 document:")
    print(tree_to_string(doc))
    print()
    print("conforms to D1:     ", bool(conforms(doc, d1)))
    print("satisfies Sigma1:   ", satisfies_all(doc, sigma1))
    print()

    # ------------------------------------------------------------------
    # Static validation: no document can ever satisfy both. The DTD forces
    # |ext(subject)| = 2|ext(teacher)|, while key + foreign key force
    # |ext(subject)| <= |ext(teacher)| — equations (1) and (2) clash.
    # ------------------------------------------------------------------
    result = check_consistency(d1, sigma1)
    print(f"(D1, Sigma1) consistent: {result.consistent}   [{result.method}]")
    assert not result.consistent

    # Drop the foreign key and a witness exists; the checker builds one.
    sigma_keys = parse_constraints(
        "teacher.name -> teacher\nsubject.taught_by -> subject"
    )
    ok = check_consistency(d1, sigma_keys)
    print(f"keys alone consistent:   {ok.consistent}")
    print()
    print("synthesized witness (verified against DTD and constraints):")
    print(tree_to_string(ok.witness))


if __name__ == "__main__":
    main()
