#!/usr/bin/env python3
"""The specification doctor: diagnosing and repairing bad XML designs.

The paper's closing programme (Section 6) proposes using integrity
constraints to tell good XML designs from bad ones. This example runs the
library's diagnostics on an order-management specification that has
accreted problems over time: a four-eyes policy (two approvals per order),
unique approval stamps referencing the auditor — and a late DTD edit that
modelled the company's single auditor as exactly one ``<auditor>``
element, silently recreating the paper's Section-1 inconsistency. The
doctor isolates the minimal conflict, shows the cardinality ranges that
explain it, and verifies two candidate repairs.

Every MUS and redundancy probe below is served by the toggleable-row
engine (DESIGN.md section 6): the constraint system is assembled *once*
and each probed subset is a row-bound flip plus a patched re-solve, so a
health check costs barely more than a single consistency check.  The
work counters printed after each report make that visible.

Run:  python examples/spec_doctor.py
"""

from repro import DTD, check_consistency, parse_constraints
from repro.analysis import diagnose, extent_bounds, minimal_repair
from repro.encoding.combined import build_encoding
from repro.encoding.render import describe_encoding


def _print_stats(report) -> None:
    stats = report.stats
    line = (
        f"    [{stats.method}: {stats.probes} subset probes on "
        f"{stats.assemblies} assembly, {stats.bound_patch_solves} patched "
        f"re-solves, {stats.lp_probe_decided} decided by the root LP"
    )
    if stats.mus_method:
        line += f"; MUS via {stats.mus_method} in {stats.mus_probes} probes"
    print(line + "]")

SIGMA_TEXT = """
    order.oid -> order            # order ids are unique
    approval.stamp -> approval    # stamps are unique...
    approval.stamp => auditor.aid # ...and reference auditors
    auditor.aid -> auditor        # auditor ids are unique
"""


def main() -> None:
    # The broken design: exactly two approvals per order (four-eyes), but
    # exactly ONE auditor element in the document.
    dtd = DTD.build(
        "orders",
        {
            "orders": "(order+, auditor)",
            "order": "(approval, approval)",
            "approval": "EMPTY",
            "auditor": "EMPTY",
        },
        attrs={
            "order": ["oid"],
            "approval": ["stamp"],
            "auditor": ["aid"],
        },
    )
    sigma = parse_constraints(SIGMA_TEXT)

    print("specification health check")
    print("-" * 60)
    report = diagnose(dtd, sigma)
    print(report.summary())
    _print_stats(report)
    print()

    # The cardinality view explains the conflict: the DTD forces
    # |approval| = 2|order| >= 2 while the stamp key plus the foreign key
    # squeeze |approval| <= |auditor| = 1.
    print("cardinality ranges under the DTD alone:")
    for tau in ("order", "approval", "auditor"):
        print("   ", extent_bounds(dtd, [], tau))
    print()

    # Repair A: drop the uniqueness of stamps — approvals may share one.
    relaxed = [phi for phi in sigma if str(phi) != "approval.stamp -> approval"]
    print("repair A (drop the stamp key):      ",
          check_consistency(dtd, relaxed).consistent)

    # Repair B: model auditors as a collection instead of a singleton.
    dtd_b = DTD.build(
        "orders",
        {
            "orders": "(order+, auditor+)",
            "order": "(approval, approval)",
            "approval": "EMPTY",
            "auditor": "EMPTY",
        },
        attrs={
            "order": ["oid"],
            "approval": ["stamp"],
            "auditor": ["aid"],
        },
    )
    result_b = check_consistency(dtd_b, sigma)
    print("repair B (auditor+ instead of one): ", result_b.consistent)
    print()

    # The repair engine proposes its own minimum edit set: a hitting-set
    # search over the same toggle assembly (DESIGN.md section 12), with
    # the winning edit verified by a full re-check before it is printed.
    fix = minimal_repair(dtd, sigma)
    print("engine-proposed repair:")
    for line in fix.summary().splitlines():
        print("   ", line)
    rstats = fix.stats
    print(
        f"    [{rstats.method}: {rstats.probes} probes, {rstats.cores} "
        f"cores, {rstats.hitting_sets} hitting sets on "
        f"{rstats.assemblies} assembly; verified={fix.verified}]"
    )
    print()

    # Pricing deletions out steers the search to DTD edits instead —
    # the engine rediscovers repair B's shape on its own, keeping every
    # business rule and relaxing the document structure.
    weighted = minimal_repair(dtd, sigma, weights={"delete": 5})
    print("engine repair with deletions priced out (weights={'delete': 5}):")
    for line in weighted.summary().splitlines():
        print("   ", line)
    print()

    # The repaired design still carries a redundancy: the explicit
    # auditor key restates the key component of the foreign key.
    report_b = diagnose(dtd_b, sigma)
    print("post-repair health check")
    print("-" * 60)
    print(report_b.summary())
    _print_stats(report_b)
    print()

    # For the curious: the linear-integer system behind the verdicts,
    # rendered the way the paper prints Psi_DN1 in Section 4.1.
    print("the encoding Psi(D, Sigma) for repair B (excerpt):")
    text = describe_encoding(build_encoding(dtd_b, sigma))
    for line in text.splitlines()[:14]:
        print("   ", line)
    print("    ...")


if __name__ == "__main__":
    main()
