#!/usr/bin/env python3
"""A guided tour of the paper's undecidability machinery (Section 3).

The consistency problem for multi-attribute keys and foreign keys is
undecidable (Theorem 3.1). One cannot run an impossibility, but every
*reduction* in its proof is a computable transformation — and this script
executes the whole chain on a concrete instance:

1. Lemma 3.2: an FD-implication question becomes a key-implication
   question over an extended relational schema;
2. Theorem 3.1: the complement of key implication becomes an XML
   consistency question (the Figure-2 DTD);
3. Lemma 3.3: XML consistency becomes the complement of XML implication
   (the Figure-3 DTD).

On small instances the library's bounded search and exact unary checkers
verify each equivalence end to end.

Run:  python examples/undecidability_tour.py
"""

from repro import bounded_consistency, check_consistency, implies, tree_to_string
from repro.dtd.serializer import dtd_to_string
from repro.relational.constraints import FD, RelKey
from repro.relational.model import RelationSchema, Schema
from repro.relational.reductions import (
    consistency_to_implication,
    encode_fd_implication,
    relational_implication_to_xml,
)
from repro.workloads.generators import teachers_family


def main() -> None:
    # ------------------------------------------------------------------
    # Step 1 — Lemma 3.2: FD implication -> key/FK implication.
    # ------------------------------------------------------------------
    schema = Schema((RelationSchema("emp", ("eid", "dept", "boss")),))
    theta = FD("emp", ("eid",), ("dept",))
    encoded = encode_fd_implication(schema, [], theta)
    print("Lemma 3.2: encoding of the FD question  emp: eid -> dept")
    print("  new schema relations:",
          ", ".join(rel.name for rel in encoded.schema.relations))
    print("  Sigma' =")
    for phi in encoded.sigma:
        print("    ", phi)
    print("  target key phi' =", encoded.phi)
    print()

    # ------------------------------------------------------------------
    # Step 2 — Theorem 3.1: complement of key implication -> XML
    # consistency. With Theta empty the key is NOT implied, so the XML
    # specification is consistent and a witness encodes the violating
    # instance (two tuples agreeing on x, differing on y).
    # ------------------------------------------------------------------
    rel_schema = Schema((RelationSchema("R", ("x", "y")),))
    reduction = relational_implication_to_xml(rel_schema, [], RelKey("R", ("x",)))
    print("Theorem 3.1: the Figure-2 DTD")
    print(dtd_to_string(reduction.dtd))
    witness = bounded_consistency(reduction.dtd, reduction.sigma, max_nodes=10)
    assert witness is not None
    print("consistent (key not implied); witness encodes the counterexample:")
    print(tree_to_string(witness))
    print()

    # Adding the key itself to Theta flips the answer: implied, hence the
    # XML side becomes inconsistent.
    reduction2 = relational_implication_to_xml(
        rel_schema, [RelKey("R", ("x",))], RelKey("R", ("x",))
    )
    gone = bounded_consistency(reduction2.dtd, reduction2.sigma, max_nodes=8)
    print("with R[x] -> R known, the XML side is consistent:", gone is not None)
    print()

    # ------------------------------------------------------------------
    # Step 3 — Lemma 3.3: consistency <-> complement of implication,
    # verified with the exact unary checkers on both sides.
    # ------------------------------------------------------------------
    print("Lemma 3.3: consistency as non-implication (Figure 3)")
    for consistent in (True, False):
        dtd, sigma = teachers_family(2, consistent=consistent)
        figure3 = consistency_to_implication(dtd)
        lhs = check_consistency(dtd, sigma).consistent
        rhs = implies(
            figure3.dtd_prime, [*sigma, figure3.ell, figure3.phi2], figure3.phi1
        ).implied
        print(f"  Sigma satisfiable: {lhs!s:5}   (D', Sigma u {{ell, phi2}}) |- phi1: "
              f"{rhs!s:5}   equivalence holds: {lhs == (not rhs)}")


if __name__ == "__main__":
    main()
