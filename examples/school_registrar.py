#!/usr/bin/env python3
"""A registrar database in XML: multi-attribute keys and foreign keys.

The paper's D3 example (Section 2.2): courses are keyed by (dept,
course_no), enrollments reference both students and courses. The
multi-attribute consistency problem is undecidable in general
(Theorem 3.1), so this example shows the toolkit a practitioner actually
gets: dynamic validation of documents, bounded witness search, and the
linear-time keys-only procedures that *are* exact.

Run:  python examples/school_registrar.py
"""

from repro import (
    Key,
    bounded_consistency,
    check_consistency,
    conforms,
    implies,
    parse_constraint,
    satisfies_all,
    tree_to_string,
)
from repro.errors import UndecidableProblemError
from repro.workloads.examples import (
    school_constraints_d3,
    school_document,
    school_dtd_d3,
)


def main() -> None:
    d3 = school_dtd_d3()
    sigma3 = school_constraints_d3()
    print("constraints over D3:")
    for phi in sigma3:
        print("  ", phi)
    print()

    # ------------------------------------------------------------------
    # Dynamic validation of a concrete registrar document.
    # ------------------------------------------------------------------
    doc = school_document()
    print("document conforms:", bool(conforms(doc, d3)))
    print("document satisfies constraints:", satisfies_all(doc, sigma3))

    # Corrupt it: duplicate enrollment (violates the enroll key).
    bad = doc.copy()
    enrolls = bad.ext("enroll")
    enrolls[1].attrs.update(enrolls[0].attrs)
    print("corrupted document satisfies constraints:",
          satisfies_all(bad, sigma3))
    print()

    # ------------------------------------------------------------------
    # Static validation: the general multi-attribute problem is
    # undecidable, and the library says so instead of guessing.
    # ------------------------------------------------------------------
    try:
        check_consistency(d3, sigma3)
    except UndecidableProblemError as exc:
        print("exact check refused:", exc)
    print()

    # Bounded search still finds a small witness, which proves this
    # particular specification consistent.
    witness = bounded_consistency(d3, sigma3, max_nodes=4)
    print("bounded search found a witness with",
          witness.size(), "nodes:")
    print(tree_to_string(witness))
    print()

    # ------------------------------------------------------------------
    # The keys-only fragment is decidable in linear time (Theorem 3.5):
    # implication by subsumption and element-type multiplicity.
    # ------------------------------------------------------------------
    keys = [phi for phi in sigma3 if isinstance(phi, Key)]
    superkey = parse_constraint("course[dept,course_no] -> course")
    print("course[dept,course_no] implied by the keys:",
          implies(d3, keys, superkey).implied)
    dept_only = parse_constraint("course[dept] -> course")
    refutation = implies(d3, keys, dept_only)
    print("course[dept] implied:", refutation.implied)
    print("counterexample (two courses sharing a dept):")
    print(tree_to_string(refutation.counterexample))


if __name__ == "__main__":
    main()
