"""Execute the README's code examples so the docs cannot rot.

The README's Python blocks are doctest sessions; ``doctest.testfile``
picks every ``>>>`` example out of the markdown and runs it against the
installed package.  A shell-block smoke check also keeps the CLI tour
honest: every ``python -m repro <sub>`` line must name a real
subcommand, and every referenced repository path must exist.
"""

import doctest
import re
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


def test_readme_exists_and_links_resolve():
    text = README.read_text()
    for target in re.findall(r"\]\(([A-Za-z0-9_/.]+)\)", text):
        if target.startswith("http"):
            continue
        assert (README.parent / target).exists(), f"dead README link: {target}"


def test_readme_doctests_pass():
    result = doctest.testfile(
        str(README), module_relative=False, optionflags=doctest.ELLIPSIS
    )
    assert result.attempted > 0, "README lost its executable examples"
    assert result.failed == 0, f"{result.failed} README example(s) failed"


def test_readme_cli_tour_names_real_subcommands():
    from repro.cli import build_parser

    parser = build_parser()
    subcommands = set()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        subcommands.update(action.choices)
    used = set(re.findall(r"python -m repro (\w+)", README.read_text()))
    used.discard("--help")
    assert used, "README lost its CLI tour"
    assert used <= subcommands, f"README mentions unknown subcommands: {used - subcommands}"


def test_readme_flags_exist_in_cli():
    """Every solver flag the README documents parses on `diagnose`."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["diagnose", "d.dtd", "s.txt", "--stats", "--rebuild", "--backend",
         "exact", "--cold", "--jobs", "4"]
    )
    assert args.stats and args.rebuild and args.cold
    assert args.backend == "exact"
    assert args.jobs == 4


def test_readme_serving_section_is_executable():
    """The Serving quickstart is a real doctest session (started server,
    two clients, cache-hit stats), executed by the doctest runner above;
    this guard keeps its load-bearing pieces from being edited away."""
    text = README.read_text()
    assert "## Serving" in text
    assert "start_background()" in text
    assert "ServiceClient" in text
    assert "session_hits" in text
    assert "repro serve" in text
    assert "--session" in text


def test_readme_operating_section_is_executable():
    """The operations quickstart is a real doctest session (deadline
    shed, restart from a snapshot) plus the shell knobs; this guard
    keeps its load-bearing pieces from being edited away."""
    text = README.read_text()
    assert "### Operating the service" in text
    assert "budget_exceeded" in text
    assert "sessions_restored" in text
    assert "REPRO_FAULTS" in text
    for flag in (
        "--max-inflight",
        "--queue-depth",
        "--max-connections",
        "--deadline",
        "--state-file",
        "--autosave-interval",
    ):
        assert flag in text, f"README lost the {flag} knob"


def test_readme_serve_knobs_parse_in_cli():
    """Every operations flag the README documents parses on `serve`."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--max-inflight", "256", "--queue-depth", "128",
         "--max-connections", "64", "--deadline", "30",
         "--state-file", "sessions.json", "--autosave-interval", "300"]
    )
    assert args.max_inflight == 256
    assert args.queue_depth == 128
    assert args.max_connections == 64
    assert args.deadline == 30.0
    assert args.state_file == "sessions.json"
    assert args.autosave_interval == 300.0


def test_readme_observability_section_is_executable():
    """The Observability quickstart is a real doctest session (HTTP
    front end, POST /v1/implies, a /metrics scrape) plus the multi-
    listener shell block; this guard keeps its load-bearing pieces from
    being edited away."""
    text = README.read_text()
    assert "## Observability" in text
    assert "HTTPFrontend" in text
    assert "/v1/implies" in text
    assert "/metrics" in text
    assert "metrics_golden.prom" in text
    for flag in ("--http", "--metrics-port", "--jobs auto"):
        assert flag in text, f"README lost the {flag} knob"


def test_readme_observability_knobs_parse_in_cli():
    """The HTTP/metrics/adaptive-jobs flags the README documents parse
    on `serve` (and a numeric --jobs still parses as an int)."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--port", "7801", "--http", "8080",
         "--metrics-port", "9102", "--jobs", "auto"]
    )
    assert args.http == 8080
    assert args.metrics_port == 9102
    assert args.jobs == "auto"
    assert parser.parse_args(["serve", "--jobs", "4"]).jobs == 4


def test_readme_scaling_section_is_executable():
    """The Scaling quickstart is a real doctest session: the README must
    keep a `--jobs` shell example and a `jobs=` Python example, and the
    doctest runner above executes the latter."""
    text = README.read_text()
    assert "## Scaling" in text
    assert "--jobs 4" in text
    assert "jobs=2" in text
    assert "mus(wide, bloated" in text


def test_readme_repair_section_is_executable():
    """The Repair quickstart is a real doctest session (the api facade,
    a verified cost-1 repair, the weighted DTD-edit variant), executed
    by the doctest runner above; this guard keeps its load-bearing
    pieces from being edited away."""
    text = README.read_text()
    assert "## Repair" in text
    assert "api.repair" in text
    assert "minimal repair (cost 1):" in text
    assert "weights={" in text
    assert "repro fix" in text
    assert "bench_repair.py" in text


def test_readme_fix_flags_parse_in_cli():
    """The repair flags the README documents parse on `fix` and
    `diagnose`."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["fix", "d.dtd", "s.txt", "--output", "fixed.dtd", "--stats"]
    )
    assert args.output == "fixed.dtd" and args.stats
    assert parser.parse_args(
        ["diagnose", "d.dtd", "s.txt", "--repair"]
    ).repair


def test_readme_fleet_section_is_executable():
    """The Fleet quickstart is a real doctest session (two backends, a
    router, a byte-identity check, router counters), executed by the
    doctest runner above; this guard keeps its load-bearing pieces from
    being edited away."""
    text = README.read_text()
    assert "## Fleet" in text
    assert "FleetRouter" in text
    assert "byte-identical via the fleet" in text
    assert "repro fleet" in text
    assert "bench_fleet.py" in text
    for flag in ("--backends", "--spawn", "--via"):
        assert flag in text, f"README lost the {flag} knob"


def test_readme_fleet_knobs_parse_in_cli():
    """Every fleet flag the README documents parses on `fleet`, and
    `--via` parses on the one-shot commands."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["fleet", "--backends", "127.0.0.1:7801,127.0.0.1:7802",
         "--port", "7800", "--http", "8080", "--mode", "warm"]
    )
    assert args.backends == "127.0.0.1:7801,127.0.0.1:7802"
    assert args.port == 7800
    assert args.http == 8080
    assert args.mode == "warm"
    assert parser.parse_args(["fleet", "--spawn", "4"]).spawn == 4
    via = parser.parse_args(
        ["implies", "d.dtd", "s.txt", "a.k -> a", "--via", "127.0.0.1:7800"]
    )
    assert via.via == "127.0.0.1:7800"
