"""End-to-end property-based tests on the decision procedures.

The central invariant of the library: *every* "consistent" answer is
backed by a synthesized witness that re-verifies against both the DTD and
the constraints (the checkers enforce this internally; here hypothesis
hammers the pipeline with random specifications), and "inconsistent"
answers agree with brute-force search on small instances.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkers.bounded import bounded_consistency
from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.constraints.satisfaction import satisfies, satisfies_all
from repro.dtd.analysis import has_valid_tree
from repro.workloads.generators import random_dtd, random_unary_constraints
from repro.xmltree.validate import conforms

_slow = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestConsistencyPipeline:
    @_slow
    @given(
        seed=st.integers(0, 10_000),
        num_keys=st.integers(0, 2),
        num_fks=st.integers(0, 3),
    )
    def test_witnesses_always_verify(self, seed, num_keys, num_fks):
        dtd = random_dtd(seed, num_types=5)
        sigma = random_unary_constraints(seed, dtd, num_keys, num_fks)
        result = check_consistency(dtd, sigma)
        if result.consistent:
            assert conforms(result.witness, dtd)
            assert satisfies_all(result.witness, sigma)
        else:
            # Inconsistency implies no tiny witness either.
            assert bounded_consistency(dtd, sigma, max_nodes=5) is None

    @_slow
    @given(seed=st.integers(0, 10_000))
    def test_negation_witnesses_verify(self, seed):
        dtd = random_dtd(seed, num_types=4)
        sigma = random_unary_constraints(
            seed, dtd, num_keys=1, num_fks=1, num_neg_keys=1, num_neg_inclusions=1
        )
        result = check_consistency(dtd, sigma)
        if result.consistent:
            assert satisfies_all(result.witness, sigma)

    @_slow
    @given(seed=st.integers(0, 10_000))
    def test_empty_sigma_matches_emptiness_check(self, seed):
        dtd = random_dtd(seed, num_types=5)
        assert check_consistency(dtd, []).consistent == has_valid_tree(dtd)

    @_slow
    @given(seed=st.integers(0, 10_000))
    def test_monotonicity_in_sigma(self, seed):
        # A superset of constraints can only remove models.
        dtd = random_dtd(seed, num_types=4)
        sigma = random_unary_constraints(seed, dtd, num_keys=1, num_fks=2)
        if not sigma:
            return
        whole = check_consistency(dtd, sigma).consistent
        part = check_consistency(dtd, sigma[:-1]).consistent
        if whole:
            assert part


class TestImplicationPipeline:
    @_slow
    @given(seed=st.integers(0, 10_000))
    def test_sigma_members_are_implied(self, seed):
        dtd = random_dtd(seed, num_types=4)
        sigma = random_unary_constraints(seed, dtd, num_keys=1, num_fks=1)
        if not sigma:
            return
        if not check_consistency(dtd, sigma).consistent:
            return
        for phi in sigma:
            assert implies(dtd, sigma, phi).implied

    @_slow
    @given(seed=st.integers(0, 10_000))
    def test_counterexamples_verify(self, seed):
        dtd = random_dtd(seed, num_types=4)
        sigma = random_unary_constraints(seed, dtd, num_keys=1, num_fks=1)
        pairs = dtd.attribute_pairs()
        if not pairs:
            return
        from repro.constraints.ast import Key

        tau, attr = pairs[seed % len(pairs)]
        phi = Key(tau, (attr,))
        result = implies(dtd, sigma, phi)
        if not result.implied and result.counterexample is not None:
            tree = result.counterexample
            assert conforms(tree, dtd)
            assert satisfies_all(tree, sigma)
            assert not satisfies(tree, phi)
