"""Tests for the Section-4.1-style encoding renderer."""

from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.encoding.combined import build_encoding
from repro.encoding.render import describe_encoding


class TestDescribeEncoding:
    def test_d1_system_matches_paper_shape(self, d1):
        # Section 4.1 prints Psi_DN1; our rendering must contain the same
        # structural facts: a unique root and the teach -> two-subjects
        # equations via both occurrence variables.
        text = describe_encoding(build_encoding(d1, []))
        assert "|ext(teachers)| = 1" in text
        assert "|ext(teach)| = x1(subject,teach)" in text
        assert "|ext(teach)| = x2(subject,teach)" in text
        assert "all variables >= 0, integer" in text

    def test_constraint_rows_grouped(self, d1, sigma1):
        text = describe_encoding(build_encoding(d1, sigma1))
        assert "constraint cardinalities (C_Sigma)" in text
        # Key row: |ext(teacher.name)| = |ext(teacher)|.
        assert "|ext(teacher.name)| = |ext(teacher)|" in text
        # IC row: |ext(subject.taught_by)| <= |ext(teacher.name)|.
        assert "|ext(subject.taught_by)| <= |ext(teacher.name)|" in text

    def test_conditionals_rendered(self, d1):
        text = describe_encoding(build_encoding(d1, []))
        assert "attribute-totality conditionals" in text
        assert "|ext(teacher)| > 0  ->  |ext(teacher.name)| > 0" in text

    def test_setrep_block_rendered(self):
        d = DTD.build(
            "r", {"r": "(a*, b*)", "a": "EMPTY", "b": "EMPTY"},
            attrs={"a": ["x"], "b": ["y"]},
        )
        text = describe_encoding(
            build_encoding(d, parse_constraints("a.x !<= b.y"))
        )
        assert "set-representation block (Theorem 5.1)" in text
        assert "z[" in text

    def test_negkey_row_rendered(self):
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
        text = describe_encoding(
            build_encoding(d, parse_constraints("a.x !-> a"))
        )
        # |ext(a.x)| <= |ext(a)| - 1, rendered with the -1 moved right.
        assert "|ext(a.x)| <= |ext(a)| + -1" in text
