"""Semantic tests for the Lemma 3.2 encoding.

The structural shape of the encoding is covered in test_relational; here
we exercise the *instance-level* directions of the proof on concrete
databases: from a counterexample to the FD implication one can build a
counterexample to the key implication (by populating the fresh ``Rnew``
relations exactly as the proof prescribes), and conversely.
"""

from repro.relational.constraints import FD, rel_satisfies, rel_satisfies_all
from repro.relational.model import Instance, RelationSchema, Schema
from repro.relational.reductions import encode_fd_implication


def _counterexample_instance(schema: Schema) -> Instance:
    """An instance of R(a, b, c) violating the FD a -> b."""
    inst = Instance(schema)
    inst.insert("R", {"a": "1", "b": "x", "c": "p"})
    inst.insert("R", {"a": "1", "b": "y", "c": "q"})
    return inst


class TestLemma32Semantics:
    def test_proof_direction_sigma_to_encoded(self):
        """I |= not theta  ==>  the extended I' |= Sigma' and not ell1.

        Following the proof of Lemma 3.2: the instance of Rnew is a subset
        of pi_XYZ(I) with pi_XY preserved and the key Rnew[XY] enforced.
        """
        schema = Schema((RelationSchema("R", ("a", "b", "c")),))
        theta = FD("R", ("a",), ("b",))
        encoding = encode_fd_implication(schema, [], theta)
        new_rel = encoding.schema.relation(encoding.phi.relation)

        base = _counterexample_instance(schema)
        assert not rel_satisfies(base, theta)

        extended = Instance(encoding.schema)
        for row in base.rows("R"):
            extended.insert("R", row)
        # Populate Rnew = pi_XYZ(I) (here XYZ = abc; XY-values are already
        # distinct, so no tuples need dropping for the Rnew[XY] key).
        for row in base.rows("R"):
            extended.insert(
                new_rel.name, {attr: row[attr] for attr in new_rel.attributes}
            )

        # Sigma' (= ell2, ell3, ell4 for the goal FD) holds...
        assert rel_satisfies_all(extended, encoding.sigma)
        # ...but ell1 = Rnew[a] -> Rnew fails: the implication is refuted.
        assert not rel_satisfies(extended, encoding.phi)

    def test_proof_direction_encoded_to_sigma(self):
        """I' |= Sigma' and not ell1  ==>  dropping Rnew gives I |= not theta.

        The key observation of the converse direction: ell2 and ell3 force
        pi_XY(R) = pi_XY(Rnew) up to the key, so a violation of ell1
        (two Rnew tuples agreeing on X, differing on Y) pulls back to R.
        """
        schema = Schema((RelationSchema("R", ("a", "b", "c")),))
        theta = FD("R", ("a",), ("b",))
        encoding = encode_fd_implication(schema, [], theta)
        new_rel = encoding.schema.relation(encoding.phi.relation)

        extended = Instance(encoding.schema)
        rows = [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "1", "b": "y", "c": "q"},
        ]
        for row in rows:
            extended.insert("R", row)
            extended.insert(
                new_rel.name, {attr: row[attr] for attr in new_rel.attributes}
            )
        assert rel_satisfies_all(extended, encoding.sigma)
        assert not rel_satisfies(extended, encoding.phi)

        base = Instance(schema)
        for row in rows:
            base.insert("R", row)
        assert not rel_satisfies(base, theta)

    def test_implied_fd_has_no_encoded_counterexample_on_samples(self):
        """theta = R: a -> a is trivially implied; no instance built the
        proof's way can satisfy Sigma' while violating ell1."""
        schema = Schema((RelationSchema("R", ("a", "b")),))
        theta = FD("R", ("a",), ("a",))
        encoding = encode_fd_implication(schema, [], theta)
        new_rel = encoding.schema.relation(encoding.phi.relation)

        extended = Instance(encoding.schema)
        for value in ("1", "2"):
            row = {"a": value, "b": "z"}
            extended.insert("R", row)
            extended.insert(
                new_rel.name, {attr: row[attr] for attr in new_rel.attributes}
            )
        assert rel_satisfies_all(extended, encoding.sigma)
        # ell1 = Rnew[a] -> Rnew holds: a determines the whole tuple here.
        assert rel_satisfies(extended, encoding.phi)
